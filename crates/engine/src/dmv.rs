//! Dynamic-management TVFs over the counter registries.
//!
//! SQL Server operators watch long genomics workloads through DMVs
//! (`sys.dm_os_performance_counters`, `sys.dm_os_wait_stats`,
//! `sys.dm_exec_query_stats`); the paper's evaluation reads the same
//! surfaces to attribute where import and analysis time goes. These are
//! seqdb's equivalents, registered by `Database::assemble` next to
//! `DM_EXEC_REQUESTS()`:
//!
//! * [`DmOsPerformanceCountersFn`] — one `(counter_name, value)` row per
//!   engine/storage counter: buffer-pool traffic, WAL records/bytes/
//!   fsyncs, FileStream I/O and retries, spill files/bytes, admission
//!   waits, kills, UDX panics, governed timeouts. All monotonic except
//!   the explicitly-named gauges (`bufferpool_pinned_frames`,
//!   `bufferpool_cached_frames`, `tempspace_live_files`), which exist so
//!   leak checks can be written in SQL.
//! * [`DmOsWaitStatsFn`] — per wait class, how often the engine blocked
//!   and for how long in total.
//! * [`DmExecQueryStatsFn`] — the bounded per-database statement history
//!   ([`QueryStatsHistory`]), recorded by the session guard on statement
//!   completion (including cancelled/killed statements).

use std::sync::Arc;

use seqdb_storage::{storage_counters, waits, BufferPool, TempSpace};
use seqdb_types::{Column, DataType, DbError, Result, Row, Schema, Value};

use crate::backup::BackupState;
use crate::conn::ConnectionRegistry;
use crate::exec::ExecContext;
use crate::querystore::QueryStore;
use crate::scrub::ScrubState;
use crate::session::AdmissionController;
use crate::stats::{engine_counters, QueryStatsHistory};
use crate::trace::process_clock;
use crate::udx::{TableFunction, TvfCursor};

/// Cursor over a row set materialized at `open()` — every DMV snapshot
/// is point-in-time, like its SQL Server counterpart.
struct RowsCursor {
    rows: std::vec::IntoIter<Row>,
    current: Option<Row>,
}

impl RowsCursor {
    fn boxed(rows: Vec<Row>) -> Box<dyn TvfCursor> {
        Box::new(RowsCursor {
            rows: rows.into_iter(),
            current: None,
        })
    }
}

impl TvfCursor for RowsCursor {
    fn move_next(&mut self) -> Result<bool> {
        self.current = self.rows.next();
        Ok(self.current.is_some())
    }
    fn fill_row(&mut self) -> Result<Row> {
        self.current
            .clone()
            .ok_or_else(|| DbError::Execution("fill_row past end of DMV cursor".into()))
    }
}

fn no_args(args: &[Value], name: &str) -> Result<()> {
    if args.is_empty() {
        Ok(())
    } else {
        Err(DbError::Execution(format!("{name}() takes no arguments")))
    }
}

/// `SELECT * FROM DM_OS_PERFORMANCE_COUNTERS()` — the merged engine and
/// storage counter registries plus this database's buffer-pool,
/// admission-gate and connection gauges.
pub struct DmOsPerformanceCountersFn {
    pool: Arc<BufferPool>,
    temp: Arc<TempSpace>,
    admission: Arc<AdmissionController>,
    connections: Arc<ConnectionRegistry>,
}

impl DmOsPerformanceCountersFn {
    pub fn new(
        pool: Arc<BufferPool>,
        temp: Arc<TempSpace>,
        admission: Arc<AdmissionController>,
        connections: Arc<ConnectionRegistry>,
    ) -> DmOsPerformanceCountersFn {
        DmOsPerformanceCountersFn {
            pool,
            temp,
            admission,
            connections,
        }
    }
}

impl TableFunction for DmOsPerformanceCountersFn {
    fn name(&self) -> &str {
        "DM_OS_PERFORMANCE_COUNTERS"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Column::new("counter_name", DataType::Text).not_null(),
            Column::new("value", DataType::Int).not_null(),
        ]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        no_args(args, self.name())?;
        let relaxed = std::sync::atomic::Ordering::Relaxed;
        let s = &self.pool.stats;
        let mut pairs: Vec<(String, u64)> = vec![
            ("bufferpool_hits".into(), s.hits.load(relaxed)),
            ("bufferpool_misses".into(), s.misses.load(relaxed)),
            ("bufferpool_evictions".into(), s.evictions.load(relaxed)),
            ("bufferpool_writebacks".into(), s.writebacks.load(relaxed)),
            (
                "bufferpool_pinned_frames".into(),
                self.pool.pinned_frames() as u64,
            ),
            (
                "bufferpool_cached_frames".into(),
                self.pool.cached_frames() as u64,
            ),
            // Gauge: spill files currently on disk in this database's
            // tempdb — 0 when no query is mid-flight, so leak checks can
            // be written in SQL.
            (
                "tempspace_live_files".into(),
                self.temp.live_files()? as u64,
            ),
            // Gauges for the overload-protection surface: bytes currently
            // reserved at the admission gate, statements blocked waiting
            // there, and live client connections. All read 0 on an idle
            // server, so connection/budget leak checks are one-line SQL.
            (
                "admission_reserved_bytes".into(),
                self.admission.reserved() as u64,
            ),
            (
                "admission_queue_depth".into(),
                self.admission.queue_depth() as u64,
            ),
            (
                "active_connections".into(),
                self.connections.active_count() as u64,
            ),
        ];
        // Clock gauges: rates (counter / uptime) and absolute timelines
        // can be computed from one snapshot instead of two.
        let (uptime_ms, process_start) = process_clock();
        pairs.push(("uptime_ms".into(), uptime_ms));
        pairs.push(("process_start".into(), process_start));
        pairs.push((
            "trace_events_dropped".into(),
            crate::trace::tracer().dropped(),
        ));
        pairs.extend(
            storage_counters()
                .snapshot()
                .into_iter()
                .map(|(n, v)| (n.to_string(), v)),
        );
        pairs.extend(
            engine_counters()
                .snapshot()
                .into_iter()
                .map(|(n, v)| (n.to_string(), v)),
        );
        let rows = pairs
            .into_iter()
            .map(|(n, v)| Row::new(vec![Value::text(n), Value::Int(v as i64)]))
            .collect();
        Ok(RowsCursor::boxed(rows))
    }
}

/// `SELECT * FROM DM_OS_WAIT_STATS()` — per wait class, how many times
/// the engine blocked and the cumulative wall time.
pub struct DmOsWaitStatsFn;

impl TableFunction for DmOsWaitStatsFn {
    fn name(&self) -> &str {
        "DM_OS_WAIT_STATS"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Column::new("wait_class", DataType::Text).not_null(),
            Column::new("wait_count", DataType::Int).not_null(),
            Column::new("total_wait_ms", DataType::Int).not_null(),
            Column::new("max_wait_ms", DataType::Int).not_null(),
        ]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        no_args(args, self.name())?;
        let rows = waits()
            .snapshot()
            .into_iter()
            .map(|w| {
                Row::new(vec![
                    Value::text(w.class.name()),
                    Value::Int(w.count as i64),
                    Value::Int(w.total_ms() as i64),
                    Value::Int(w.max_ms() as i64),
                ])
            })
            .collect();
        Ok(RowsCursor::boxed(rows))
    }
}

/// `SELECT * FROM DM_EXEC_QUERY_STATS()` — the bounded statement
/// history, least-recently-executed first, followed by the persisted
/// query-store view. The `as_of` column tells the two apart: `memory`
/// rows are this process's raw-text history, `persisted` rows are the
/// normalized per-fingerprint entries of the last written
/// `querystore.seqdb` — present even right after a restart, which is
/// what makes this DMV restart-surviving.
pub struct DmExecQueryStatsFn {
    history: Arc<QueryStatsHistory>,
    store: Arc<QueryStore>,
}

impl DmExecQueryStatsFn {
    pub fn new(history: Arc<QueryStatsHistory>, store: Arc<QueryStore>) -> DmExecQueryStatsFn {
        DmExecQueryStatsFn { history, store }
    }
}

impl TableFunction for DmExecQueryStatsFn {
    fn name(&self) -> &str {
        "DM_EXEC_QUERY_STATS"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Column::new("sql_text", DataType::Text).not_null(),
            Column::new("executions", DataType::Int).not_null(),
            Column::new("total_rows", DataType::Int).not_null(),
            Column::new("last_rows", DataType::Int).not_null(),
            Column::new("total_elapsed_ms", DataType::Int).not_null(),
            Column::new("last_elapsed_ms", DataType::Int).not_null(),
            Column::new("total_spill_files", DataType::Int).not_null(),
            Column::new("total_spill_bytes", DataType::Int).not_null(),
            Column::new("peak_mem_bytes", DataType::Int).not_null(),
            Column::new("as_of", DataType::Text).not_null(),
        ]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        no_args(args, self.name())?;
        let mut rows: Vec<Row> = self
            .history
            .snapshot()
            .into_iter()
            .map(|r| {
                Row::new(vec![
                    Value::text(r.sql),
                    Value::Int(r.executions as i64),
                    Value::Int(r.total_rows as i64),
                    Value::Int(r.last_rows as i64),
                    Value::Int(r.total_elapsed.as_millis() as i64),
                    Value::Int(r.last_elapsed.as_millis() as i64),
                    Value::Int(r.total_spill_files as i64),
                    Value::Int(r.total_spill_bytes as i64),
                    Value::Int(r.peak_mem_bytes as i64),
                    Value::text("memory"),
                ])
            })
            .collect();
        // The persisted view aggregates across executions, so the
        // last_* columns have no per-statement meaning there: 0.
        rows.extend(self.store.persisted_snapshot().into_iter().map(|e| {
            Row::new(vec![
                Value::text(e.text),
                Value::Int(e.executions as i64),
                Value::Int(e.total_rows as i64),
                Value::Int(0),
                Value::Int((e.total_elapsed_micros / 1000) as i64),
                Value::Int(0),
                Value::Int(e.spill_files as i64),
                Value::Int(e.spill_bytes as i64),
                Value::Int(e.peak_mem_bytes as i64),
                Value::text("persisted"),
            ])
        }));
        Ok(RowsCursor::boxed(rows))
    }
}

/// `SELECT * FROM DM_DB_QUERY_STORE()` — the live persistent query
/// store: one row per statement fingerprint with aggregated counts,
/// dispositions, latency percentiles (bucket upper bounds of the log₂
/// histogram), spill traffic and the wait breakdown.
/// `persisted_executions` is how many of the executions were already on
/// disk when this process loaded the store (0 for fingerprints first
/// seen since).
pub struct DmDbQueryStoreFn {
    store: Arc<QueryStore>,
}

impl DmDbQueryStoreFn {
    pub fn new(store: Arc<QueryStore>) -> DmDbQueryStoreFn {
        DmDbQueryStoreFn { store }
    }
}

impl TableFunction for DmDbQueryStoreFn {
    fn name(&self) -> &str {
        "DM_DB_QUERY_STORE"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Column::new("fingerprint", DataType::Text).not_null(),
            Column::new("query_text", DataType::Text).not_null(),
            Column::new("executions", DataType::Int).not_null(),
            Column::new("killed", DataType::Int).not_null(),
            Column::new("timeouts", DataType::Int).not_null(),
            Column::new("total_rows", DataType::Int).not_null(),
            Column::new("total_elapsed_ms", DataType::Int).not_null(),
            Column::new("p50_us", DataType::Int).not_null(),
            Column::new("p99_us", DataType::Int).not_null(),
            Column::new("spill_files", DataType::Int).not_null(),
            Column::new("spill_bytes", DataType::Int).not_null(),
            Column::new("wait_admission_ms", DataType::Int).not_null(),
            Column::new("wait_spill_ms", DataType::Int).not_null(),
            Column::new("peak_mem_bytes", DataType::Int).not_null(),
            Column::new("persisted_executions", DataType::Int).not_null(),
        ]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        no_args(args, self.name())?;
        let clamp = |v: u64| v.min(i64::MAX as u64) as i64;
        let rows = self
            .store
            .snapshot()
            .into_iter()
            .map(|e| {
                Row::new(vec![
                    Value::text(format!("{:016x}", e.fingerprint)),
                    Value::text(e.text),
                    Value::Int(e.executions as i64),
                    Value::Int(e.killed as i64),
                    Value::Int(e.timeouts as i64),
                    Value::Int(e.total_rows as i64),
                    Value::Int((e.total_elapsed_micros / 1000) as i64),
                    Value::Int(clamp(e.hist.percentile_micros(50))),
                    Value::Int(clamp(e.hist.percentile_micros(99))),
                    Value::Int(e.spill_files as i64),
                    Value::Int(e.spill_bytes as i64),
                    Value::Int((e.wait_admission_micros / 1000) as i64),
                    Value::Int((e.wait_spill_micros / 1000) as i64),
                    Value::Int(e.peak_mem_bytes as i64),
                    Value::Int(e.persisted_executions as i64),
                ])
            })
            .collect();
        Ok(RowsCursor::boxed(rows))
    }
}

/// `SELECT * FROM DM_DB_SCRUB_STATUS()` — scrub progress plus the
/// current quarantine list. The first row summarizes the pass (state
/// `idle` or `running` and the monotonic counters); each further row is
/// one quarantined `(object, page)` entry, so "is anything fenced?" is a
/// one-line SQL check.
pub struct DmDbScrubStatusFn {
    state: Arc<ScrubState>,
}

impl DmDbScrubStatusFn {
    pub fn new(state: Arc<ScrubState>) -> DmDbScrubStatusFn {
        DmDbScrubStatusFn { state }
    }
}

impl TableFunction for DmDbScrubStatusFn {
    fn name(&self) -> &str {
        "DM_DB_SCRUB_STATUS"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Column::new("state", DataType::Text).not_null(),
            Column::new("object", DataType::Text),
            Column::new("page", DataType::Int),
            Column::new("pages_checked", DataType::Int),
            Column::new("blobs_checked", DataType::Int),
            Column::new("corruptions_found", DataType::Int),
            Column::new("pages_repaired", DataType::Int),
        ]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        no_args(args, self.name())?;
        let s = self.state.status();
        let mut rows = vec![Row::new(vec![
            Value::text(if s.running { "running" } else { "idle" }),
            Value::Null,
            Value::Null,
            Value::Int(s.pages_checked as i64),
            Value::Int(s.blobs_checked as i64),
            Value::Int(s.corruptions_found as i64),
            Value::Int(s.pages_repaired as i64),
        ])];
        for (object, page) in s.quarantined {
            rows.push(Row::new(vec![
                Value::text("quarantined"),
                Value::text(object),
                Value::Int(page as i64),
                Value::Null,
                Value::Null,
                Value::Null,
                Value::Null,
            ]));
        }
        Ok(RowsCursor::boxed(rows))
    }
}

/// `DM_DB_BACKUP_STATUS()` — whether an online backup is running, where
/// it is writing, live progress counters, and the outcome of the last
/// completed (or failed) backup.
pub struct DmDbBackupStatusFn {
    state: Arc<BackupState>,
}

impl DmDbBackupStatusFn {
    pub fn new(state: Arc<BackupState>) -> DmDbBackupStatusFn {
        DmDbBackupStatusFn { state }
    }
}

impl TableFunction for DmDbBackupStatusFn {
    fn name(&self) -> &str {
        "DM_DB_BACKUP_STATUS"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Column::new("state", DataType::Text).not_null(),
            Column::new("destination", DataType::Text),
            Column::new("pages_copied", DataType::Int).not_null(),
            Column::new("pages_skipped", DataType::Int).not_null(),
            Column::new("blobs_copied", DataType::Int).not_null(),
            Column::new("bytes_written", DataType::Int).not_null(),
            Column::new("last_outcome", DataType::Text),
        ]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        no_args(args, self.name())?;
        let s = self.state.status();
        let rows = vec![Row::new(vec![
            Value::text(if s.running { "running" } else { "idle" }),
            if s.destination.is_empty() {
                Value::Null
            } else {
                Value::text(s.destination)
            },
            Value::Int(s.pages_copied as i64),
            Value::Int(s.pages_skipped as i64),
            Value::Int(s.blobs_copied as i64),
            Value::Int(s.bytes_written as i64),
            if s.last_outcome.is_empty() {
                Value::Null
            } else {
                Value::text(s.last_outcome)
            },
        ])];
        Ok(RowsCursor::boxed(rows))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::testutil::test_context;
    use crate::stats::StatementOutcome;
    use std::time::Duration;

    fn drain(f: &dyn TableFunction) -> Vec<Row> {
        let ctx = test_context();
        let mut cursor = f.open(&[], &ctx).unwrap();
        let mut rows = Vec::new();
        while cursor.move_next().unwrap() {
            rows.push(cursor.fill_row().unwrap());
        }
        rows
    }

    #[test]
    fn performance_counters_cover_all_registries() {
        let ctx = test_context();
        let f = DmOsPerformanceCountersFn::new(
            ctx.catalog.pool().clone(),
            ctx.temp.clone(),
            AdmissionController::new(),
            ConnectionRegistry::new(),
        );
        let rows = drain(&f);
        let names: Vec<String> = rows.iter().map(|r| format!("{:?}", r[0])).collect();
        let has = |n: &str| names.iter().any(|x| x.contains(n));
        assert!(has("bufferpool_hits"));
        assert!(has("tempspace_live_files"));
        assert!(has("wal_fsyncs"));
        assert!(has("spill_bytes"));
        assert!(has("admission_waits"));
        assert!(has("udx_panics"));
        assert!(has("admission_reserved_bytes"));
        assert!(has("admission_queue_depth"));
        assert!(has("active_connections"));
    }

    #[test]
    fn wait_stats_render_every_class() {
        let rows = drain(&DmOsWaitStatsFn);
        assert_eq!(rows.len(), seqdb_storage::counters::WAIT_CLASSES.len());
    }

    #[test]
    fn query_stats_render_history() {
        let history = QueryStatsHistory::new(8);
        history.record(
            "SELECT 1",
            &StatementOutcome {
                rows: 3,
                elapsed: Duration::from_millis(4),
                spill_files: 0,
                spill_bytes: 0,
                peak_mem_bytes: 1024,
            },
        );
        let store = QueryStore::new(8);
        let rows = drain(&DmExecQueryStatsFn::new(history, store));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][1], Value::Int(1), "executions");
        assert_eq!(rows[0][2], Value::Int(3), "total_rows");
        assert_eq!(rows[0][9], Value::text("memory"), "as_of");
    }

    #[test]
    fn query_stats_append_persisted_store_rows() {
        use crate::querystore::{Disposition, StoreOutcome};
        let history = QueryStatsHistory::new(8);
        let store = QueryStore::new(8);
        store.record(
            "SELECT v FROM t WHERE id = 3",
            &StoreOutcome {
                rows: 2,
                elapsed_micros: 500,
                spill_files: 0,
                spill_bytes: 0,
                wait_admission_micros: 0,
                wait_spill_micros: 0,
                peak_mem_bytes: 0,
                disposition: Disposition::Completed,
            },
        );
        // Nothing persisted yet: only live history (empty) is rendered.
        assert!(drain(&DmExecQueryStatsFn::new(history.clone(), store.clone())).is_empty());
        let _ = store.serialize();
        let rows = drain(&DmExecQueryStatsFn::new(history, store.clone()));
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0][9], Value::text("persisted"));
        assert_eq!(rows[0][0], Value::text("SELECT V FROM T WHERE ID=?"));

        let qs = drain(&DmDbQueryStoreFn::new(store));
        assert_eq!(qs.len(), 1);
        assert_eq!(qs[0][2], Value::Int(1), "executions");
        assert_eq!(qs[0][3], Value::Int(0), "killed");
        assert!(
            matches!(qs[0][7], Value::Int(p50) if p50 >= 500),
            "p50 bound"
        );
    }

    #[test]
    fn wait_stats_and_counters_have_new_columns() {
        let rows = drain(&DmOsWaitStatsFn);
        assert!(rows.iter().all(|r| r.len() == 4), "max_wait_ms column");
        let ctx = test_context();
        let f = DmOsPerformanceCountersFn::new(
            ctx.catalog.pool().clone(),
            ctx.temp.clone(),
            AdmissionController::new(),
            ConnectionRegistry::new(),
        );
        let names: Vec<String> = drain(&f).iter().map(|r| format!("{:?}", r[0])).collect();
        assert!(names.iter().any(|n| n.contains("uptime_ms")));
        assert!(names.iter().any(|n| n.contains("process_start")));
        assert!(names.iter().any(|n| n.contains("trace_events_dropped")));
    }

    #[test]
    fn scrub_status_renders_summary_then_quarantine_rows() {
        let q = seqdb_storage::Quarantine::in_memory();
        q.add("reads", 9);
        let state = ScrubState::new(q);
        let rows = drain(&DmDbScrubStatusFn::new(state));
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0][0], Value::text("idle"));
        assert_eq!(rows[1][0], Value::text("quarantined"));
        assert_eq!(rows[1][1], Value::text("reads"));
        assert_eq!(rows[1][2], Value::Int(9));
    }

    #[test]
    fn dmvs_reject_arguments() {
        let ctx = test_context();
        let err = DmOsWaitStatsFn
            .open(&[Value::Int(1)], &ctx)
            .map(|_| ())
            .unwrap_err();
        assert!(matches!(err, DbError::Execution(_)));
    }
}

//! seqdb query engine.
//!
//! An iterator-model ("Volcano") relational query processor with the
//! extensibility surface of the paper's platform (SQL Server 2008 + CLR
//! hosting, *Röhm & Blakeley, CIDR 2009*):
//!
//! * scalar UDFs, pull-model table-valued functions and mergeable
//!   user-defined aggregates ([`udx`]) — built-ins and user extensions go
//!   through the same contracts;
//! * physical operators ([`exec`]): heap/index scans, filter, project,
//!   external sort (spill-accounted), hash/stream aggregation, hash/merge
//!   joins, CROSS APPLY, ROW_NUMBER, TOP;
//! * exchange-style parallel aggregation with per-worker statistics
//!   ([`parallel`]) reproducing the parallel plans of Figures 8–9;
//! * a plan tree with `EXPLAIN` rendering ([`plan`]) for Figures 9–10;
//! * a catalog and database façade ([`catalog`], [`database`]).
//!
//! SQL text parsing lives in the separate `seqdb-sql` crate (which
//! depends on this one); programs can also build [`plan::Plan`]s
//! directly.

// A hosted engine must not die on a recoverable error: every fallible
// path propagates `DbError` instead of unwrapping. Tests may unwrap.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod backup;
pub mod builtins;
pub mod catalog;
pub mod conn;
pub mod database;
pub mod dmv;
pub mod exec;
pub mod expr;
pub mod governor;
pub mod parallel;
pub mod plan;
pub mod querystore;
pub mod scrub;
pub mod session;
pub mod stats;
pub mod trace;
pub mod udx;

pub use backup::{
    restore_database, verify_backup, BackupReport, BackupState, BackupStatus, RestoreReport,
};
pub use catalog::{Catalog, Table, TableIndex};
pub use conn::{ConnState, ConnectionHandle, ConnectionInfo, ConnectionRegistry};
pub use database::{Database, DbConfig, JoinStrategy};
pub use dmv::{
    DmDbBackupStatusFn, DmDbQueryStoreFn, DmDbScrubStatusFn, DmExecQueryStatsFn,
    DmOsPerformanceCountersFn, DmOsWaitStatsFn,
};
pub use exec::{BoxedIter, ExecContext, RowIterator};
pub use expr::{BinOp, Expr};
pub use governor::{GovernedIter, MemCharge, QueryGovernor};
pub use plan::{Plan, QueryResult};
pub use querystore::{
    fingerprint, Disposition, LatencyHistogram, QueryStore, QueryStoreEntry, StoreOutcome,
};
pub use scrub::{ScrubFinding, ScrubReport, ScrubState, ScrubStatus};
pub use session::{
    AdmissionController, RunningStatement, Session, SessionSettings, StatementGuard,
    StatementRegistry,
};
pub use stats::{
    engine_counters, EngineCounters, ExecStats, NodeStats, QueryStatsHistory, QueryStatsRecord,
    StatementOutcome, StatsIter,
};
pub use trace::{
    parse_mask, tracer, DmOsRingBufferFn, TraceClass, TraceEvent, Tracer, MASK_ALL, TRACE_CLASSES,
};
pub use udx::{AggState, Aggregate, ScalarUdf, TableFunction, TvfCursor};

//! User-defined extensibility contracts (the paper's §2.3.2–§2.3.4).
//!
//! SQL Server hosts the .NET CLR and exposes three extensibility
//! contracts that the paper's prototype is built on; seqdb mirrors each as
//! a Rust trait:
//!
//! * [`ScalarUdf`] — scalar CLR UDFs (§2.3.2);
//! * [`TableFunction`] — CLR table-valued functions: a *pull-model*
//!   iterator that streams rows one `MoveNext()` at a time, plus an
//!   explicit `FillRow` conversion from the function's internal
//!   representation into engine values (§2.3.2, Figure 5). The two-step
//!   shape is preserved deliberately: the paper measures the `FillRow`
//!   copy as "the biggest performance bottleneck" (§5.2), and seqdb's
//!   benchmarks reproduce that comparison;
//! * [`Aggregate`] / [`AggState`] — CLR user-defined aggregates with
//!   init/accumulate/merge/terminate, where supporting `merge` is what
//!   makes an aggregate parallelizable "just like built-in aggregates"
//!   (§2.3.4).

use std::any::Any;
use std::sync::Arc;

use seqdb_types::{DbError, Result, Row, Schema, Value};

use crate::exec::ExecContext;

/// A scalar user-defined function (`CHARINDEX`, `LEN`, user extensions).
pub trait ScalarUdf: Send + Sync {
    /// Function name as referenced from SQL (case-insensitive).
    fn name(&self) -> &str;
    /// Evaluate the function on already-evaluated arguments.
    fn invoke(&self, args: &[Value]) -> Result<Value>;
}

/// The pull-model row source returned by [`TableFunction::open`].
///
/// `move_next` advances the function's internal cursor (cheap); `fill_row`
/// converts the current internal record into engine [`Value`]s (the copy
/// across the "CLR sandbox" boundary the paper measures). The engine
/// always calls them in `move_next` → `fill_row` pairs.
pub trait TvfCursor: Send {
    /// Advance to the next record. Returns `false` at end-of-rowset.
    fn move_next(&mut self) -> Result<bool>;
    /// Convert the current record into a row matching the TVF's schema.
    fn fill_row(&mut self) -> Result<Row>;
}

/// A table-valued function usable in `FROM` and `CROSS APPLY`.
pub trait TableFunction: Send + Sync {
    fn name(&self) -> &str;
    /// Output schema (fixed per function in seqdb; SQL Server allows
    /// per-invocation schemas via `RETURNS TABLE`, which none of the
    /// paper's functions need).
    fn schema(&self) -> Arc<Schema>;
    /// Bind the function to its arguments and return a cursor.
    fn open(&self, args: &[Value], ctx: &ExecContext) -> Result<Box<dyn TvfCursor>>;
}

/// Factory for user-defined aggregate state (one per group).
pub trait Aggregate: Send + Sync {
    fn name(&self) -> &str;
    /// Fresh accumulator (the CLR `Init()`).
    fn create(&self) -> Box<dyn AggState>;
    /// Whether partial states can be merged. Mergeable aggregates can be
    /// computed with a parallel partial/final plan (paper §2.3.4: UDAs
    /// "can be parallelized by the system just like built-in aggregates").
    fn mergeable(&self) -> bool {
        true
    }
}

/// A running aggregate accumulator.
pub trait AggState: Send {
    /// `Accumulate(...)`: fold in one input row's argument values.
    fn update(&mut self, args: &[Value]) -> Result<()>;
    /// Fold in `n` rows that all produced the same argument values —
    /// the vectorized path uses this to collapse an argument-free run
    /// (`COUNT(*)` over a batch) into one call. The default repeats
    /// [`AggState::update`], so user aggregates keep exact semantics.
    fn update_n(&mut self, args: &[Value], n: u64) -> Result<()> {
        for _ in 0..n {
            self.update(args)?;
        }
        Ok(())
    }
    /// `Merge(other)`: fold another partial state of the same aggregate
    /// into `self`. `other` is guaranteed to come from the same
    /// [`Aggregate`] factory.
    fn merge(&mut self, other: Box<dyn AggState>) -> Result<()>;
    /// `Terminate()`: produce the final value.
    fn finish(&mut self) -> Result<Value>;
    /// Downcasting support for `merge`.
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Helper for implementing [`AggState::merge`]: downcast a boxed state to
/// a concrete type, with a descriptive error on mismatch.
pub fn downcast_state<T: 'static>(other: Box<dyn AggState>, name: &str) -> Result<Box<T>> {
    other
        .into_any()
        .downcast::<T>()
        .map_err(|_| DbError::Execution(format!("merge of mismatched aggregate state in {name}")))
}

// ---------------------------------------------------------------------
// Panic isolation. SQL Server's CLR host guarantees that a misbehaving
// user function aborts its own query, never the server (paper §2.3.1).
// seqdb gets the same property by running every UDX entry point —
// scalar invoke, TVF open/move_next/fill_row, UDA create/update/merge/
// finish — under `catch_unwind`, surfacing the panic as a typed
// [`DbError::UdxPanic`] that fails only the invoking query.
// ---------------------------------------------------------------------

/// Stringify a caught panic payload (payloads are `Box<dyn Any>`; the
/// common cases are `&str` and `String`).
pub fn panic_payload(p: Box<dyn Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Run one user-function entry point under `catch_unwind`, converting a
/// panic into [`DbError::UdxPanic`] carrying the function's name.
///
/// `AssertUnwindSafe` is sound here because the engine never reuses a
/// UDX cursor or aggregate state after it has panicked: the error aborts
/// the query and the operator tree (with any half-mutated state) is
/// dropped.
pub fn protect<T>(name: &str, f: impl FnOnce() -> Result<T>) -> Result<T> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        Err(p) => {
            crate::stats::engine_counters()
                .udx_panics
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            Err(DbError::UdxPanic {
                name: name.to_string(),
                payload: panic_payload(p),
            })
        }
    }
}

// ---------------------------------------------------------------------
// Built-in aggregates (SUM, COUNT, MIN, MAX, AVG), implemented against
// the same contract as user-defined ones so the planner cannot tell the
// difference — exactly the paper's point about UDAs being first-class.
// ---------------------------------------------------------------------

macro_rules! simple_aggregate {
    ($factory:ident, $state:ident, $name:literal) => {
        /// Built-in aggregate factory.
        pub struct $factory;
        impl Aggregate for $factory {
            fn name(&self) -> &str {
                $name
            }
            fn create(&self) -> Box<dyn AggState> {
                Box::new($state::default())
            }
        }
    };
}

simple_aggregate!(CountAgg, CountState, "COUNT");
simple_aggregate!(SumAgg, SumState, "SUM");
simple_aggregate!(MinAgg, MinState, "MIN");
simple_aggregate!(MaxAgg, MaxState, "MAX");
simple_aggregate!(AvgAgg, AvgState, "AVG");

/// COUNT(*) / COUNT(expr): counts rows (or non-null argument values).
#[derive(Default)]
pub struct CountState {
    n: i64,
}

impl AggState for CountState {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        match args.first() {
            None => self.n += 1,                    // COUNT(*)
            Some(v) if !v.is_null() => self.n += 1, // COUNT(expr)
            Some(_) => {}
        }
        Ok(())
    }
    fn update_n(&mut self, args: &[Value], n: u64) -> Result<()> {
        match args.first() {
            None => self.n += n as i64,
            Some(v) if !v.is_null() => self.n += n as i64,
            Some(_) => {}
        }
        Ok(())
    }
    fn merge(&mut self, other: Box<dyn AggState>) -> Result<()> {
        self.n += downcast_state::<CountState>(other, "COUNT")?.n;
        Ok(())
    }
    fn finish(&mut self) -> Result<Value> {
        Ok(Value::Int(self.n))
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// SUM over Int (exact) or Float.
#[derive(Default)]
pub struct SumState {
    int_sum: i64,
    float_sum: f64,
    saw_float: bool,
    saw_any: bool,
}

impl AggState for SumState {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        match args.first() {
            Some(Value::Int(i)) => {
                self.int_sum = self.int_sum.wrapping_add(*i);
                self.saw_any = true;
            }
            Some(Value::Float(f)) => {
                self.float_sum += f;
                self.saw_float = true;
                self.saw_any = true;
            }
            Some(Value::Null) | None => {}
            Some(other) => {
                return Err(DbError::Execution(format!(
                    "SUM over non-numeric {}",
                    other.type_name()
                )))
            }
        }
        Ok(())
    }
    fn merge(&mut self, other: Box<dyn AggState>) -> Result<()> {
        let o = downcast_state::<SumState>(other, "SUM")?;
        self.int_sum = self.int_sum.wrapping_add(o.int_sum);
        self.float_sum += o.float_sum;
        self.saw_float |= o.saw_float;
        self.saw_any |= o.saw_any;
        Ok(())
    }
    fn finish(&mut self) -> Result<Value> {
        if !self.saw_any {
            Ok(Value::Null)
        } else if self.saw_float {
            Ok(Value::Float(self.float_sum + self.int_sum as f64))
        } else {
            Ok(Value::Int(self.int_sum))
        }
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// MIN by total order (ignoring NULLs, per SQL).
#[derive(Default)]
pub struct MinState {
    current: Option<Value>,
}

impl AggState for MinState {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        if let Some(v) = args.first() {
            if v.is_null() {
                return Ok(());
            }
            match &self.current {
                Some(c) if c.total_cmp(v).is_le() => {}
                _ => self.current = Some(v.clone()),
            }
        }
        Ok(())
    }
    fn merge(&mut self, other: Box<dyn AggState>) -> Result<()> {
        if let Some(v) = downcast_state::<MinState>(other, "MIN")?.current {
            self.update(&[v])?;
        }
        Ok(())
    }
    fn finish(&mut self) -> Result<Value> {
        Ok(self.current.take().unwrap_or(Value::Null))
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// MAX by total order (ignoring NULLs, per SQL).
#[derive(Default)]
pub struct MaxState {
    current: Option<Value>,
}

impl AggState for MaxState {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        if let Some(v) = args.first() {
            if v.is_null() {
                return Ok(());
            }
            match &self.current {
                Some(c) if c.total_cmp(v).is_ge() => {}
                _ => self.current = Some(v.clone()),
            }
        }
        Ok(())
    }
    fn merge(&mut self, other: Box<dyn AggState>) -> Result<()> {
        if let Some(v) = downcast_state::<MaxState>(other, "MAX")?.current {
            self.update(&[v])?;
        }
        Ok(())
    }
    fn finish(&mut self) -> Result<Value> {
        Ok(self.current.take().unwrap_or(Value::Null))
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// AVG = SUM/COUNT as FLOAT.
#[derive(Default)]
pub struct AvgState {
    sum: f64,
    n: i64,
}

impl AggState for AvgState {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        match args.first() {
            Some(Value::Int(i)) => {
                self.sum += *i as f64;
                self.n += 1;
            }
            Some(Value::Float(f)) => {
                self.sum += f;
                self.n += 1;
            }
            Some(Value::Null) | None => {}
            Some(other) => {
                return Err(DbError::Execution(format!(
                    "AVG over non-numeric {}",
                    other.type_name()
                )))
            }
        }
        Ok(())
    }
    fn merge(&mut self, other: Box<dyn AggState>) -> Result<()> {
        let o = downcast_state::<AvgState>(other, "AVG")?;
        self.sum += o.sum;
        self.n += o.n;
        Ok(())
    }
    fn finish(&mut self) -> Result<Value> {
        if self.n == 0 {
            Ok(Value::Null)
        } else {
            Ok(Value::Float(self.sum / self.n as f64))
        }
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(agg: &dyn Aggregate, inputs: &[Value]) -> Value {
        let mut s = agg.create();
        for v in inputs {
            s.update(std::slice::from_ref(v)).unwrap();
        }
        s.finish().unwrap()
    }

    #[test]
    fn count_star_vs_count_expr() {
        let mut s = CountAgg.create();
        for _ in 0..5 {
            s.update(&[]).unwrap(); // COUNT(*)
        }
        assert_eq!(s.finish().unwrap(), Value::Int(5));
        assert_eq!(
            run(&CountAgg, &[Value::Int(1), Value::Null, Value::Int(2)]),
            Value::Int(2)
        );
    }

    #[test]
    fn sum_int_stays_int_floats_promote() {
        assert_eq!(run(&SumAgg, &[Value::Int(2), Value::Int(3)]), Value::Int(5));
        assert_eq!(
            run(&SumAgg, &[Value::Int(2), Value::Float(0.5)]),
            Value::Float(2.5)
        );
        assert_eq!(run(&SumAgg, &[]), Value::Null);
    }

    #[test]
    fn min_max_ignore_nulls() {
        let vals = [Value::Null, Value::Int(3), Value::Int(-2), Value::Null];
        assert_eq!(run(&MinAgg, &vals), Value::Int(-2));
        assert_eq!(run(&MaxAgg, &vals), Value::Int(3));
        assert_eq!(run(&MinAgg, &[Value::Null]), Value::Null);
    }

    #[test]
    fn avg_is_float() {
        assert_eq!(
            run(&AvgAgg, &[Value::Int(1), Value::Int(2)]),
            Value::Float(1.5)
        );
    }

    #[test]
    fn parallel_merge_equals_serial() {
        // Split the input in two partitions, merge partials, compare with
        // the serial result — the invariant behind parallel UDA plans.
        let inputs: Vec<Value> = (0..100).map(Value::Int).collect();
        for agg in [
            &SumAgg as &dyn Aggregate,
            &CountAgg,
            &MinAgg,
            &MaxAgg,
            &AvgAgg,
        ] {
            let serial = run(agg, &inputs);
            let mut left = agg.create();
            let mut right = agg.create();
            for v in &inputs[..50] {
                left.update(std::slice::from_ref(v)).unwrap();
            }
            for v in &inputs[50..] {
                right.update(std::slice::from_ref(v)).unwrap();
            }
            left.merge(right).unwrap();
            assert_eq!(left.finish().unwrap(), serial, "{}", agg.name());
        }
    }

    #[test]
    fn mismatched_merge_is_an_error() {
        let mut s = SumAgg.create();
        assert!(s.merge(CountAgg.create()).is_err());
    }

    #[test]
    fn protect_catches_panics_and_passes_results() {
        assert_eq!(protect("F", || Ok(7)).unwrap(), 7);
        let err = protect::<i32>("BadFn", || panic!("boom {}", 42)).unwrap_err();
        match err {
            DbError::UdxPanic { name, payload } => {
                assert_eq!(name, "BadFn");
                assert_eq!(payload, "boom 42");
            }
            other => panic!("unexpected {other:?}"),
        }
        // Plain errors pass through untouched.
        let err = protect::<i32>("F", || Err(DbError::Execution("x".into()))).unwrap_err();
        assert!(matches!(err, DbError::Execution(_)));
    }
}

//! The database façade: storage, catalog, FileStream store, temp space
//! and configuration in one handle.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use seqdb_storage::rowfmt::Compression;
use seqdb_storage::{
    BufferPool, FilePager, FileStreamStore, MemPager, Quarantine, TempSpace, WriteAheadLog,
};
use seqdb_types::{Result, Row, Schema};

use crate::backup::BackupState;
use crate::catalog::{Catalog, Table};
use crate::conn::{ConnectionRegistry, DmExecConnectionsFn};
use crate::dmv::{
    DmDbBackupStatusFn, DmDbQueryStoreFn, DmDbScrubStatusFn, DmExecQueryStatsFn,
    DmOsPerformanceCountersFn, DmOsWaitStatsFn,
};
use crate::exec::ExecContext;
use crate::governor::QueryGovernor;
use crate::plan::{Plan, QueryResult};
use crate::querystore::QueryStore;
use crate::scrub::ScrubState;
use crate::session::{AdmissionController, DmExecRequestsFn, Session, StatementRegistry};
use crate::stats::QueryStatsHistory;
use crate::trace::DmOsRingBufferFn;

/// Join algorithm selection (`SET JOIN_STRATEGY`): cost-based by default,
/// forcible for benchmarks and plan-shape tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinStrategy {
    /// Cost-based: merge join when both inputs are already ordered on the
    /// join keys, otherwise the cheaper of hash join and sort+merge by
    /// estimated bytes moved.
    #[default]
    Auto,
    /// Always hash join.
    Hash,
    /// Always merge join, sorting unordered inputs first.
    Merge,
}

impl JoinStrategy {
    /// Decode the `SET JOIN_STRATEGY = n` value: 0=auto, 1=hash, 2=merge.
    pub fn from_setting(v: i64) -> Option<JoinStrategy> {
        match v {
            0 => Some(JoinStrategy::Auto),
            1 => Some(JoinStrategy::Hash),
            2 => Some(JoinStrategy::Merge),
            _ => None,
        }
    }
}

/// Tunables, adjustable at run time (the analogue of `sp_configure`).
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Max degree of parallelism for eligible operators.
    pub max_dop: usize,
    /// Row-count threshold below which the planner does not bother with a
    /// parallel plan.
    pub parallel_threshold: u64,
    /// Memory budget for blocking operators before spilling.
    pub sort_budget: usize,
    /// Per-query wall-clock timeout (`SET QUERY_TIMEOUT_MS`); `None` = no
    /// timeout.
    pub query_timeout_ms: Option<u64>,
    /// Per-query memory budget in KiB (`SET QUERY_MEMORY_LIMIT_KB`);
    /// `None` = unlimited. Spill-capable operators degrade to tempspace
    /// when the budget runs out; the rest fail with `ResourceExhausted`.
    pub query_mem_limit_kb: Option<u64>,
    /// Global admission pool in KiB (`SET ADMISSION_POOL_KB`, server-wide);
    /// `None` = admission control off. Governed session statements must
    /// reserve their whole budget from this pool before starting.
    pub admission_pool_kb: Option<u64>,
    /// Bounded wait at the admission gate (`SET ADMISSION_WAIT_MS`,
    /// server-wide) before a queued query fails with `AdmissionTimeout`.
    pub admission_wait_ms: u64,
    /// Queued-statement admission (`SET ADMISSION_QUEUE_SLOTS`,
    /// server-wide): when > 0, statements blocked at the admission gate
    /// wait in a bounded FIFO of this many slots (overload degrades to
    /// ordered latency); a statement arriving at a full queue fails with
    /// a typed `ServerBusy`. 0 keeps the original free-for-all wait.
    pub admission_queue_slots: usize,
    /// Join algorithm selection (`SET JOIN_STRATEGY`).
    pub join_strategy: JoinStrategy,
    /// Rows per batch on the vectorized execution path
    /// (`SET BATCH_SIZE`); 0 forces row-at-a-time execution.
    pub batch_size: usize,
    /// Slow-statement threshold (`SET SLOW_QUERY_MS`, server-wide):
    /// statements running at least this long emit a `slow_statement`
    /// trace event regardless of the `TRACE_EVENTS` mask; `None` = off.
    pub slow_query_ms: Option<u64>,
}

impl Default for DbConfig {
    fn default() -> DbConfig {
        DbConfig {
            max_dop: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            parallel_threshold: 10_000,
            sort_budget: ExecContext::DEFAULT_SORT_BUDGET,
            query_timeout_ms: None,
            query_mem_limit_kb: None,
            admission_pool_kb: None,
            admission_wait_ms: 1000,
            admission_queue_slots: 0,
            join_strategy: JoinStrategy::Auto,
            batch_size: ExecContext::DEFAULT_BATCH_SIZE,
            slow_query_ms: None,
        }
    }
}

/// A seqdb database instance.
pub struct Database {
    pool: Arc<BufferPool>,
    catalog: Arc<Catalog>,
    filestream: Arc<FileStreamStore>,
    temp: Arc<TempSpace>,
    config: RwLock<DbConfig>,
    statements: Arc<StatementRegistry>,
    admission: Arc<AdmissionController>,
    connections: Arc<ConnectionRegistry>,
    query_stats: Arc<QueryStatsHistory>,
    query_store: Arc<QueryStore>,
    scrub: Arc<ScrubState>,
    backup: Arc<BackupState>,
    /// The directory this database lives in (`None` for in-memory).
    root: Option<PathBuf>,
    /// Serializes checkpoints against each other and against online
    /// backup: a checkpoint truncates the WAL, and a backup in flight
    /// needs every data-file write since its first page copy to stay
    /// replayable from the log.
    ckpt_lock: Mutex<()>,
    session_seq: AtomicU64,
}

impl Database {
    /// Fully in-memory database (page store in RAM, FileStream and temp
    /// space under the system temp directory).
    pub fn in_memory() -> Arc<Database> {
        let pool = BufferPool::with_default_capacity(Arc::new(MemPager::new()));
        let base = std::env::temp_dir().join(format!(
            "seqdb-mem-{}-{}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_nanos())
                .unwrap_or(0)
        ));
        Self::assemble(pool, &base, Quarantine::in_memory(), None).expect("temp-dir backed stores")
    }

    /// Disk-backed database rooted at `dir` (data file, write-ahead log,
    /// FileStream directory and temp space inside it). If the previous
    /// process crashed, the log is replayed into the data file before the
    /// database comes up.
    pub fn open(dir: &Path) -> Result<Arc<Database>> {
        std::fs::create_dir_all(dir)?;
        let pager: Arc<dyn seqdb_storage::PageStore> =
            Arc::new(FilePager::open(&dir.join("seqdb.data"))?);
        let wal = Arc::new(WriteAheadLog::open_file(&dir.join("seqdb.wal"))?);
        wal.recover_into(pager.as_ref())?;
        let pool = BufferPool::with_wal(pager, BufferPool::DEFAULT_CAPACITY, wal);
        // The quarantine list must survive restarts: a reboot would
        // otherwise silently un-fence known-bad objects.
        let quarantine = Quarantine::open(dir.join("quarantine.list"))?;
        let db = Self::assemble(pool, dir, quarantine, Some(dir.to_path_buf()))?;
        // Rebuild tables from the catalog snapshot the last checkpoint
        // (or a restore) left behind. Directories from before catalog
        // persistence simply have no snapshot and come up empty, as they
        // always did.
        let snapshot = dir.join("catalog.seqdb");
        if snapshot.exists() {
            let text = std::fs::read_to_string(&snapshot)?;
            let (_, unreadable) = db.catalog.load_tables(&text)?;
            // A table whose chain rotted since the snapshot must not
            // brick the reopen: it comes up fenced (typed `Quarantined`
            // on access) while the rest of the database works.
            for (name, first_page) in unreadable {
                let key = name.to_ascii_lowercase();
                db.quarantine().add(&key, first_page);
                crate::trace::emit(
                    crate::trace::TraceClass::Quarantine,
                    "quarantine_add",
                    0,
                    0,
                    || format!("object={key} page={first_page} at=open"),
                );
            }
        }
        // Reload the persistent query store written by the last
        // checkpoint, so DM_DB_QUERY_STORE()/DM_EXEC_QUERY_STATS() answer
        // across restarts. A corrupt store must not brick the reopen —
        // history is advisory; the database comes up with an empty store.
        let qstore = dir.join("querystore.seqdb");
        if qstore.exists() {
            let text = std::fs::read_to_string(&qstore)?;
            let _ = db.query_store.load(&text);
        }
        Ok(db)
    }

    fn assemble(
        pool: Arc<BufferPool>,
        base: &Path,
        quarantine: Arc<Quarantine>,
        root: Option<PathBuf>,
    ) -> Result<Arc<Database>> {
        let catalog = Catalog::new(pool.clone());
        for f in crate::builtins::all_builtins() {
            catalog.register_scalar(f);
        }
        for (name, agg) in builtin_aggregates() {
            let _ = name;
            catalog.register_aggregate(agg);
        }
        let filestream = Arc::new(FileStreamStore::open(base.join("filestream"))?);
        // Blob reads consult the quarantine before handing out paths.
        filestream.set_quarantine(Some(quarantine.clone()));
        let scrub = ScrubState::new(quarantine);
        // FileStream-aware scalar functions (the T-SQL `col.PathName()`
        // method and DATALENGTH over a FILESTREAM column resolve to
        // these; they need the store handle).
        catalog.register_scalar(Arc::new(FsPathNameFn {
            store: filestream.clone(),
        }));
        catalog.register_scalar(Arc::new(FsDataLengthFn {
            store: filestream.clone(),
        }));
        // The DMV surface: DM_EXEC_REQUESTS() lists running statements
        // straight out of the registry (so KILL targets are discoverable
        // from SQL), DM_OS_PERFORMANCE_COUNTERS()/DM_OS_WAIT_STATS()
        // render the counter registries, and DM_EXEC_QUERY_STATS() the
        // bounded statement history.
        let statements = StatementRegistry::new();
        let query_stats = QueryStatsHistory::new(QueryStatsHistory::DEFAULT_CAPACITY);
        let query_store = QueryStore::new(QueryStore::DEFAULT_CAPACITY);
        // Touching the tracer here also installs the storage→trace hook,
        // so spill/wait events flow before any SET TRACE_EVENTS arrives.
        let _ = crate::trace::tracer();
        let temp = TempSpace::open(base.join("tempdb"))?;
        let admission = AdmissionController::new();
        let connections = ConnectionRegistry::new();
        catalog.register_table_fn(Arc::new(DmExecRequestsFn::new(statements.clone())));
        catalog.register_table_fn(Arc::new(DmOsPerformanceCountersFn::new(
            pool.clone(),
            temp.clone(),
            admission.clone(),
            connections.clone(),
        )));
        catalog.register_table_fn(Arc::new(DmOsWaitStatsFn));
        catalog.register_table_fn(Arc::new(DmExecQueryStatsFn::new(
            query_stats.clone(),
            query_store.clone(),
        )));
        catalog.register_table_fn(Arc::new(DmDbQueryStoreFn::new(query_store.clone())));
        catalog.register_table_fn(Arc::new(DmOsRingBufferFn));
        catalog.register_table_fn(Arc::new(DmExecConnectionsFn::new(connections.clone())));
        catalog.register_table_fn(Arc::new(DmDbScrubStatusFn::new(scrub.clone())));
        let backup = BackupState::new();
        catalog.register_table_fn(Arc::new(DmDbBackupStatusFn::new(backup.clone())));
        Ok(Arc::new(Database {
            pool,
            catalog,
            filestream,
            temp,
            config: RwLock::new(DbConfig::default()),
            statements,
            admission,
            connections,
            query_stats,
            query_store,
            scrub,
            backup,
            root,
            ckpt_lock: Mutex::new(()),
            session_seq: AtomicU64::new(1),
        }))
    }

    /// Open a new session: a settings overlay over this database's
    /// defaults plus the admission/registry handles its statements run
    /// under. The analogue of one client connection.
    pub fn create_session(self: &Arc<Self>) -> Session {
        Session::new(
            self.clone(),
            self.session_seq.fetch_add(1, Ordering::Relaxed),
        )
    }

    /// The shared registry of running statements (DMV + `KILL` target).
    pub fn statements(&self) -> &Arc<StatementRegistry> {
        &self.statements
    }

    /// The global admission gate governed session statements pass through.
    pub fn admission(&self) -> &Arc<AdmissionController> {
        &self.admission
    }

    /// The registry of live client connections (DM_EXEC_CONNECTIONS()
    /// and the `active_connections` gauge). The wire server registers
    /// each accepted connection here.
    pub fn connections(&self) -> &Arc<ConnectionRegistry> {
        &self.connections
    }

    /// The bounded statement history behind `DM_EXEC_QUERY_STATS()`.
    pub fn query_stats(&self) -> &Arc<QueryStatsHistory> {
        &self.query_stats
    }

    /// The persistent per-fingerprint query store behind
    /// `DM_DB_QUERY_STORE()` (written at `CHECKPOINT`, reloaded at open).
    pub fn query_store(&self) -> &Arc<QueryStore> {
        &self.query_store
    }

    pub fn catalog(&self) -> &Arc<Catalog> {
        &self.catalog
    }

    /// Scrub progress and the quarantine handle (`DM_DB_SCRUB_STATUS()`,
    /// `CHECK`). The periodic server scrub shares this state.
    pub fn scrub_state(&self) -> &Arc<ScrubState> {
        &self.scrub
    }

    /// Backup progress and fault plumbing (`DM_DB_BACKUP_STATUS()`,
    /// `BACKUP DATABASE`). The periodic server backup shares this state.
    pub fn backup_state(&self) -> &Arc<BackupState> {
        &self.backup
    }

    /// The directory this database lives in (`None` for in-memory).
    pub fn root(&self) -> Option<&Path> {
        self.root.as_deref()
    }

    /// The checkpoint/backup mutual-exclusion lock (see the field docs).
    pub(crate) fn checkpoint_lock(&self) -> &Mutex<()> {
        &self.ckpt_lock
    }

    /// The persisted list of objects fenced off for unrepaired
    /// corruption.
    pub fn quarantine(&self) -> &Arc<Quarantine> {
        self.scrub.quarantine()
    }

    /// Resolve a table for a statement, failing with the typed
    /// `DbError::Quarantined` if the object is fenced for unrepaired
    /// corruption. Every SQL chokepoint (SELECT FROM, INSERT, UPDATE,
    /// DELETE, index DDL) comes through here; `CHECK` itself resolves
    /// through the catalog directly so repair can reach fenced objects.
    pub fn resolve_table(&self, name: &str) -> Result<Arc<Table>> {
        self.quarantine().check(&name.to_ascii_lowercase())?;
        self.catalog.table(name)
    }

    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    pub fn filestream(&self) -> &Arc<FileStreamStore> {
        &self.filestream
    }

    pub fn temp(&self) -> &Arc<TempSpace> {
        &self.temp
    }

    pub fn config(&self) -> DbConfig {
        self.config.read().clone()
    }

    pub fn set_config(&self, cfg: DbConfig) {
        *self.config.write() = cfg;
    }

    /// Convenience: set the max degree of parallelism.
    pub fn set_max_dop(&self, dop: usize) {
        self.config.write().max_dop = dop.max(1);
    }

    /// Wall-clock timeout applied to every subsequent query; `None`
    /// disables. Same knob as `SET QUERY_TIMEOUT_MS`.
    pub fn set_query_timeout_ms(&self, ms: Option<u64>) {
        self.config.write().query_timeout_ms = ms;
    }

    /// Memory budget (KiB) applied to every subsequent query; `None`
    /// disables. Same knob as `SET QUERY_MEMORY_LIMIT_KB`.
    pub fn set_query_memory_limit_kb(&self, kb: Option<u64>) {
        self.config.write().query_mem_limit_kb = kb;
    }

    /// Join algorithm selection applied to every subsequent query. Same
    /// knob as `SET JOIN_STRATEGY` (0=auto, 1=hash, 2=merge).
    pub fn set_join_strategy(&self, strategy: JoinStrategy) {
        self.config.write().join_strategy = strategy;
    }

    /// Rows per batch on the vectorized path applied to every subsequent
    /// query; 0 forces row-at-a-time. Same knob as `SET BATCH_SIZE`.
    pub fn set_batch_size(&self, rows: usize) {
        self.config.write().batch_size = rows;
    }

    /// Size (KiB) of the global admission pool; `None` disables
    /// admission control. Server-wide, like `sp_configure`.
    pub fn set_admission_pool_kb(&self, kb: Option<u64>) {
        self.config.write().admission_pool_kb = kb;
    }

    /// Bounded wait (ms) at the admission gate before a queued query
    /// fails with `AdmissionTimeout`. Server-wide.
    pub fn set_admission_wait_ms(&self, ms: u64) {
        self.config.write().admission_wait_ms = ms;
    }

    /// FIFO queue depth at the admission gate; 0 restores the original
    /// free-for-all wait. Server-wide, like `SET ADMISSION_QUEUE_SLOTS`.
    pub fn set_admission_queue_slots(&self, slots: usize) {
        self.config.write().admission_queue_slots = slots;
    }

    /// Slow-statement threshold (ms); `None` disables. Server-wide, like
    /// `SET SLOW_QUERY_MS`.
    pub fn set_slow_query_ms(&self, ms: Option<u64>) {
        self.config.write().slow_query_ms = ms;
    }

    /// Build an execution context snapshotting current configuration.
    /// Each call creates a fresh [`QueryGovernor`], so every query (and
    /// every `core::workflow` pipeline step, which all come through here)
    /// runs under its own timeout/budget.
    pub fn exec_context(&self) -> ExecContext {
        let cfg = self.config.read();
        let gov = QueryGovernor::new(
            cfg.query_timeout_ms.map(std::time::Duration::from_millis),
            cfg.query_mem_limit_kb.map(|kb| kb as usize * 1024),
        );
        ExecContext {
            catalog: self.catalog.clone(),
            filestream: self.filestream.clone(),
            temp: self.temp.clone(),
            dop: cfg.max_dop,
            sort_budget: cfg.sort_budget,
            batch_size: cfg.batch_size,
            gov,
            stats: None,
            node: None,
        }
    }

    /// Create a table (programmatic DDL; SQL DDL goes through seqdb-sql).
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        compression: Compression,
        primary_key: Option<Vec<usize>>,
    ) -> Result<Arc<Table>> {
        self.catalog
            .create_table(name, schema, compression, primary_key)
    }

    /// Run a SELECT-shaped plan and collect its result.
    pub fn run_plan(&self, plan: &Plan) -> Result<QueryResult> {
        let ctx = self.exec_context();
        let rows = plan.run(&ctx)?;
        Ok(QueryResult {
            schema: plan.schema(),
            rows,
            affected: 0,
        })
    }

    /// Run a plan and insert its output into `table`.
    pub fn run_insert(&self, table: &Arc<Table>, plan: &Plan) -> Result<QueryResult> {
        let ctx = self.exec_context();
        let mut it = plan.open(&ctx)?;
        let mut n = 0u64;
        while let Some(row) = it.next()? {
            table.insert(&row)?;
            n += 1;
        }
        Ok(QueryResult {
            schema: Arc::new(Schema::empty()),
            rows: Vec::new(),
            affected: n,
        })
    }

    /// Bulk-insert rows into a table by name.
    pub fn insert_rows(&self, table: &str, rows: &[Row]) -> Result<u64> {
        let t = self.catalog.table(table)?;
        t.insert_many(rows)
    }

    /// Checkpoint: make all dirty pages durable and truncate the
    /// write-ahead log, then persist the catalog snapshot alongside the
    /// data so table metadata is exactly as durable as the rows it
    /// describes. Also what the SQL `CHECKPOINT` statement runs.
    /// Serialized against online backup: a backup in flight relies on the
    /// log not truncating under it.
    pub fn checkpoint(&self) -> Result<()> {
        let _guard = self.ckpt_lock.lock();
        self.pool.checkpoint()?;
        self.persist_catalog()?;
        self.persist_query_store()
    }

    /// Write the query store to `<root>/querystore.seqdb` via tmp +
    /// fsync + rename (fsync matters here: unlike the catalog, the store
    /// has no WAL backing it — the rename must only land a fully-written
    /// file). No-op for in-memory databases.
    pub(crate) fn persist_query_store(&self) -> Result<()> {
        use std::io::Write;
        let Some(root) = &self.root else {
            return Ok(());
        };
        let path = root.join("querystore.seqdb");
        let tmp = root.join("querystore.seqdb.tmp");
        let data = self.query_store.serialize();
        let mut f = std::fs::File::create(&tmp).map_err(seqdb_types::DbError::io_write)?;
        f.write_all(data.as_bytes())
            .map_err(seqdb_types::DbError::io_write)?;
        f.sync_all().map_err(seqdb_types::DbError::io_write)?;
        drop(f);
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }

    /// Write the catalog snapshot to `<root>/catalog.seqdb` via tmp +
    /// rename. No-op for in-memory databases. `pub(crate)` because the
    /// backup path runs it directly while already holding the
    /// checkpoint lock.
    pub(crate) fn persist_catalog(&self) -> Result<()> {
        let Some(root) = &self.root else {
            return Ok(());
        };
        let path = root.join("catalog.seqdb");
        let tmp = root.join("catalog.seqdb.tmp");
        std::fs::write(&tmp, self.catalog.serialize_tables())
            .map_err(seqdb_types::DbError::io_write)?;
        std::fs::rename(&tmp, &path)?;
        Ok(())
    }
}

/// `column.PathName()` on a FILESTREAM column: the blob's filesystem path.
struct FsPathNameFn {
    store: Arc<FileStreamStore>,
}

impl crate::udx::ScalarUdf for FsPathNameFn {
    fn name(&self) -> &str {
        "FS_PATHNAME"
    }
    fn invoke(&self, args: &[seqdb_types::Value]) -> Result<seqdb_types::Value> {
        use seqdb_types::Value;
        match args {
            [Value::Null] => Ok(Value::Null),
            [Value::Guid(g)] => Ok(Value::text(self.store.path_name(*g)?.to_string_lossy())),
            _ => Err(seqdb_types::DbError::Execution(
                "PathName() expects a FILESTREAM column".into(),
            )),
        }
    }
}

/// `DATALENGTH(column)` on a FILESTREAM column: the blob's byte length.
struct FsDataLengthFn {
    store: Arc<FileStreamStore>,
}

impl crate::udx::ScalarUdf for FsDataLengthFn {
    fn name(&self) -> &str {
        "FS_DATALENGTH"
    }
    fn invoke(&self, args: &[seqdb_types::Value]) -> Result<seqdb_types::Value> {
        use seqdb_types::Value;
        match args {
            [Value::Null] => Ok(Value::Null),
            [Value::Guid(g)] => Ok(Value::Int(self.store.len(*g)? as i64)),
            _ => Err(seqdb_types::DbError::Execution(
                "DATALENGTH on a FILESTREAM column expects its GUID".into(),
            )),
        }
    }
}

fn builtin_aggregates() -> Vec<(&'static str, Arc<dyn crate::udx::Aggregate>)> {
    use crate::udx::{AvgAgg, CountAgg, MaxAgg, MinAgg, SumAgg};
    vec![
        ("COUNT", Arc::new(CountAgg)),
        ("SUM", Arc::new(SumAgg)),
        ("MIN", Arc::new(MinAgg)),
        ("MAX", Arc::new(MaxAgg)),
        ("AVG", Arc::new(AvgAgg)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::plan::Plan;
    use seqdb_types::{Column, DataType, Value};

    fn schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("x", DataType::Int),
        ])
    }

    #[test]
    fn in_memory_end_to_end() {
        let db = Database::in_memory();
        let t = db
            .create_table("t", schema(), Compression::Row, Some(vec![0]))
            .unwrap();
        for i in 0..10i64 {
            t.insert(&Row::new(vec![Value::Int(i), Value::Int(i * i)]))
                .unwrap();
        }
        let plan = Plan::Filter {
            input: Box::new(Plan::TableScan {
                table: t.clone(),
                filter: None,
                projection: None,
                schema: t.schema.clone(),
            }),
            predicate: Expr::binary(crate::expr::BinOp::GtEq, Expr::col(1, "x"), Expr::lit(49)),
        };
        let res = db.run_plan(&plan).unwrap();
        assert_eq!(res.rows.len(), 3); // 49, 64, 81
    }

    #[test]
    fn disk_backed_database_persists_pages() {
        let dir = std::env::temp_dir().join(format!("seqdb-dbtest-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        {
            let db = Database::open(&dir).unwrap();
            let t = db
                .create_table("t", schema(), Compression::Row, None)
                .unwrap();
            t.insert(&Row::new(vec![Value::Int(1), Value::Int(2)]))
                .unwrap();
            db.checkpoint().unwrap();
        }
        assert!(dir.join("seqdb.data").exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn builtin_aggregate_registry() {
        let db = Database::in_memory();
        assert!(db.catalog().aggregate("count").is_some());
        assert!(db.catalog().aggregate("SUM").is_some());
        assert!(db.catalog().scalar_fn("CHARINDEX").is_some());
    }

    #[test]
    fn insert_plan_counts_affected_rows() {
        let db = Database::in_memory();
        let t = db
            .create_table("t", schema(), Compression::Row, None)
            .unwrap();
        let src = Plan::Values {
            schema: t.schema.clone(),
            rows: vec![
                Row::new(vec![Value::Int(1), Value::Int(10)]),
                Row::new(vec![Value::Int(2), Value::Int(20)]),
            ],
        };
        let res = db.run_insert(&t, &src).unwrap();
        assert_eq!(res.affected, 2);
        assert_eq!(t.row_count(), 2);
    }
}

//! The system catalog: tables, indexes and registered functions.
//!
//! Mirrors the registration model of the paper's prototype: CLR
//! assemblies register scalar UDFs, TVFs and UDAs with the server; here
//! they are `Arc<dyn ...>` objects registered with the [`Catalog`].
//! Built-ins (`COUNT`, `CHARINDEX`, ...) live in the same registries as
//! user extensions.

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use seqdb_types::{DbError, Result, Row, Schema, Value};

use seqdb_storage::keycode;
use seqdb_storage::rowfmt::{self, Compression};
use seqdb_storage::{BTree, BufferPool, HeapFile};

use crate::udx::{Aggregate, ScalarUdf, TableFunction};

/// A secondary (or clustered-key) B+-tree index over a table.
pub struct TableIndex {
    pub name: String,
    /// Positions of the key columns in the table schema.
    pub columns: Vec<usize>,
    pub unique: bool,
    pub btree: BTree,
}

impl TableIndex {
    /// Encode the index key for a row.
    pub fn key_of(&self, row: &Row) -> Vec<u8> {
        let vals: Vec<Value> = self.columns.iter().map(|&c| row[c].clone()).collect();
        keycode::encode_key(&vals)
    }
}

/// A table: heap storage plus any indexes.
pub struct Table {
    pub name: String,
    pub schema: Arc<Schema>,
    pub heap: Arc<HeapFile>,
    /// Positions of the declared PRIMARY KEY columns (if any). The PK is
    /// backed by the first index in `indexes`.
    pub primary_key: Option<Vec<usize>>,
    pub indexes: RwLock<Vec<Arc<TableIndex>>>,
}

impl Table {
    /// Insert one row, maintaining all indexes and PK uniqueness.
    pub fn insert(&self, row: &Row) -> Result<()> {
        let mut row = row.clone();
        self.schema.coerce_row(&mut row);
        self.schema.check_row(&row)?;
        // Uniqueness checks before any mutation.
        {
            let indexes = self.indexes.read();
            for idx in indexes.iter().filter(|i| i.unique) {
                let key = idx.key_of(&row);
                if idx.btree.get(&key)?.is_some() {
                    return Err(DbError::Constraint(format!(
                        "duplicate key in unique index {} of table {}",
                        idx.name, self.name
                    )));
                }
            }
        }
        self.heap.insert(&row)?;
        let encoded = rowfmt::encode_row(&self.schema, &row, Compression::Row, None);
        let indexes = self.indexes.read();
        for idx in indexes.iter() {
            let mut key = idx.key_of(&row);
            if !idx.unique {
                // Disambiguate duplicate keys with a sequence suffix so
                // non-unique indexes keep every row.
                key.extend_from_slice(&idx.btree.len().to_be_bytes());
            }
            idx.btree.insert(&key, &encoded)?;
        }
        Ok(())
    }

    /// Bulk insert.
    pub fn insert_many<'a>(&self, rows: impl IntoIterator<Item = &'a Row>) -> Result<u64> {
        let mut n = 0;
        for r in rows {
            self.insert(r)?;
            n += 1;
        }
        Ok(n)
    }

    /// Delete one row (by its record id and current contents),
    /// maintaining all indexes. Non-unique index entries are located by
    /// a prefix scan over the key and matched on the encoded row.
    pub fn delete_row(&self, rid: seqdb_storage::RecordId, row: &Row) -> Result<()> {
        let mut row = row.clone();
        self.schema.coerce_row(&mut row);
        if !self.heap.delete(rid)? {
            return Err(DbError::NotFound(format!(
                "record {rid:?} in table {}",
                self.name
            )));
        }
        let encoded = rowfmt::encode_row(&self.schema, &row, Compression::Row, None);
        let indexes = self.indexes.read();
        for idx in indexes.iter() {
            let key = idx.key_of(&row);
            if idx.unique {
                idx.btree.delete(&key)?;
            } else {
                // Prefix scan: suffixed duplicates share the prefix.
                let mut hi = key.clone();
                hi.push(0xff);
                let matching: Option<Vec<u8>> = idx
                    .btree
                    .range(
                        std::ops::Bound::Included(key.as_slice()),
                        std::ops::Bound::Excluded(hi.as_slice()),
                    )?
                    .filter_map(|e| e.ok())
                    .find(|(_, v)| *v == encoded)
                    .map(|(k, _)| k);
                if let Some(full_key) = matching {
                    idx.btree.delete(&full_key)?;
                }
            }
        }
        Ok(())
    }

    /// Delete all rows matching `pred`; returns the number removed.
    pub fn delete_where(&self, pred: impl Fn(&Row) -> Result<bool>) -> Result<u64> {
        let victims: Vec<(seqdb_storage::RecordId, Row)> = self
            .heap
            .scan()
            .filter_map(|item| match item {
                Ok((rid, row)) => match pred(&row) {
                    Ok(true) => Some(Ok((rid, row))),
                    Ok(false) => None,
                    Err(e) => Some(Err(e)),
                },
                Err(e) => Some(Err(e)),
            })
            .collect::<Result<_>>()?;
        for (rid, row) in &victims {
            self.delete_row(*rid, row)?;
        }
        Ok(victims.len() as u64)
    }

    pub fn row_count(&self) -> u64 {
        self.heap.row_count()
    }

    /// Find an index whose key columns *start with* `cols` (enabling
    /// ordered scans and merge joins on a prefix of the key).
    pub fn index_with_prefix(&self, cols: &[usize]) -> Option<Arc<TableIndex>> {
        self.indexes
            .read()
            .iter()
            .find(|i| i.columns.len() >= cols.len() && i.columns[..cols.len()] == *cols)
            .cloned()
    }

    pub fn index_named(&self, name: &str) -> Option<Arc<TableIndex>> {
        self.indexes
            .read()
            .iter()
            .find(|i| i.name.eq_ignore_ascii_case(name))
            .cloned()
    }
}

/// The catalog of one database.
pub struct Catalog {
    pool: Arc<BufferPool>,
    tables: RwLock<HashMap<String, Arc<Table>>>,
    scalar_fns: RwLock<HashMap<String, Arc<dyn ScalarUdf>>>,
    table_fns: RwLock<HashMap<String, Arc<dyn TableFunction>>>,
    aggregates: RwLock<HashMap<String, Arc<dyn Aggregate>>>,
}

impl Catalog {
    pub fn new(pool: Arc<BufferPool>) -> Arc<Catalog> {
        Arc::new(Catalog {
            pool,
            tables: RwLock::new(HashMap::new()),
            scalar_fns: RwLock::new(HashMap::new()),
            table_fns: RwLock::new(HashMap::new()),
            aggregates: RwLock::new(HashMap::new()),
        })
    }

    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Create a table. `primary_key` columns get a unique index
    /// `PK_<table>` automatically (the "clustered index" of the paper's
    /// physical designs).
    pub fn create_table(
        &self,
        name: &str,
        schema: Schema,
        compression: Compression,
        primary_key: Option<Vec<usize>>,
    ) -> Result<Arc<Table>> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(DbError::Schema(format!("table {name} already exists")));
        }
        if let Some(pk) = &primary_key {
            for &c in pk {
                if c >= schema.len() {
                    return Err(DbError::Schema(format!(
                        "primary key column #{c} out of range"
                    )));
                }
            }
        }
        let schema = Arc::new(schema);
        let heap = Arc::new(HeapFile::create(
            self.pool.clone(),
            schema.clone(),
            compression,
        )?);
        let mut indexes = Vec::new();
        if let Some(pk) = &primary_key {
            indexes.push(Arc::new(TableIndex {
                name: format!("PK_{name}"),
                columns: pk.clone(),
                unique: true,
                btree: BTree::create(self.pool.clone())?,
            }));
        }
        let table = Arc::new(Table {
            name: name.to_string(),
            schema,
            heap,
            primary_key,
            indexes: RwLock::new(indexes),
        });
        tables.insert(key, table.clone());
        Ok(table)
    }

    /// Create a secondary index and backfill it from existing rows.
    pub fn create_index(
        &self,
        table: &str,
        index_name: &str,
        columns: Vec<usize>,
        unique: bool,
    ) -> Result<Arc<TableIndex>> {
        let table = self.table(table)?;
        let idx = Arc::new(TableIndex {
            name: index_name.to_string(),
            columns,
            unique,
            btree: BTree::create(self.pool.clone())?,
        });
        for item in table.heap.scan() {
            let (_, row) = item?;
            let mut key = idx.key_of(&row);
            if idx.unique {
                if idx.btree.get(&key)?.is_some() {
                    return Err(DbError::Constraint(format!(
                        "duplicate key while building unique index {index_name}"
                    )));
                }
            } else {
                key.extend_from_slice(&idx.btree.len().to_be_bytes());
            }
            let encoded = rowfmt::encode_row(&table.schema, &row, Compression::Row, None);
            idx.btree.insert(&key, &encoded)?;
        }
        table.indexes.write().push(idx.clone());
        Ok(idx)
    }

    pub fn table(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| DbError::NotFound(format!("table {name}")))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.read().contains_key(&name.to_ascii_lowercase())
    }

    pub fn drop_table(&self, name: &str) -> Result<()> {
        self.tables
            .write()
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| DbError::NotFound(format!("table {name}")))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut v: Vec<String> = self
            .tables
            .read()
            .values()
            .map(|t| t.name.clone())
            .collect();
        v.sort();
        v
    }

    // -- durable table metadata ---------------------------------------

    /// Serialize every table's metadata — schema, compression, primary
    /// key, heap first page and index roots — as a text snapshot. Written
    /// to `catalog.seqdb` at checkpoint time (metadata durability follows
    /// data durability: a table created after the last checkpoint is as
    /// volatile as its rows) and captured into backup sets, so a restored
    /// or reopened directory can rebuild its tables with
    /// [`Catalog::load_tables`].
    pub fn serialize_tables(&self) -> String {
        let mut out = String::from("seqdb-catalog v1\n");
        let tables = self.tables.read();
        let mut names: Vec<&String> = tables.keys().collect();
        names.sort();
        for key in names {
            let t = &tables[key];
            let pk = match &t.primary_key {
                Some(cols) if !cols.is_empty() => cols
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(","),
                _ => "-".to_string(),
            };
            out.push_str(&format!(
                "table\t{}\t{}\t{}\t{}\n",
                t.name,
                t.heap.compression().sql_name(),
                pk,
                t.heap.first_page()
            ));
            for col in t.schema.columns() {
                out.push_str(&format!(
                    "col\t{}\t{}\t{}\t{}\n",
                    col.name,
                    col.dtype.sql_name(),
                    u8::from(col.nullable),
                    u8::from(col.filestream)
                ));
            }
            for idx in t.indexes.read().iter() {
                let cols = idx
                    .columns
                    .iter()
                    .map(|c| c.to_string())
                    .collect::<Vec<_>>()
                    .join(",");
                out.push_str(&format!(
                    "index\t{}\t{}\t{}\t{}\n",
                    idx.name,
                    cols,
                    u8::from(idx.unique),
                    idx.btree.root_page()
                ));
            }
        }
        out.push_str("end\n");
        out
    }

    /// Rebuild tables from a [`Catalog::serialize_tables`] snapshot by
    /// reopening each heap chain and index tree at its recorded root.
    /// Returns the number of tables loaded plus the `(name, first_page)`
    /// of any table whose pages could not be walked (rotted at rest
    /// since the snapshot): those are skipped so one bad table cannot
    /// brick the whole database — the caller fences them in the
    /// quarantine. Fails with [`DbError::Corruption`] on a malformed
    /// snapshot — a reopened database must not come up silently missing
    /// tables.
    pub fn load_tables(&self, text: &str) -> Result<(usize, Vec<(String, u64)>)> {
        let bad = |m: &str| DbError::Corruption(format!("catalog snapshot: {m}"));
        let mut lines = text.lines();
        if lines.next() != Some("seqdb-catalog v1") {
            return Err(bad("missing or unrecognized header"));
        }
        // Parse into per-table groups first so a malformed snapshot loads
        // nothing rather than half the tables.
        struct Pending {
            name: String,
            compression: Compression,
            primary_key: Option<Vec<usize>>,
            first_page: u64,
            columns: Vec<seqdb_types::Column>,
            indexes: Vec<(String, Vec<usize>, bool, u64)>,
        }
        let parse_cols = |s: &str| -> Result<Vec<usize>> {
            s.split(',')
                .map(|c| {
                    c.parse::<usize>()
                        .map_err(|_| bad(&format!("bad column list {s:?}")))
                })
                .collect()
        };
        let mut pending: Vec<Pending> = Vec::new();
        let mut saw_end = false;
        for line in lines {
            let fields: Vec<&str> = line.split('\t').collect();
            match fields.as_slice() {
                ["table", name, comp, pk, first] => {
                    let compression = match *comp {
                        "NONE" => Compression::None,
                        "ROW" => Compression::Row,
                        "PAGE" => Compression::Page,
                        other => return Err(bad(&format!("unknown compression {other:?}"))),
                    };
                    let primary_key = if *pk == "-" {
                        None
                    } else {
                        Some(parse_cols(pk)?)
                    };
                    let first_page = first
                        .parse::<u64>()
                        .map_err(|_| bad(&format!("bad heap page {first:?}")))?;
                    pending.push(Pending {
                        name: name.to_string(),
                        compression,
                        primary_key,
                        first_page,
                        columns: Vec::new(),
                        indexes: Vec::new(),
                    });
                }
                ["col", name, dtype, nullable, fs] => {
                    let t = pending.last_mut().ok_or_else(|| bad("col before table"))?;
                    let dtype = seqdb_types::DataType::from_sql_name(dtype)
                        .ok_or_else(|| bad(&format!("unknown type {dtype:?}")))?;
                    let mut col = seqdb_types::Column::new(name.to_string(), dtype);
                    col.nullable = *nullable == "1";
                    col.filestream = *fs == "1";
                    t.columns.push(col);
                }
                ["index", name, cols, unique, root] => {
                    let t = pending
                        .last_mut()
                        .ok_or_else(|| bad("index before table"))?;
                    let root = root
                        .parse::<u64>()
                        .map_err(|_| bad(&format!("bad index root {root:?}")))?;
                    t.indexes
                        .push((name.to_string(), parse_cols(cols)?, *unique == "1", root));
                }
                ["end"] => {
                    saw_end = true;
                    break;
                }
                _ => return Err(bad(&format!("unrecognized line {line:?}"))),
            }
        }
        if !saw_end {
            return Err(bad("truncated snapshot (no end marker)"));
        }
        let mut count = 0usize;
        let mut unreadable: Vec<(String, u64)> = Vec::new();
        for p in pending {
            let schema = Arc::new(Schema::new(p.columns));
            let rebuild = || -> Result<Arc<Table>> {
                let heap = Arc::new(HeapFile::open(
                    self.pool.clone(),
                    schema.clone(),
                    p.compression,
                    p.first_page,
                )?);
                let mut indexes = Vec::new();
                for (name, columns, unique, root) in &p.indexes {
                    indexes.push(Arc::new(TableIndex {
                        name: name.clone(),
                        columns: columns.clone(),
                        unique: *unique,
                        btree: BTree::open(self.pool.clone(), *root)?,
                    }));
                }
                Ok(Arc::new(Table {
                    name: p.name.clone(),
                    schema: schema.clone(),
                    heap,
                    primary_key: p.primary_key.clone(),
                    indexes: RwLock::new(indexes),
                }))
            };
            match rebuild() {
                Ok(table) => {
                    self.tables
                        .write()
                        .insert(p.name.to_ascii_lowercase(), table);
                    count += 1;
                }
                Err(_) => unreadable.push((p.name, p.first_page)),
            }
        }
        Ok((count, unreadable))
    }

    // -- function registries ------------------------------------------

    pub fn register_scalar(&self, f: Arc<dyn ScalarUdf>) {
        self.scalar_fns
            .write()
            .insert(f.name().to_ascii_uppercase(), f);
    }

    pub fn register_table_fn(&self, f: Arc<dyn TableFunction>) {
        self.table_fns
            .write()
            .insert(f.name().to_ascii_uppercase(), f);
    }

    pub fn register_aggregate(&self, f: Arc<dyn Aggregate>) {
        self.aggregates
            .write()
            .insert(f.name().to_ascii_uppercase(), f);
    }

    pub fn scalar_fn(&self, name: &str) -> Option<Arc<dyn ScalarUdf>> {
        self.scalar_fns
            .read()
            .get(&name.to_ascii_uppercase())
            .cloned()
    }

    pub fn table_fn(&self, name: &str) -> Option<Arc<dyn TableFunction>> {
        self.table_fns
            .read()
            .get(&name.to_ascii_uppercase())
            .cloned()
    }

    pub fn aggregate(&self, name: &str) -> Option<Arc<dyn Aggregate>> {
        self.aggregates
            .read()
            .get(&name.to_ascii_uppercase())
            .cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdb_storage::MemPager;
    use seqdb_types::{Column, DataType};

    fn catalog() -> Arc<Catalog> {
        let pool = BufferPool::new(Arc::new(MemPager::new()), 1024);
        Catalog::new(pool)
    }

    fn read_schema() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("seq", DataType::Text),
        ])
    }

    #[test]
    fn create_insert_and_pk_enforcement() {
        let cat = catalog();
        let t = cat
            .create_table("Read", read_schema(), Compression::Row, Some(vec![0]))
            .unwrap();
        t.insert(&Row::new(vec![Value::Int(1), Value::text("ACGT")]))
            .unwrap();
        let dup = t.insert(&Row::new(vec![Value::Int(1), Value::text("GGGG")]));
        assert!(matches!(dup, Err(DbError::Constraint(_))));
        assert_eq!(t.row_count(), 1);
        // Case-insensitive lookup.
        assert!(cat.table("READ").is_ok());
        assert!(cat.table("nope").is_err());
    }

    #[test]
    fn duplicate_table_rejected() {
        let cat = catalog();
        cat.create_table("t", read_schema(), Compression::None, None)
            .unwrap();
        assert!(cat
            .create_table("T", read_schema(), Compression::None, None)
            .is_err());
    }

    #[test]
    fn secondary_index_backfills_and_orders() {
        let cat = catalog();
        let t = cat
            .create_table("t", read_schema(), Compression::Row, None)
            .unwrap();
        for i in [5i64, 3, 9, 1] {
            t.insert(&Row::new(vec![Value::Int(i), Value::text("X")]))
                .unwrap();
        }
        let idx = cat.create_index("t", "ix_id", vec![0], false).unwrap();
        let keys: Vec<i64> = idx
            .btree
            .range(std::ops::Bound::Unbounded, std::ops::Bound::Unbounded)
            .unwrap()
            .map(|e| {
                let (_, v) = e.unwrap();
                let row = rowfmt::decode_row(&t.schema, &v, Compression::Row, None).unwrap();
                row[0].as_int().unwrap()
            })
            .collect();
        assert_eq!(keys, vec![1, 3, 5, 9]);
        assert!(t.index_with_prefix(&[0]).is_some());
        assert!(t.index_with_prefix(&[1]).is_none());
    }

    #[test]
    fn non_unique_index_keeps_duplicates() {
        let cat = catalog();
        let t = cat
            .create_table("t", read_schema(), Compression::Row, None)
            .unwrap();
        cat.create_index("t", "ix_seq", vec![1], false).unwrap();
        for _ in 0..5 {
            t.insert(&Row::new(vec![Value::Int(1), Value::text("SAME")]))
                .unwrap();
        }
        let idx = t.index_named("ix_seq").unwrap();
        assert_eq!(idx.btree.len(), 5);
    }

    #[test]
    fn delete_maintains_indexes() {
        let cat = catalog();
        let t = cat
            .create_table("t", read_schema(), Compression::Row, Some(vec![0]))
            .unwrap();
        cat.create_index("t", "ix_seq", vec![1], false).unwrap();
        for i in 0..50i64 {
            t.insert(&Row::new(vec![
                Value::Int(i),
                Value::text(format!("S{}", i % 5)),
            ]))
            .unwrap();
        }
        let n = t.delete_where(|r| Ok(r[0].as_int()? % 2 == 0)).unwrap();
        assert_eq!(n, 25);
        assert_eq!(t.row_count(), 25);
        // PK index reflects the deletions.
        let pk = t.index_with_prefix(&[0]).unwrap();
        assert_eq!(pk.btree.len(), 25);
        // Non-unique secondary index too.
        let ix = t.index_named("ix_seq").unwrap();
        assert_eq!(ix.btree.len(), 25);
        // Deleted keys can be reinserted (index entries truly gone).
        t.insert(&Row::new(vec![Value::Int(0), Value::text("S0")]))
            .unwrap();
        assert_eq!(t.row_count(), 26);
    }

    #[test]
    fn function_registries_are_case_insensitive() {
        let cat = catalog();
        for f in crate::builtins::all_builtins() {
            cat.register_scalar(f);
        }
        assert!(cat.scalar_fn("charindex").is_some());
        assert!(cat.scalar_fn("CHARINDEX").is_some());
        assert!(cat.scalar_fn("nosuch").is_none());
    }
}

//! Sessions, the running-statement registry, and admission control.
//!
//! The paper's multi-hour in-database analyses are operable on SQL Server
//! because the server wraps them in *sessions*: per-connection `SET`
//! options, DMVs (`sys.dm_exec_requests`) listing what is running, `KILL`
//! to stop a runaway statement, and Resource Governor workload gates that
//! queue work instead of oversubscribing memory. This module is seqdb's
//! equivalent:
//!
//! * [`Session`] — per-connection settings overlay over the
//!   [`Database`](crate::Database)-level defaults (`SET QUERY_TIMEOUT_MS /
//!   QUERY_MEMORY_LIMIT_KB / MAX_DOP` scope to one session);
//! * [`StatementRegistry`] — every statement a session executes is
//!   registered (session id, statement id, SQL text, start time, governor
//!   handle) for the lifetime of its execution, making it visible to
//!   `DM_EXEC_REQUESTS()` and killable by id;
//! * [`AdmissionController`] — governed queries reserve their memory
//!   budget from a global pool before starting; a query that cannot get a
//!   reservation within a bounded wait fails with a typed
//!   [`DbError::AdmissionTimeout`] instead of running the server out of
//!   memory.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;
use std::sync::{Condvar, Mutex as StdMutex};
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use seqdb_storage::{waits, WaitClass};
use seqdb_types::{Column, DataType, DbError, Result, Row, Schema, Value};

use crate::database::{Database, DbConfig};
use crate::exec::ExecContext;
use crate::governor::QueryGovernor;
use crate::querystore::{QueryStore, StoreOutcome};
use crate::stats::{engine_counters, QueryStatsHistory, StatementOutcome};
use crate::trace::{self, TraceClass};
use crate::udx::{TableFunction, TvfCursor};

// ---------------------------------------------------------------------
// Session
// ---------------------------------------------------------------------

/// Per-session overrides of the database-level defaults. `None` means
/// "inherit the server default"; the inner `Option`/value mirrors the
/// corresponding [`DbConfig`] field (`SET ... = 0` stores an explicit
/// "off").
#[derive(Debug, Clone, Default)]
pub struct SessionSettings {
    pub query_timeout_ms: Option<Option<u64>>,
    pub query_mem_limit_kb: Option<Option<u64>>,
    pub max_dop: Option<usize>,
    pub join_strategy: Option<crate::database::JoinStrategy>,
    pub batch_size: Option<usize>,
}

/// One client connection's worth of state: an id, a settings overlay,
/// and the handles needed to admit, register and govern its statements.
///
/// Sessions are cheap; `core::workflow` opens one per pipeline run and a
/// future network front end would open one per connection.
pub struct Session {
    db: Arc<Database>,
    id: u64,
    settings: Mutex<SessionSettings>,
}

impl Session {
    pub(crate) fn new(db: Arc<Database>, id: u64) -> Session {
        Session {
            db,
            id,
            settings: Mutex::new(SessionSettings::default()),
        }
    }

    pub fn id(&self) -> u64 {
        self.id
    }

    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Session-scoped `SET QUERY_TIMEOUT_MS`; `None` switches the
    /// override off for this session (0 via SQL maps to `Some(None)`).
    pub fn set_query_timeout_ms(&self, ms: Option<u64>) {
        self.settings.lock().query_timeout_ms = Some(ms);
    }

    /// Session-scoped `SET QUERY_MEMORY_LIMIT_KB`.
    pub fn set_query_memory_limit_kb(&self, kb: Option<u64>) {
        self.settings.lock().query_mem_limit_kb = Some(kb);
    }

    /// Session-scoped `SET MAX_DOP`.
    pub fn set_max_dop(&self, dop: usize) {
        self.settings.lock().max_dop = Some(dop.max(1));
    }

    /// Session-scoped `SET JOIN_STRATEGY`.
    pub fn set_join_strategy(&self, strategy: crate::database::JoinStrategy) {
        self.settings.lock().join_strategy = Some(strategy);
    }

    /// Session-scoped `SET BATCH_SIZE`; 0 forces row-at-a-time execution
    /// for this session's statements.
    pub fn set_batch_size(&self, rows: usize) {
        self.settings.lock().batch_size = Some(rows);
    }

    /// The configuration this session's next statement runs under:
    /// database defaults with this session's overrides applied.
    pub fn effective_config(&self) -> DbConfig {
        let mut cfg = self.db.config();
        let s = self.settings.lock();
        if let Some(ms) = s.query_timeout_ms {
            cfg.query_timeout_ms = ms;
        }
        if let Some(kb) = s.query_mem_limit_kb {
            cfg.query_mem_limit_kb = kb;
        }
        if let Some(dop) = s.max_dop {
            cfg.max_dop = dop;
        }
        if let Some(strategy) = s.join_strategy {
            cfg.join_strategy = strategy;
        }
        if let Some(rows) = s.batch_size {
            cfg.batch_size = rows;
        }
        cfg
    }

    /// Admit, register and start one statement: reserves the statement's
    /// memory budget from the global pool (bounded wait →
    /// [`DbError::AdmissionTimeout`]), registers it as running (visible in
    /// `DM_EXEC_REQUESTS()`, killable by id), and returns the execution
    /// context plus an RAII guard that undoes both when the statement
    /// finishes — on success, error, cancellation or panic alike.
    pub fn begin_statement(&self, sql: &str) -> Result<(ExecContext, StatementGuard)> {
        let cfg = self.effective_config();
        let budget = cfg.query_mem_limit_kb.map(|kb| kb as usize * 1024);
        let gov = QueryGovernor::new(cfg.query_timeout_ms.map(Duration::from_millis), budget);
        let registry = self.db.statements().clone();
        // Register *before* admission: a statement waiting at the gate is
        // already visible in DM_EXEC_REQUESTS() with wait_state 'queued',
        // which is how an operator tells a stuck query from a slow one.
        let statement_id = registry.register(self.id, sql, gov.clone());
        trace::emit(
            TraceClass::Statement,
            "statement_start",
            self.id,
            statement_id,
            || format!("sql={}", trace_sql(sql)),
        );
        let mut guard = StatementGuard {
            registry,
            statement_id,
            slot: None,
            history: self.db.query_stats().clone(),
            store: self.db.query_store().clone(),
            sql: sql.to_string(),
            started: Instant::now(),
            gov: gov.clone(),
            session_id: self.id,
            slow_ms: cfg.slow_query_ms,
            rows: 0,
            record: false,
        };
        // On admission failure the guard's drop deregisters the queued
        // statement; `record` is still false, so a statement that never
        // ran leaves no history entry.
        let slot = match self.db.admission().admit(
            budget.unwrap_or(0),
            cfg.admission_pool_kb.map(|kb| kb as usize * 1024),
            Duration::from_millis(cfg.admission_wait_ms),
            cfg.admission_queue_slots,
            Some(&gov),
        ) {
            Ok(slot) => {
                // Emitted post-hoc (the gate doesn't know statement ids),
                // but in queued→admit order within the statement.
                if gov.admission_wait_nanos() > 0 {
                    trace::emit(
                        TraceClass::Admission,
                        "admission_queued",
                        self.id,
                        statement_id,
                        String::new,
                    );
                }
                trace::emit(
                    TraceClass::Admission,
                    "admission_admit",
                    self.id,
                    statement_id,
                    || format!("queued_us={}", gov.admission_wait_nanos() / 1000),
                );
                slot
            }
            Err(e) => {
                let name = match &e {
                    DbError::AdmissionTimeout(_) => "admission_timeout",
                    DbError::ServerBusy(_) => "admission_rejected",
                    _ => "admission_abandoned",
                };
                trace::emit(TraceClass::Admission, name, self.id, statement_id, || {
                    format!("queued_us={}", gov.admission_wait_nanos() / 1000)
                });
                return Err(e);
            }
        };
        guard.registry.mark_admitted(statement_id);
        guard.slot = Some(slot);
        guard.record = true;
        let ctx = ExecContext {
            catalog: self.db.catalog().clone(),
            filestream: self.db.filestream().clone(),
            temp: self.db.temp().clone(),
            dop: cfg.max_dop,
            sort_budget: cfg.sort_budget,
            batch_size: cfg.batch_size,
            gov,
            stats: None,
            node: None,
        };
        Ok((ctx, guard))
    }
}

/// RAII handle for one running statement: on drop it deregisters the
/// statement, folds its outcome into the query-stats history, and
/// returns the admission reservation to the global pool.
///
/// Recording happens in `drop` — not on a success path — so a statement
/// cancelled, killed or panicked mid-stream still lands in
/// `DM_EXEC_QUERY_STATS()` with the rows/spills/peak-memory it produced
/// before dying (its per-operator `NodeStats` are likewise `Arc`-shared
/// and lose nothing to the early pipeline drop).
pub struct StatementGuard {
    registry: Arc<StatementRegistry>,
    statement_id: i64,
    slot: Option<AdmissionSlot>,
    history: Arc<QueryStatsHistory>,
    store: Arc<QueryStore>,
    sql: String,
    started: Instant,
    gov: Arc<QueryGovernor>,
    session_id: u64,
    /// `SET SLOW_QUERY_MS` threshold in effect when the statement began.
    slow_ms: Option<u64>,
    rows: u64,
    /// Only statements that were actually admitted are recorded.
    record: bool,
}

/// Statement text as embedded in trace-event details: whitespace folded,
/// truncated to keep events small.
fn trace_sql(sql: &str) -> String {
    let mut out: String = sql.split_whitespace().collect::<Vec<_>>().join(" ");
    if out.len() > 96 {
        out.truncate(93);
        out.push_str("...");
    }
    out
}

impl StatementGuard {
    pub fn statement_id(&self) -> i64 {
        self.statement_id
    }

    /// Rows the statement returned to the client; the caller sets this
    /// after draining the result so the history entry is accurate.
    pub fn set_rows(&mut self, rows: u64) {
        self.rows = rows;
    }
}

impl Drop for StatementGuard {
    fn drop(&mut self) {
        self.registry.deregister(self.statement_id);
        if self.record {
            let elapsed = self.started.elapsed();
            let spill = self.gov.spill_tally();
            let disposition = self.gov.disposition();
            self.history.record(
                &self.sql,
                &StatementOutcome {
                    rows: self.rows,
                    elapsed,
                    spill_files: spill.files(),
                    spill_bytes: spill.bytes(),
                    peak_mem_bytes: self.gov.mem_peak() as u64,
                },
            );
            // The persistent query store gets the same outcome plus the
            // disposition and wait breakdown — this runs in `drop`, so
            // statements killed by `KILL`, a dropped client or a server
            // drain still land here (with disposition `killed`).
            self.store.record(
                &self.sql,
                &StoreOutcome {
                    rows: self.rows,
                    elapsed_micros: elapsed.as_micros() as u64,
                    spill_files: spill.files(),
                    spill_bytes: spill.bytes(),
                    wait_admission_micros: self.gov.admission_wait_nanos() / 1000,
                    wait_spill_micros: spill.wait_nanos() / 1000,
                    peak_mem_bytes: self.gov.mem_peak() as u64,
                    disposition,
                },
            );
            let (sid, stid, rows) = (self.session_id, self.statement_id, self.rows);
            trace::emit(TraceClass::Statement, "statement_finish", sid, stid, || {
                format!(
                    "rows={rows} elapsed_us={} disposition={}",
                    elapsed.as_micros(),
                    disposition.label()
                )
            });
            if let Some(slow) = self.slow_ms {
                if elapsed.as_millis() as u64 >= slow {
                    // Slow statements bypass the trace mask: SET
                    // SLOW_QUERY_MS is its own switch.
                    trace::tracer().emit_always(
                        TraceClass::Statement,
                        "slow_statement",
                        sid,
                        stid,
                        format!(
                            "elapsed_us={} threshold_ms={slow} sql={}",
                            elapsed.as_micros(),
                            trace_sql(&self.sql)
                        ),
                    );
                }
            }
        }
        // `slot` drops here, releasing the admission reservation.
        let _ = self.slot.take();
    }
}

// ---------------------------------------------------------------------
// Statement registry (the DMV behind DM_EXEC_REQUESTS and KILL)
// ---------------------------------------------------------------------

/// What the registry records about one in-flight statement.
struct StatementInfo {
    session_id: u64,
    sql: String,
    started: Instant,
    gov: Arc<QueryGovernor>,
    /// Still waiting at the admission gate (registration happens before
    /// admission so queued statements are visible).
    queued: bool,
}

/// A point-in-time view of one running statement, as surfaced by
/// [`StatementRegistry::snapshot`] and the `DM_EXEC_REQUESTS()` TVF.
#[derive(Debug, Clone)]
pub struct RunningStatement {
    pub statement_id: i64,
    pub session_id: u64,
    pub sql: String,
    pub elapsed: Duration,
    pub mem_used: usize,
    pub aborted: bool,
    pub queued: bool,
    /// Spill files this statement has created so far.
    pub spill_files: u64,
}

impl RunningStatement {
    /// The statement's `wait_state` as surfaced by `DM_EXEC_REQUESTS()`:
    /// `queued` (at the admission gate), `cancelled` (kill/timeout
    /// requested, statement still unwinding), `spilling` (has spilled at
    /// least once), else `running`.
    pub fn wait_state(&self) -> &'static str {
        if self.queued {
            "queued"
        } else if self.aborted {
            "cancelled"
        } else if self.spill_files > 0 {
            "spilling"
        } else {
            "running"
        }
    }
}

/// Registry of running statements, shared by every session of a
/// [`Database`]. Statement ids are process-unique and never reused, so a
/// `KILL` racing with statement completion can only miss (a typed
/// [`DbError::NoSuchStatement`]), never hit an unrelated newer statement.
pub struct StatementRegistry {
    next_id: AtomicI64,
    running: Mutex<HashMap<i64, StatementInfo>>,
}

impl StatementRegistry {
    pub fn new() -> Arc<StatementRegistry> {
        Arc::new(StatementRegistry {
            next_id: AtomicI64::new(1),
            running: Mutex::new(HashMap::new()),
        })
    }

    fn register(&self, session_id: u64, sql: &str, gov: Arc<QueryGovernor>) -> i64 {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.running.lock().insert(
            id,
            StatementInfo {
                session_id,
                sql: sql.to_string(),
                started: Instant::now(),
                gov,
                queued: true,
            },
        );
        id
    }

    /// The statement cleared the admission gate and is now executing.
    fn mark_admitted(&self, id: i64) {
        if let Some(info) = self.running.lock().get_mut(&id) {
            info.queued = false;
        }
    }

    fn deregister(&self, id: i64) {
        self.running.lock().remove(&id);
    }

    /// `KILL <statement id>`: request cancellation of a running
    /// statement. The victim fails with [`DbError::Cancelled`] at its
    /// next cooperative check; a statement that already finished (or
    /// never existed) reports the typed [`DbError::NoSuchStatement`] —
    /// a clean miss the wire server surfaces as a protocol-level error
    /// without dropping the issuing connection.
    pub fn kill(&self, id: i64) -> Result<()> {
        let running = self.running.lock();
        match running.get(&id) {
            Some(info) => {
                info.gov.cancel();
                engine_counters().kills.fetch_add(1, Ordering::Relaxed);
                trace::emit(TraceClass::Kill, "kill", info.session_id, id, || {
                    format!("sql={}", trace_sql(&info.sql))
                });
                Ok(())
            }
            None => Err(DbError::NoSuchStatement(id)),
        }
    }

    /// Cancel every statement a session has in flight — the wire
    /// server's cleanup path when a client disconnects mid-statement.
    /// Returns how many statements were cancelled. Each victim unwinds
    /// at its next cooperative check (statements queued at the
    /// admission gate poll their governor and unwind there), releasing
    /// pins, temp files and its admission reservation through the usual
    /// guard drops.
    pub fn kill_session(&self, session_id: u64) -> usize {
        let running = self.running.lock();
        let mut killed = 0;
        for (&id, info) in running.iter() {
            if info.session_id == session_id && !info.gov.is_aborted() {
                info.gov.cancel();
                engine_counters().kills.fetch_add(1, Ordering::Relaxed);
                trace::emit(TraceClass::Kill, "kill_session", session_id, id, || {
                    format!("sql={}", trace_sql(&info.sql))
                });
                killed += 1;
            }
        }
        killed
    }

    /// Point-in-time view of every running statement, ordered by id.
    pub fn snapshot(&self) -> Vec<RunningStatement> {
        let running = self.running.lock();
        let mut v: Vec<RunningStatement> = running
            .iter()
            .map(|(&id, info)| RunningStatement {
                statement_id: id,
                session_id: info.session_id,
                sql: info.sql.clone(),
                elapsed: info.started.elapsed(),
                mem_used: info.gov.mem_used(),
                aborted: info.gov.is_aborted(),
                queued: info.queued,
                spill_files: info.gov.spill_tally().files(),
            })
            .collect();
        v.sort_by_key(|s| s.statement_id);
        v
    }

    /// Number of statements currently running.
    pub fn running_count(&self) -> usize {
        self.running.lock().len()
    }
}

// ---------------------------------------------------------------------
// Admission control
// ---------------------------------------------------------------------

struct PoolState {
    /// Bytes of the global pool currently reserved by admitted queries.
    in_use: usize,
    /// FIFO tickets of statements waiting at the gate when queued
    /// admission is on (`queue_slots > 0`). Only the front ticket may
    /// admit, so a small query cannot starve a big one that arrived
    /// first.
    queue: VecDeque<u64>,
    next_ticket: u64,
    /// Statements currently blocked at the gate, in either mode — the
    /// `admission_queue_depth` gauge.
    waiting: usize,
}

/// Gate in front of query startup: each *governed* query (one with a
/// memory budget) must reserve its whole budget from a global pool
/// before it begins executing. When the pool is full the query waits,
/// bounded; past the bound it fails with a typed
/// [`DbError::AdmissionTimeout`] — the Resource Governor behaviour of
/// queueing work at the gate instead of letting admitted queries
/// oversubscribe and die mid-flight.
///
/// Ungoverned queries (no budget) bypass the gate: with no declared
/// ceiling there is nothing meaningful to reserve, exactly like SQL
/// Server's small-query bypass.
///
/// Two waiting disciplines, selected per call by `queue_slots`:
///
/// * `queue_slots == 0` — the original free-for-all: every waiter
///   re-checks the pool on each wakeup and whoever fits first wins.
/// * `queue_slots > 0` — **queued admission**: waiters take a FIFO
///   ticket and only the front of the queue may admit, so overload
///   degrades to ordered latency instead of errors; only once the
///   queue itself is full (`queue_slots` waiters deep) does the next
///   arrival get a typed [`DbError::ServerBusy`] rejection.
pub struct AdmissionController {
    state: StdMutex<PoolState>,
    freed: Condvar,
}

impl AdmissionController {
    pub fn new() -> Arc<AdmissionController> {
        Arc::new(AdmissionController {
            state: StdMutex::new(PoolState {
                in_use: 0,
                queue: VecDeque::new(),
                next_ticket: 1,
                waiting: 0,
            }),
            freed: Condvar::new(),
        })
    }

    /// Reserve `bytes` from a pool of `pool_limit` bytes, waiting up to
    /// `wait` for other queries to finish. `bytes == 0` (ungoverned
    /// query) or `pool_limit == None` (admission off) admit immediately.
    ///
    /// With `queue_slots > 0` the wait is FIFO-ordered (see the type
    /// docs). A `gov`, if given, is polled while blocked so `KILL` (or
    /// a client disconnect) evicts a statement still waiting at the
    /// gate instead of letting it run after its session died.
    pub fn admit(
        self: &Arc<Self>,
        bytes: usize,
        pool_limit: Option<usize>,
        wait: Duration,
        queue_slots: usize,
        gov: Option<&QueryGovernor>,
    ) -> Result<AdmissionSlot> {
        let Some(limit) = pool_limit else {
            return Ok(AdmissionSlot {
                ctrl: None,
                bytes: 0,
            });
        };
        if bytes == 0 {
            return Ok(AdmissionSlot {
                ctrl: None,
                bytes: 0,
            });
        }
        if bytes > limit {
            return Err(DbError::AdmissionTimeout(format!(
                "query budget of {bytes} bytes exceeds the global admission pool of {limit} bytes"
            )));
        }
        let deadline = Instant::now() + wait;
        let mut state = self.state.lock().map_err(poisoned)?;
        // Blocked time at the gate is an ADMISSION wait — counted once
        // per statement that had to wait at all, and timed whether the
        // statement eventually got in or timed out.
        let mut wait_start: Option<Instant> = None;
        let mut ticket: Option<u64> = None;
        let outcome = loop {
            // In FIFO mode only the front of the queue may admit; a
            // newcomer with an empty queue is its own front.
            let at_head = match ticket {
                Some(t) => state.queue.front() == Some(&t),
                None => queue_slots == 0 || state.queue.is_empty(),
            };
            if at_head && state.in_use + bytes <= limit {
                if ticket.take().is_some() {
                    state.queue.pop_front();
                    // The new front may already fit alongside us.
                    self.freed.notify_all();
                }
                break Ok(());
            }
            if let Some(g) = gov {
                if let Err(e) = g.check() {
                    break Err(e);
                }
            }
            let now = Instant::now();
            if now >= deadline {
                break Err(DbError::AdmissionTimeout(format!(
                    "admission pool saturated ({} of {limit} bytes reserved); \
                     gave up after {}ms",
                    state.in_use,
                    wait.as_millis()
                )));
            }
            if ticket.is_none() && queue_slots > 0 {
                if state.queue.len() >= queue_slots {
                    break Err(DbError::ServerBusy(format!(
                        "admission queue full ({} statements already waiting; \
                         limit {queue_slots})",
                        state.queue.len()
                    )));
                }
                let t = state.next_ticket;
                state.next_ticket += 1;
                state.queue.push_back(t);
                ticket = Some(t);
            }
            if wait_start.is_none() {
                wait_start = Some(now);
                state.waiting += 1;
                engine_counters()
                    .admission_waits
                    .fetch_add(1, Ordering::Relaxed);
            }
            // With a governor to poll, wake at least every 10ms so a
            // queued statement notices KILL promptly; otherwise sleep
            // until the deadline (wakeups still arrive via `freed`).
            let mut interval = deadline - now;
            if gov.is_some() {
                interval = interval.min(Duration::from_millis(10));
            }
            let (guard, _timeout) = self
                .freed
                .wait_timeout(state, interval)
                .map_err(|_| DbError::Execution("admission pool lock poisoned".into()))?;
            state = guard;
        };
        if let Some(t) = ticket {
            // Error exit while still queued: give the slot back and let
            // the statement behind us advance to the front.
            state.queue.retain(|&q| q != t);
            self.freed.notify_all();
        }
        if wait_start.is_some() {
            state.waiting -= 1;
        }
        if let Some(start) = wait_start {
            let waited = start.elapsed();
            waits().record(WaitClass::Admission, waited);
            if let Some(g) = gov {
                g.add_admission_wait(waited);
            }
        }
        outcome?;
        state.in_use += bytes;
        Ok(AdmissionSlot {
            ctrl: Some(self.clone()),
            bytes,
        })
    }

    /// Bytes currently reserved from the pool (0 when idle — the leak
    /// probe used by tests).
    pub fn reserved(&self) -> usize {
        self.state.lock().map(|s| s.in_use).unwrap_or(usize::MAX)
    }

    /// Statements currently blocked at the admission gate — the
    /// `admission_queue_depth` gauge in `DM_OS_PERFORMANCE_COUNTERS()`.
    pub fn queue_depth(&self) -> usize {
        self.state.lock().map(|s| s.waiting).unwrap_or(usize::MAX)
    }

    fn release(&self, bytes: usize) {
        if let Ok(mut state) = self.state.lock() {
            state.in_use = state.in_use.saturating_sub(bytes);
        }
        self.freed.notify_all();
    }
}

fn poisoned<T>(_: std::sync::PoisonError<T>) -> DbError {
    DbError::Execution("admission pool lock poisoned".into())
}

/// RAII admission reservation; returns its bytes to the pool (and wakes
/// waiters) on drop.
pub struct AdmissionSlot {
    ctrl: Option<Arc<AdmissionController>>,
    bytes: usize,
}

impl std::fmt::Debug for AdmissionSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AdmissionSlot")
            .field("bytes", &self.bytes)
            .finish()
    }
}

impl Drop for AdmissionSlot {
    fn drop(&mut self) {
        if let Some(ctrl) = self.ctrl.take() {
            ctrl.release(self.bytes);
        }
    }
}

// ---------------------------------------------------------------------
// DM_EXEC_REQUESTS() — the DMV as a table-valued function
// ---------------------------------------------------------------------

/// `SELECT * FROM DM_EXEC_REQUESTS()` — seqdb's `sys.dm_exec_requests`:
/// one row per running statement, including the statement issuing the
/// query itself.
pub struct DmExecRequestsFn {
    registry: Arc<StatementRegistry>,
}

impl DmExecRequestsFn {
    pub fn new(registry: Arc<StatementRegistry>) -> DmExecRequestsFn {
        DmExecRequestsFn { registry }
    }
}

struct DmExecRequestsCursor {
    rows: std::vec::IntoIter<Row>,
    current: Option<Row>,
}

impl TvfCursor for DmExecRequestsCursor {
    fn move_next(&mut self) -> Result<bool> {
        self.current = self.rows.next();
        Ok(self.current.is_some())
    }
    fn fill_row(&mut self) -> Result<Row> {
        self.current
            .clone()
            .ok_or_else(|| DbError::Execution("fill_row past end of DM_EXEC_REQUESTS".into()))
    }
}

impl TableFunction for DmExecRequestsFn {
    fn name(&self) -> &str {
        "DM_EXEC_REQUESTS"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Column::new("statement_id", DataType::Int).not_null(),
            Column::new("session_id", DataType::Int).not_null(),
            Column::new("sql_text", DataType::Text).not_null(),
            Column::new("elapsed_ms", DataType::Int).not_null(),
            Column::new("mem_used_bytes", DataType::Int).not_null(),
            Column::new("status", DataType::Text).not_null(),
            Column::new("wait_state", DataType::Text).not_null(),
        ]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        if !args.is_empty() {
            return Err(DbError::Execution(
                "DM_EXEC_REQUESTS() takes no arguments".into(),
            ));
        }
        let rows: Vec<Row> = self
            .registry
            .snapshot()
            .into_iter()
            .map(|s| {
                let wait_state = s.wait_state();
                Row::new(vec![
                    Value::Int(s.statement_id),
                    Value::Int(s.session_id as i64),
                    Value::text(s.sql.clone()),
                    Value::Int(s.elapsed.as_millis() as i64),
                    Value::Int(s.mem_used as i64),
                    Value::text(if s.aborted { "aborted" } else { "running" }),
                    Value::text(wait_state),
                ])
            })
            .collect();
        Ok(Box::new(DmExecRequestsCursor {
            rows: rows.into_iter(),
            current: None,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn settings_overlay_inherits_then_overrides() {
        let db = Database::in_memory();
        db.set_query_timeout_ms(Some(500));
        let s = db.create_session();
        // Inherits the server default until overridden.
        assert_eq!(s.effective_config().query_timeout_ms, Some(500));
        s.set_query_timeout_ms(Some(100));
        assert_eq!(s.effective_config().query_timeout_ms, Some(100));
        // Explicit off beats the server default.
        s.set_query_timeout_ms(None);
        assert_eq!(s.effective_config().query_timeout_ms, None);
        // And the server default is untouched.
        assert_eq!(db.config().query_timeout_ms, Some(500));
    }

    #[test]
    fn sessions_do_not_share_overrides() {
        let db = Database::in_memory();
        let a = db.create_session();
        let b = db.create_session();
        assert_ne!(a.id(), b.id());
        a.set_max_dop(1);
        assert_eq!(a.effective_config().max_dop, 1);
        assert_eq!(b.effective_config().max_dop, db.config().max_dop);
    }

    #[test]
    fn registry_registers_kills_and_deregisters() {
        let reg = StatementRegistry::new();
        let gov = QueryGovernor::unlimited();
        let id = reg.register(7, "SELECT 1", gov.clone());
        assert_eq!(reg.running_count(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap[0].session_id, 7);
        assert_eq!(snap[0].sql, "SELECT 1");
        assert!(!snap[0].aborted);
        reg.kill(id).unwrap();
        assert!(gov.is_aborted());
        assert!(reg.snapshot()[0].aborted);
        reg.deregister(id);
        assert_eq!(reg.running_count(), 0);
        assert!(matches!(reg.kill(id), Err(DbError::NoSuchStatement(k)) if k == id));
    }

    #[test]
    fn kill_session_cancels_only_that_sessions_statements() {
        let reg = StatementRegistry::new();
        let g1 = QueryGovernor::unlimited();
        let g2 = QueryGovernor::unlimited();
        let g3 = QueryGovernor::unlimited();
        reg.register(7, "SELECT 1", g1.clone());
        reg.register(7, "SELECT 2", g2.clone());
        reg.register(9, "SELECT 3", g3.clone());
        assert_eq!(reg.kill_session(7), 2);
        assert!(g1.is_aborted() && g2.is_aborted());
        assert!(!g3.is_aborted(), "other sessions are untouched");
        // Idempotent: already-aborted statements are not re-counted.
        assert_eq!(reg.kill_session(7), 0);
        assert_eq!(reg.kill_session(42), 0, "unknown session is a no-op");
    }

    #[test]
    fn statement_guard_cleans_up_on_drop() {
        let db = Database::in_memory();
        db.set_admission_pool_kb(Some(64));
        let s = db.create_session();
        s.set_query_memory_limit_kb(Some(32));
        {
            let (_ctx, guard) = s.begin_statement("SELECT 1").unwrap();
            assert_eq!(db.statements().running_count(), 1);
            assert_eq!(db.admission().reserved(), 32 * 1024);
            let _ = guard.statement_id();
        }
        assert_eq!(db.statements().running_count(), 0);
        assert_eq!(db.admission().reserved(), 0);
    }

    #[test]
    fn admission_pool_admits_queues_and_times_out() {
        let ctrl = AdmissionController::new();
        let limit = Some(1000);
        let wait = Duration::from_millis(50);
        // Ungoverned and admission-off queries bypass the pool.
        let free = ctrl.admit(0, limit, wait, 0, None).unwrap();
        let off = ctrl.admit(800, None, wait, 0, None).unwrap();
        assert_eq!(ctrl.reserved(), 0);
        drop((free, off));

        let a = ctrl.admit(600, limit, wait, 0, None).unwrap();
        let b = ctrl.admit(400, limit, wait, 0, None).unwrap();
        assert_eq!(ctrl.reserved(), 1000);
        // Pool full: a third governed query times out, typed.
        let err = ctrl.admit(100, limit, wait, 0, None).unwrap_err();
        assert!(matches!(err, DbError::AdmissionTimeout(_)), "{err}");
        // A budget bigger than the whole pool can never be admitted.
        let err = ctrl.admit(2000, limit, wait, 0, None).unwrap_err();
        assert!(matches!(err, DbError::AdmissionTimeout(_)), "{err}");
        drop(a);
        // Freed capacity admits the next query.
        let c = ctrl.admit(100, limit, wait, 0, None).unwrap();
        drop((b, c));
        assert_eq!(ctrl.reserved(), 0);
    }

    #[test]
    fn admission_wait_succeeds_when_capacity_frees_in_time() {
        let ctrl = AdmissionController::new();
        let limit = Some(1000);
        let a = ctrl
            .admit(1000, limit, Duration::from_millis(10), 0, None)
            .unwrap();
        let ctrl2 = ctrl.clone();
        let releaser = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(30));
            drop(a);
        });
        // Waits past the release and gets in, well before the bound.
        let b = ctrl2
            .admit(1000, limit, Duration::from_secs(5), 0, None)
            .unwrap();
        releaser.join().unwrap();
        drop(b);
        assert_eq!(ctrl.reserved(), 0);
    }

    #[test]
    fn queued_admission_is_fifo_ordered() {
        let ctrl = AdmissionController::new();
        let limit = Some(1000);
        let first = ctrl
            .admit(950, limit, Duration::from_secs(5), 8, None)
            .unwrap();
        // `big` queues first and needs the whole pool; `small` queues
        // second and would fit *right now* (950 + 50 ≤ 1000) under the
        // free-for-all discipline — FIFO makes it wait its turn.
        let order = Arc::new(Mutex::new(Vec::new()));
        let (c1, o1) = (ctrl.clone(), order.clone());
        let big = std::thread::spawn(move || {
            let s = c1
                .admit(1000, Some(1000), Duration::from_secs(5), 8, None)
                .unwrap();
            o1.lock().push("big");
            std::thread::sleep(Duration::from_millis(30));
            drop(s);
        });
        // Make sure `big` is enqueued before `small` arrives.
        while ctrl.queue_depth() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        let (c2, o2) = (ctrl.clone(), order.clone());
        let small = std::thread::spawn(move || {
            let s = c2
                .admit(50, Some(1000), Duration::from_secs(5), 8, None)
                .unwrap();
            o2.lock().push("small");
            drop(s);
        });
        while ctrl.queue_depth() < 2 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // Small fits but is not at the front: it must still be waiting.
        std::thread::sleep(Duration::from_millis(20));
        assert!(order.lock().is_empty(), "nobody admits past a full head");
        drop(first);
        big.join().unwrap();
        small.join().unwrap();
        assert_eq!(*order.lock(), vec!["big", "small"], "FIFO, not size-based");
        assert_eq!(ctrl.reserved(), 0);
        assert_eq!(ctrl.queue_depth(), 0);
    }

    #[test]
    fn full_admission_queue_rejects_with_server_busy() {
        let ctrl = AdmissionController::new();
        let limit = Some(100);
        let slot = ctrl
            .admit(100, limit, Duration::from_secs(5), 1, None)
            .unwrap();
        let c = ctrl.clone();
        let waiter =
            std::thread::spawn(move || c.admit(100, Some(100), Duration::from_secs(5), 1, None));
        while ctrl.queue_depth() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        // The single queue slot is taken: the next arrival is rejected
        // immediately with the typed overload error, not a timeout.
        let err = ctrl
            .admit(100, limit, Duration::from_secs(5), 1, None)
            .unwrap_err();
        assert!(matches!(err, DbError::ServerBusy(_)), "{err}");
        drop(slot);
        assert!(waiter.join().unwrap().is_ok(), "queued waiter still admits");
        assert_eq!(ctrl.reserved(), 0);
    }

    #[test]
    fn kill_evicts_a_statement_queued_at_the_gate() {
        let ctrl = AdmissionController::new();
        let limit = Some(100);
        let slot = ctrl
            .admit(100, limit, Duration::from_secs(30), 4, None)
            .unwrap();
        let gov = QueryGovernor::unlimited();
        let (c, g) = (ctrl.clone(), gov.clone());
        let queued = std::thread::spawn(move || {
            c.admit(100, Some(100), Duration::from_secs(30), 4, Some(&g))
        });
        while ctrl.queue_depth() < 1 {
            std::thread::sleep(Duration::from_millis(1));
        }
        gov.cancel();
        let err = queued.join().unwrap().unwrap_err();
        assert!(matches!(err, DbError::Cancelled(_)), "{err}");
        // The dead waiter left the queue; capacity and depth are clean.
        assert_eq!(ctrl.queue_depth(), 0);
        drop(slot);
        assert_eq!(ctrl.reserved(), 0);
    }
}

//! Built-in scalar functions (the T-SQL functions the paper's queries
//! use: `CHARINDEX`, `DATALENGTH`, `NEWID`, plus general string/number
//! helpers). All are ordinary [`ScalarUdf`]s registered in the function
//! registry at database creation — user extensions go through exactly the
//! same door.

use std::sync::atomic::{AtomicU64, Ordering};

use seqdb_types::{DbError, Result, Value};

use crate::udx::ScalarUdf;

fn wrong_args(name: &str, expect: &str) -> DbError {
    DbError::Execution(format!("{name} expects {expect}"))
}

macro_rules! scalar_fn {
    ($ty:ident, $name:literal, |$args:ident| $body:expr) => {
        pub struct $ty;
        impl ScalarUdf for $ty {
            fn name(&self) -> &str {
                $name
            }
            fn invoke(&self, $args: &[Value]) -> Result<Value> {
                $body
            }
        }
    };
}

// CHARINDEX(needle, haystack) -> 1-based position, 0 if absent (T-SQL).
scalar_fn!(CharIndexFn, "CHARINDEX", |args| {
    match args {
        [Value::Null, _] | [_, Value::Null] => Ok(Value::Null),
        [needle, haystack] => {
            let n = needle.as_text()?;
            let h = haystack.as_text()?;
            Ok(Value::Int(match h.find(n) {
                Some(byte_pos) => (h[..byte_pos].chars().count() + 1) as i64,
                None => 0,
            }))
        }
        _ => Err(wrong_args("CHARINDEX", "(needle, haystack)")),
    }
});

// LEN(text) -> character count.
scalar_fn!(LenFn, "LEN", |args| {
    match args {
        [Value::Null] => Ok(Value::Null),
        [v] => Ok(Value::Int(v.as_text()?.chars().count() as i64)),
        _ => Err(wrong_args("LEN", "(text)")),
    }
});

// DATALENGTH(value) -> storage bytes (notably: BLOB length).
scalar_fn!(DataLengthFn, "DATALENGTH", |args| {
    match args {
        [Value::Null] => Ok(Value::Null),
        [Value::Text(s)] => Ok(Value::Int(s.len() as i64)),
        [Value::Bytes(b)] => Ok(Value::Int(b.len() as i64)),
        [Value::Int(_) | Value::Float(_)] => Ok(Value::Int(8)),
        [Value::Bool(_)] => Ok(Value::Int(1)),
        [Value::Guid(_)] => Ok(Value::Int(16)),
        _ => Err(wrong_args("DATALENGTH", "(value)")),
    }
});

// SUBSTRING(text, start, length) -> 1-based substring (T-SQL).
scalar_fn!(SubstringFn, "SUBSTRING", |args| {
    match args {
        [Value::Null, _, _] => Ok(Value::Null),
        [text, start, len] => {
            let t = text.as_text()?;
            let start = start.as_int()?.max(1) as usize - 1;
            let len = len.as_int()?.max(0) as usize;
            let s: String = t.chars().skip(start).take(len).collect();
            Ok(Value::text(s))
        }
        _ => Err(wrong_args("SUBSTRING", "(text, start, length)")),
    }
});

scalar_fn!(UpperFn, "UPPER", |args| {
    match args {
        [Value::Null] => Ok(Value::Null),
        [v] => Ok(Value::text(v.as_text()?.to_uppercase())),
        _ => Err(wrong_args("UPPER", "(text)")),
    }
});

scalar_fn!(LowerFn, "LOWER", |args| {
    match args {
        [Value::Null] => Ok(Value::Null),
        [v] => Ok(Value::text(v.as_text()?.to_lowercase())),
        _ => Err(wrong_args("LOWER", "(text)")),
    }
});

// REPLACE(text, from, to).
scalar_fn!(ReplaceFn, "REPLACE", |args| {
    match args {
        [Value::Null, _, _] => Ok(Value::Null),
        [text, from, to] => Ok(Value::text(
            text.as_text()?.replace(from.as_text()?, to.as_text()?),
        )),
        _ => Err(wrong_args("REPLACE", "(text, from, to)")),
    }
});

scalar_fn!(AbsFn, "ABS", |args| {
    match args {
        [Value::Null] => Ok(Value::Null),
        [Value::Int(i)] => Ok(Value::Int(i.abs())),
        [Value::Float(f)] => Ok(Value::Float(f.abs())),
        _ => Err(wrong_args("ABS", "(number)")),
    }
});

// ROUND(number, digits).
scalar_fn!(RoundFn, "ROUND", |args| {
    match args {
        [Value::Null, _] => Ok(Value::Null),
        [v, d] => {
            let x = v.as_float()?;
            let digits = d.as_int()?;
            let factor = 10f64.powi(digits as i32);
            Ok(Value::Float((x * factor).round() / factor))
        }
        _ => Err(wrong_args("ROUND", "(number, digits)")),
    }
});

// ISNULL(value, fallback) — T-SQL COALESCE with two arguments.
scalar_fn!(IsNullFn, "ISNULL", |args| {
    match args {
        [v, fallback] => Ok(if v.is_null() {
            fallback.clone()
        } else {
            v.clone()
        }),
        _ => Err(wrong_args("ISNULL", "(value, fallback)")),
    }
});

// CAST helpers (the parser lowers CAST(x AS T) onto these).
scalar_fn!(ToIntFn, "TO_INT", |args| {
    match args {
        [Value::Null] => Ok(Value::Null),
        [Value::Int(i)] => Ok(Value::Int(*i)),
        [Value::Float(f)] => Ok(Value::Int(*f as i64)),
        [Value::Bool(b)] => Ok(Value::Int(*b as i64)),
        [Value::Text(s)] => s
            .trim()
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| DbError::Execution(format!("cannot cast '{s}' to BIGINT"))),
        _ => Err(wrong_args("TO_INT", "(value)")),
    }
});

scalar_fn!(ToFloatFn, "TO_FLOAT", |args| {
    match args {
        [Value::Null] => Ok(Value::Null),
        [Value::Int(i)] => Ok(Value::Float(*i as f64)),
        [Value::Float(f)] => Ok(Value::Float(*f)),
        [Value::Text(s)] => s
            .trim()
            .parse::<f64>()
            .map(Value::Float)
            .map_err(|_| DbError::Execution(format!("cannot cast '{s}' to FLOAT"))),
        _ => Err(wrong_args("TO_FLOAT", "(value)")),
    }
});

scalar_fn!(ToTextFn, "TO_VARCHAR", |args| {
    match args {
        [Value::Null] => Ok(Value::Null),
        [v] => Ok(Value::text(v.to_string())),
        _ => Err(wrong_args("TO_VARCHAR", "(value)")),
    }
});

/// `NEWID()`: generates fresh GUIDs. Stateful (a counter mixed with the
/// clock) so it is a struct with interior state rather than a macro fn.
pub struct NewIdFn {
    counter: AtomicU64,
}

impl NewIdFn {
    pub fn new() -> NewIdFn {
        NewIdFn {
            counter: AtomicU64::new(1),
        }
    }
}

impl Default for NewIdFn {
    fn default() -> Self {
        Self::new()
    }
}

impl ScalarUdf for NewIdFn {
    fn name(&self) -> &str {
        "NEWID"
    }
    fn invoke(&self, args: &[Value]) -> Result<Value> {
        if !args.is_empty() {
            return Err(wrong_args("NEWID", "no arguments"));
        }
        let seq = self.counter.fetch_add(1, Ordering::Relaxed) as u128;
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos())
            .unwrap_or(0);
        Ok(Value::Guid((now << 32) ^ (seq << 1) ^ 0x4242))
    }
}

/// All built-ins, for registration into a fresh database.
pub fn all_builtins() -> Vec<std::sync::Arc<dyn ScalarUdf>> {
    vec![
        std::sync::Arc::new(CharIndexFn),
        std::sync::Arc::new(LenFn),
        std::sync::Arc::new(DataLengthFn),
        std::sync::Arc::new(SubstringFn),
        std::sync::Arc::new(UpperFn),
        std::sync::Arc::new(LowerFn),
        std::sync::Arc::new(ReplaceFn),
        std::sync::Arc::new(AbsFn),
        std::sync::Arc::new(RoundFn),
        std::sync::Arc::new(IsNullFn),
        std::sync::Arc::new(ToIntFn),
        std::sync::Arc::new(ToFloatFn),
        std::sync::Arc::new(ToTextFn),
        std::sync::Arc::new(NewIdFn::new()),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charindex_matches_tsql() {
        // The paper's Query 1 filter: CHARINDEX('N', seq) = 0 keeps
        // N-free reads.
        let f = CharIndexFn;
        assert_eq!(
            f.invoke(&[Value::text("N"), Value::text("ACGT")]).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            f.invoke(&[Value::text("N"), Value::text("ACNGT")]).unwrap(),
            Value::Int(3)
        );
        assert_eq!(
            f.invoke(&[Value::Null, Value::text("x")]).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn substring_is_one_based() {
        let f = SubstringFn;
        assert_eq!(
            f.invoke(&[Value::text("GATTACA"), Value::Int(2), Value::Int(3)])
                .unwrap(),
            Value::text("ATT")
        );
    }

    #[test]
    fn datalength_counts_bytes() {
        let f = DataLengthFn;
        assert_eq!(
            f.invoke(&[Value::bytes(vec![0u8; 500])]).unwrap(),
            Value::Int(500)
        );
        assert_eq!(f.invoke(&[Value::Int(7)]).unwrap(), Value::Int(8));
    }

    #[test]
    fn casts() {
        assert_eq!(
            ToIntFn.invoke(&[Value::text(" 42 ")]).unwrap(),
            Value::Int(42)
        );
        assert!(ToIntFn.invoke(&[Value::text("4x")]).is_err());
        assert_eq!(
            ToFloatFn.invoke(&[Value::Int(2)]).unwrap(),
            Value::Float(2.0)
        );
        assert_eq!(ToTextFn.invoke(&[Value::Int(7)]).unwrap(), Value::text("7"));
    }

    #[test]
    fn newid_unique() {
        let f = NewIdFn::new();
        let a = f.invoke(&[]).unwrap();
        let b = f.invoke(&[]).unwrap();
        assert_ne!(a, b);
        assert!(f.invoke(&[Value::Int(1)]).is_err());
    }

    #[test]
    fn isnull_fallback() {
        let f = IsNullFn;
        assert_eq!(
            f.invoke(&[Value::Null, Value::Int(0)]).unwrap(),
            Value::Int(0)
        );
        assert_eq!(
            f.invoke(&[Value::Int(5), Value::Int(0)]).unwrap(),
            Value::Int(5)
        );
    }
}

//! The connection registry and its DMV, `DM_EXEC_CONNECTIONS()`.
//!
//! The wire server registers every accepted connection here so the
//! question "who is connected, and what are they doing?" is answerable
//! from SQL — the analogue of `sys.dm_exec_connections`. Like the
//! pinned-frames and live-temp-file gauges, `active_connections` (in
//! `DM_OS_PERFORMANCE_COUNTERS()`) reads zero when no client is
//! connected, so "the server leaked a connection" is a one-line SQL
//! assertion from a monitoring session.
//!
//! The registry lives in the engine rather than the server crate because
//! DMVs are registered by [`Database`](crate::Database) assembly; the
//! server is just one producer of entries (an embedded test harness can
//! register fake connections the same way).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use parking_lot::Mutex;

use seqdb_types::{Column, DataType, DbError, Result, Row, Schema, Value};

use crate::exec::ExecContext;
use crate::udx::{TableFunction, TvfCursor};

/// Where a connection is in its lifecycle, as shown by the DMV.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConnState {
    /// Between requests, waiting for the client's next frame.
    Idle,
    /// A statement is in flight (including writing its response).
    Executing,
    /// The server is draining; the connection finishes its in-flight
    /// work (if any) and closes instead of accepting another request.
    Draining,
}

impl ConnState {
    pub fn name(self) -> &'static str {
        match self {
            ConnState::Idle => "idle",
            ConnState::Executing => "executing",
            ConnState::Draining => "draining",
        }
    }
}

struct ConnInfo {
    peer: String,
    session_id: u64,
    state: ConnState,
    last_activity: Instant,
}

/// A point-in-time view of one live connection.
#[derive(Debug, Clone)]
pub struct ConnectionInfo {
    pub connection_id: u64,
    pub peer: String,
    pub session_id: u64,
    pub state: ConnState,
    /// Time since the connection last made progress (request received,
    /// state change, response written).
    pub idle: std::time::Duration,
}

/// Registry of live client connections. Connection ids are process-unique
/// and never reused.
pub struct ConnectionRegistry {
    next_id: AtomicU64,
    live: Mutex<HashMap<u64, ConnInfo>>,
}

impl ConnectionRegistry {
    pub fn new() -> Arc<ConnectionRegistry> {
        Arc::new(ConnectionRegistry {
            next_id: AtomicU64::new(1),
            live: Mutex::new(HashMap::new()),
        })
    }

    /// Register a newly accepted connection; the returned RAII handle
    /// deregisters it when dropped (clean close and unwind alike).
    pub fn register(self: &Arc<Self>, peer: &str, session_id: u64) -> ConnectionHandle {
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.live.lock().insert(
            id,
            ConnInfo {
                peer: peer.to_string(),
                session_id,
                state: ConnState::Idle,
                last_activity: Instant::now(),
            },
        );
        let peer = peer.to_string();
        crate::trace::emit(
            crate::trace::TraceClass::Connection,
            "connection_open",
            session_id,
            0,
            || format!("conn={id} peer={peer}"),
        );
        ConnectionHandle {
            registry: self.clone(),
            id,
        }
    }

    /// Live connections right now (the `active_connections` gauge).
    pub fn active_count(&self) -> usize {
        self.live.lock().len()
    }

    /// Connections with a statement in flight.
    pub fn executing_count(&self) -> usize {
        self.live
            .lock()
            .values()
            .filter(|c| c.state == ConnState::Executing)
            .count()
    }

    /// Point-in-time view of every live connection, ordered by id.
    pub fn snapshot(&self) -> Vec<ConnectionInfo> {
        let live = self.live.lock();
        let mut v: Vec<ConnectionInfo> = live
            .iter()
            .map(|(&id, c)| ConnectionInfo {
                connection_id: id,
                peer: c.peer.clone(),
                session_id: c.session_id,
                state: c.state,
                idle: c.last_activity.elapsed(),
            })
            .collect();
        v.sort_by_key(|c| c.connection_id);
        v
    }

    fn set_state(&self, id: u64, state: ConnState) {
        if let Some(c) = self.live.lock().get_mut(&id) {
            c.state = state;
            c.last_activity = Instant::now();
        }
    }

    fn touch(&self, id: u64) {
        if let Some(c) = self.live.lock().get_mut(&id) {
            c.last_activity = Instant::now();
        }
    }

    fn deregister(&self, id: u64) {
        let info = self.live.lock().remove(&id);
        if let Some(info) = info {
            crate::trace::emit(
                crate::trace::TraceClass::Connection,
                "connection_close",
                info.session_id,
                0,
                || format!("conn={id} peer={}", info.peer),
            );
        }
    }
}

/// RAII handle for one registered connection.
pub struct ConnectionHandle {
    registry: Arc<ConnectionRegistry>,
    id: u64,
}

impl ConnectionHandle {
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Move the connection through its lifecycle (also bumps the
    /// last-activity clock the DMV's `idle_ms` is computed from).
    pub fn set_state(&self, state: ConnState) {
        self.registry.set_state(self.id, state);
    }

    /// Record progress without a state change (bytes arrived / left).
    pub fn touch(&self) {
        self.registry.touch(self.id);
    }
}

impl Drop for ConnectionHandle {
    fn drop(&mut self) {
        self.registry.deregister(self.id);
    }
}

// ---------------------------------------------------------------------
// DM_EXEC_CONNECTIONS() — the DMV as a table-valued function
// ---------------------------------------------------------------------

/// `SELECT * FROM DM_EXEC_CONNECTIONS()` — one row per live client
/// connection: id, peer address, the session serving it, lifecycle
/// state, and how long since it last made progress.
pub struct DmExecConnectionsFn {
    registry: Arc<ConnectionRegistry>,
}

impl DmExecConnectionsFn {
    pub fn new(registry: Arc<ConnectionRegistry>) -> DmExecConnectionsFn {
        DmExecConnectionsFn { registry }
    }
}

struct ConnCursor {
    rows: std::vec::IntoIter<Row>,
    current: Option<Row>,
}

impl TvfCursor for ConnCursor {
    fn move_next(&mut self) -> Result<bool> {
        self.current = self.rows.next();
        Ok(self.current.is_some())
    }
    fn fill_row(&mut self) -> Result<Row> {
        self.current
            .clone()
            .ok_or_else(|| DbError::Execution("fill_row past end of DM_EXEC_CONNECTIONS".into()))
    }
}

impl TableFunction for DmExecConnectionsFn {
    fn name(&self) -> &str {
        "DM_EXEC_CONNECTIONS"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Column::new("connection_id", DataType::Int).not_null(),
            Column::new("peer_addr", DataType::Text).not_null(),
            Column::new("session_id", DataType::Int).not_null(),
            Column::new("state", DataType::Text).not_null(),
            Column::new("idle_ms", DataType::Int).not_null(),
        ]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        if !args.is_empty() {
            return Err(DbError::Execution(
                "DM_EXEC_CONNECTIONS() takes no arguments".into(),
            ));
        }
        let rows: Vec<Row> = self
            .registry
            .snapshot()
            .into_iter()
            .map(|c| {
                Row::new(vec![
                    Value::Int(c.connection_id as i64),
                    Value::text(c.peer),
                    Value::Int(c.session_id as i64),
                    Value::text(c.state.name()),
                    Value::Int(c.idle.as_millis() as i64),
                ])
            })
            .collect();
        Ok(Box::new(ConnCursor {
            rows: rows.into_iter(),
            current: None,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_snapshot_and_raii_deregister() {
        let reg = ConnectionRegistry::new();
        assert_eq!(reg.active_count(), 0);
        let a = reg.register("127.0.0.1:5001", 7);
        let b = reg.register("127.0.0.1:5002", 8);
        assert_ne!(a.id(), b.id());
        assert_eq!(reg.active_count(), 2);
        b.set_state(ConnState::Executing);
        assert_eq!(reg.executing_count(), 1);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].session_id, 7);
        assert_eq!(snap[1].state, ConnState::Executing);
        drop(a);
        assert_eq!(reg.active_count(), 1, "drop deregisters");
        drop(b);
        assert_eq!(reg.active_count(), 0);
    }

    #[test]
    fn idle_clock_resets_on_touch() {
        let reg = ConnectionRegistry::new();
        let h = reg.register("peer", 1);
        std::thread::sleep(std::time::Duration::from_millis(20));
        let before = reg.snapshot()[0].idle;
        assert!(before.as_millis() >= 15, "{before:?}");
        h.touch();
        let after = reg.snapshot()[0].idle;
        assert!(after < before, "touch must reset the idle clock");
    }

    #[test]
    fn dmv_renders_connection_rows() {
        let reg = ConnectionRegistry::new();
        let _h = reg.register("10.0.0.9:4242", 3);
        let f = DmExecConnectionsFn::new(reg.clone());
        let ctx = crate::exec::testutil::test_context();
        let mut cursor = f.open(&[], &ctx).unwrap();
        assert!(cursor.move_next().unwrap());
        let row = cursor.fill_row().unwrap();
        assert_eq!(row[1], Value::text("10.0.0.9:4242"));
        assert_eq!(row[2], Value::Int(3));
        assert_eq!(row[3], Value::text("idle"));
        assert!(!cursor.move_next().unwrap());
        assert!(f.open(&[Value::Int(1)], &ctx).is_err(), "no args allowed");
    }
}

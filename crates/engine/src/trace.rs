//! Structured event tracing: lock-light per-thread ring buffers of
//! typed engine events.
//!
//! The paper's operational story (multi-hour genomics pipelines living
//! *inside* the database) needs the SQL Server answer to "what did the
//! engine just do?": Extended Events rings readable from a DMV, cheap
//! enough to leave on. seqdb's analogue:
//!
//! * a process-global [`Tracer`] with an **enabled-class bitmask** — the
//!   per-event cost while tracing is off is one relaxed atomic load, and
//!   detail strings are built lazily (closure) only when the class is on;
//! * **per-thread ring buffers**: each emitting thread appends to its own
//!   bounded ring behind an uncontended mutex, so hot paths never fight
//!   over one global lock. When a thread exits (the wire server runs one
//!   worker thread per statement) its ring is *retired* into a shared
//!   bounded overflow ring so recent events survive the thread;
//! * `SET TRACE_EVENTS = 'STATEMENT,WAIT,...'` / `'ALL'` / `'OFF'`
//!   controls the mask from SQL (server-wide, like the admission knobs);
//! * [`DmOsRingBufferFn`] (`DM_OS_RING_BUFFER()`) snapshots every ring,
//!   merged and ordered by sequence number — the `sys.dm_os_ring_buffers`
//!   analogue;
//! * an optional **sink buffer** the wire server drains to a JSONL trace
//!   file and slow-statement log (events are copied there only while a
//!   sink is attached).
//!
//! Wait events are recorded at the *end* of the blocked interval with
//! their duration, so the begin time is derivable (`ts_us - wait_us`)
//! without paying for two events per wait.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

use parking_lot::Mutex;

use seqdb_storage::{install_trace_hook, StorageEvent};
use seqdb_types::{Column, DataType, DbError, Result, Row, Schema, Value};

use crate::exec::ExecContext;
use crate::udx::{TableFunction, TvfCursor};

/// Classes of traced events, one bit each in the tracer mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceClass {
    /// Statement start/finish and slow-statement markers.
    Statement = 0,
    /// One engine wait (admission, buffer I/O, spill I/O, ...).
    Wait = 1,
    /// Spill-file creation in a temp space.
    Spill = 2,
    /// Admission-gate outcomes: queued, admitted, timed out, rejected.
    Admission = 3,
    /// `KILL` / session kills.
    Kill = 4,
    /// Objects fenced into (or released from) the quarantine.
    Quarantine = 5,
    /// Integrity-scrub pass lifecycle.
    Scrub = 6,
    /// Online-backup pass lifecycle.
    Backup = 7,
    /// Wire connection open/close and server drain.
    Connection = 8,
}

/// Every class, in rendering order.
pub const TRACE_CLASSES: [TraceClass; 9] = [
    TraceClass::Statement,
    TraceClass::Wait,
    TraceClass::Spill,
    TraceClass::Admission,
    TraceClass::Kill,
    TraceClass::Quarantine,
    TraceClass::Scrub,
    TraceClass::Backup,
    TraceClass::Connection,
];

/// Mask with every class enabled (`SET TRACE_EVENTS = 'ALL'`).
pub const MASK_ALL: u32 = (1 << TRACE_CLASSES.len()) - 1;

impl TraceClass {
    /// This class's bit in the tracer mask.
    pub fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// The `class` string rendered by `DM_OS_RING_BUFFER()` and accepted
    /// by `SET TRACE_EVENTS`.
    pub fn name(self) -> &'static str {
        match self {
            TraceClass::Statement => "STATEMENT",
            TraceClass::Wait => "WAIT",
            TraceClass::Spill => "SPILL",
            TraceClass::Admission => "ADMISSION",
            TraceClass::Kill => "KILL",
            TraceClass::Quarantine => "QUARANTINE",
            TraceClass::Scrub => "SCRUB",
            TraceClass::Backup => "BACKUP",
            TraceClass::Connection => "CONNECTION",
        }
    }

    fn from_name(s: &str) -> Option<TraceClass> {
        TRACE_CLASSES
            .iter()
            .copied()
            .find(|c| c.name().eq_ignore_ascii_case(s))
    }
}

/// Parse a `SET TRACE_EVENTS` value: `'ALL'`, `'OFF'`, or a
/// comma-separated class list (`'STATEMENT, WAIT, KILL'`).
pub fn parse_mask(s: &str) -> Result<u32> {
    let t = s.trim();
    if t.eq_ignore_ascii_case("all") {
        return Ok(MASK_ALL);
    }
    if t.eq_ignore_ascii_case("off") || t.is_empty() {
        return Ok(0);
    }
    let mut mask = 0u32;
    for part in t.split(',') {
        let part = part.trim();
        match TraceClass::from_name(part) {
            Some(c) => mask |= c.bit(),
            None => {
                return Err(DbError::Unsupported(format!(
                    "SET TRACE_EVENTS: unknown event class '{part}' \
                     (want ALL, OFF, or a list of {})",
                    TRACE_CLASSES
                        .iter()
                        .map(|c| c.name())
                        .collect::<Vec<_>>()
                        .join("/")
                )))
            }
        }
    }
    Ok(mask)
}

/// One traced event.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Process-wide monotonic sequence number (the merge order).
    pub seq: u64,
    /// Microseconds since process start (see [`process_start`]).
    pub ts_us: u64,
    pub class: TraceClass,
    /// Event kind within the class (`statement_finish`, `wait`, ...).
    pub name: &'static str,
    /// Owning session, 0 when not statement-scoped.
    pub session_id: u64,
    /// Owning statement, 0 when not statement-scoped.
    pub statement_id: i64,
    /// Small `key=value` payload; built lazily, only when the class is on.
    pub detail: String,
}

impl TraceEvent {
    /// Render as one JSON line for the server-side trace file. Wall-clock
    /// time is reconstructed from the process-start epoch.
    pub fn to_json(&self, start_unix_ms: u64) -> String {
        format!(
            "{{\"seq\":{},\"ts_ms\":{},\"class\":\"{}\",\"event\":\"{}\",\
             \"session\":{},\"statement\":{},\"detail\":\"{}\"}}",
            self.seq,
            start_unix_ms + self.ts_us / 1000,
            self.class.name(),
            self.name,
            self.session_id,
            self.statement_id,
            json_escape(&self.detail),
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Events kept per emitting thread before the oldest is dropped.
const RING_CAPACITY: usize = 512;
/// Events kept in the shared retired ring (rings of exited threads).
const RETIRED_CAPACITY: usize = 8192;
/// Events buffered for the server sink before the oldest is dropped.
const SINK_CAPACITY: usize = 65536;

struct ThreadRing {
    buf: Mutex<std::collections::VecDeque<TraceEvent>>,
}

impl ThreadRing {
    fn new() -> Arc<ThreadRing> {
        Arc::new(ThreadRing {
            buf: Mutex::new(std::collections::VecDeque::with_capacity(16)),
        })
    }
}

/// The process-global tracer. Obtain via [`tracer`].
pub struct Tracer {
    mask: AtomicU32,
    seq: AtomicU64,
    /// Events lost to ring/sink overflow (the honesty counter).
    dropped: AtomicU64,
    epoch: Instant,
    start_unix_ms: u64,
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    retired: Mutex<std::collections::VecDeque<TraceEvent>>,
    sink_attached: AtomicBool,
    sink: Mutex<Vec<TraceEvent>>,
}

impl Tracer {
    /// Is `class` currently traced? One relaxed load — the entire cost
    /// of a disabled trace point.
    #[inline]
    pub fn enabled(&self, class: TraceClass) -> bool {
        self.mask.load(Ordering::Relaxed) & class.bit() != 0
    }

    /// Replace the enabled-class mask (`SET TRACE_EVENTS`).
    pub fn set_mask(&self, mask: u32) {
        self.mask.store(mask & MASK_ALL, Ordering::Relaxed);
    }

    /// The current enabled-class mask.
    pub fn mask(&self) -> u32 {
        self.mask.load(Ordering::Relaxed)
    }

    /// Emit one event if `class` is enabled. `detail` runs only when it
    /// is, so callers can interpolate freely.
    #[inline]
    pub fn emit(
        &self,
        class: TraceClass,
        name: &'static str,
        session_id: u64,
        statement_id: i64,
        detail: impl FnOnce() -> String,
    ) {
        if !self.enabled(class) {
            return;
        }
        self.emit_always(class, name, session_id, statement_id, detail());
    }

    /// Emit one event regardless of the mask — the slow-statement log
    /// (`SET SLOW_QUERY_MS`) must fire even with `TRACE_EVENTS = 'OFF'`.
    pub fn emit_always(
        &self,
        class: TraceClass,
        name: &'static str,
        session_id: u64,
        statement_id: i64,
        detail: String,
    ) {
        let ev = TraceEvent {
            seq: self.seq.fetch_add(1, Ordering::Relaxed),
            ts_us: self.epoch.elapsed().as_micros() as u64,
            class,
            name,
            session_id,
            statement_id,
            detail,
        };
        if self.sink_attached.load(Ordering::Relaxed) {
            let mut sink = self.sink.lock();
            if sink.len() < SINK_CAPACITY {
                sink.push(ev.clone());
            } else {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
        RING.with(|handle| {
            let mut buf = handle.ring.buf.lock();
            if buf.len() >= RING_CAPACITY {
                buf.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            buf.push_back(ev);
        });
    }

    /// Point-in-time view of every ring (live threads + retired), merged
    /// and ordered by sequence number. Non-destructive: the rings keep
    /// their events, like `sys.dm_os_ring_buffers`.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        let mut out: Vec<TraceEvent> = self.retired.lock().iter().cloned().collect();
        for ring in self.rings.lock().iter() {
            out.extend(ring.buf.lock().iter().cloned());
        }
        out.sort_by_key(|e| e.seq);
        out
    }

    /// Events lost to ring or sink overflow since the last [`clear`].
    ///
    /// [`clear`]: Tracer::clear
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Drop every buffered event (benchmarks isolate phases with this).
    pub fn clear(&self) {
        for ring in self.rings.lock().iter() {
            ring.buf.lock().clear();
        }
        self.retired.lock().clear();
        self.sink.lock().clear();
        self.dropped.store(0, Ordering::Relaxed);
    }

    /// Attach/detach the sink buffer: while attached, every emitted
    /// event is also copied for [`drain_sink`] (the server's JSONL trace
    /// file consumes from there without racing the DMV snapshot).
    ///
    /// [`drain_sink`]: Tracer::drain_sink
    pub fn attach_sink(&self, on: bool) {
        self.sink_attached.store(on, Ordering::Relaxed);
        if !on {
            self.sink.lock().clear();
        }
    }

    /// Take everything buffered for the sink since the last drain.
    pub fn drain_sink(&self) -> Vec<TraceEvent> {
        std::mem::take(&mut *self.sink.lock())
    }

    /// Wall-clock milliseconds since the Unix epoch at process start
    /// (well, at first tracer access — nanoseconds into `main`).
    pub fn start_unix_ms(&self) -> u64 {
        self.start_unix_ms
    }

    /// Milliseconds this process has been up.
    pub fn uptime_ms(&self) -> u64 {
        self.epoch.elapsed().as_millis() as u64
    }

    fn register_ring(&self, ring: &Arc<ThreadRing>) {
        self.rings.lock().push(ring.clone());
    }

    /// Move an exiting thread's events into the shared retired ring and
    /// forget its per-thread ring.
    fn retire_ring(&self, ring: &Arc<ThreadRing>) {
        let events: Vec<TraceEvent> = ring.buf.lock().drain(..).collect();
        self.rings.lock().retain(|r| !Arc::ptr_eq(r, ring));
        let mut retired = self.retired.lock();
        for ev in events {
            if retired.len() >= RETIRED_CAPACITY {
                retired.pop_front();
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
            retired.push_back(ev);
        }
    }
}

struct RingHandle {
    ring: Arc<ThreadRing>,
}

impl Drop for RingHandle {
    fn drop(&mut self) {
        tracer().retire_ring(&self.ring);
    }
}

thread_local! {
    static RING: RingHandle = {
        let ring = ThreadRing::new();
        tracer().register_ring(&ring);
        RingHandle { ring }
    };
}

static TRACER: OnceLock<Tracer> = OnceLock::new();

/// The process-global tracer (created, with its storage hook, on first
/// access).
pub fn tracer() -> &'static Tracer {
    TRACER.get_or_init(|| {
        // Forward storage-layer waits and spills into the tracer. The
        // hook is a plain fn pointer, installed once for the process.
        install_trace_hook(storage_hook);
        Tracer {
            mask: AtomicU32::new(0),
            seq: AtomicU64::new(1),
            dropped: AtomicU64::new(0),
            epoch: Instant::now(),
            start_unix_ms: std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            rings: Mutex::new(Vec::new()),
            retired: Mutex::new(std::collections::VecDeque::new()),
            sink_attached: AtomicBool::new(false),
            sink: Mutex::new(Vec::new()),
        }
    })
}

/// `(uptime_ms, process_start_unix_ms)` for the performance-counter
/// gauges: rates can be computed from one DMV snapshot instead of two.
pub fn process_clock() -> (u64, u64) {
    let t = tracer();
    (t.uptime_ms(), t.start_unix_ms())
}

/// Waits shorter than this never become trace events. Spill writes
/// record a wait per buffered `write_all` — almost always sub-floor —
/// so without a floor a single spilling statement floods its ring with
/// thousands of micro-waits and evicts everything else. The aggregate
/// `DM_OS_WAIT_STATS()` numbers still include every wait; only the
/// per-event trace is thresholded.
pub const WAIT_TRACE_FLOOR_NANOS: u64 = 50_000;

fn storage_hook(event: &StorageEvent) {
    let t = tracer();
    match *event {
        StorageEvent::Wait { class, nanos } => {
            if nanos < WAIT_TRACE_FLOOR_NANOS {
                return;
            }
            t.emit(TraceClass::Wait, "wait", 0, 0, || {
                format!("class={} wait_us={}", class.name(), nanos / 1000)
            });
        }
        StorageEvent::SpillFile { class } => {
            t.emit(TraceClass::Spill, "spill_file", 0, 0, || {
                format!("class={}", class.name())
            });
        }
    }
}

/// Emit through the global tracer (the call-site convenience).
#[inline]
pub fn emit(
    class: TraceClass,
    name: &'static str,
    session_id: u64,
    statement_id: i64,
    detail: impl FnOnce() -> String,
) {
    tracer().emit(class, name, session_id, statement_id, detail);
}

// ---------------------------------------------------------------------
// DM_OS_RING_BUFFER() — the drained-ring DMV
// ---------------------------------------------------------------------

/// `SELECT * FROM DM_OS_RING_BUFFER()` — every buffered trace event,
/// ordered by sequence number. Non-destructive; bounded by the ring
/// capacities, with overflow counted in the `trace_events_dropped`
/// performance counter.
pub struct DmOsRingBufferFn;

impl TableFunction for DmOsRingBufferFn {
    fn name(&self) -> &str {
        "DM_OS_RING_BUFFER"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![
            Column::new("seq", DataType::Int).not_null(),
            Column::new("ts_us", DataType::Int).not_null(),
            Column::new("class", DataType::Text).not_null(),
            Column::new("event", DataType::Text).not_null(),
            Column::new("session_id", DataType::Int).not_null(),
            Column::new("statement_id", DataType::Int).not_null(),
            Column::new("detail", DataType::Text).not_null(),
        ]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        if !args.is_empty() {
            return Err(DbError::Execution(
                "DM_OS_RING_BUFFER() takes no arguments".into(),
            ));
        }
        let rows: Vec<Row> = tracer()
            .snapshot()
            .into_iter()
            .map(|e| {
                Row::new(vec![
                    Value::Int(e.seq as i64),
                    Value::Int(e.ts_us as i64),
                    Value::text(e.class.name()),
                    Value::text(e.name),
                    Value::Int(e.session_id as i64),
                    Value::Int(e.statement_id),
                    Value::text(e.detail),
                ])
            })
            .collect();
        struct Cursor {
            rows: std::vec::IntoIter<Row>,
            current: Option<Row>,
        }
        impl TvfCursor for Cursor {
            fn move_next(&mut self) -> Result<bool> {
                self.current = self.rows.next();
                Ok(self.current.is_some())
            }
            fn fill_row(&mut self) -> Result<Row> {
                self.current.clone().ok_or_else(|| {
                    DbError::Execution("fill_row past end of DM_OS_RING_BUFFER".into())
                })
            }
        }
        Ok(Box::new(Cursor {
            rows: rows.into_iter(),
            current: None,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracer state is process-global; tests that mutate the mask share
    /// one lock so they do not observe each other's classes.
    static MASK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn mask_parses_all_off_and_lists() {
        assert_eq!(parse_mask("ALL").unwrap(), MASK_ALL);
        assert_eq!(parse_mask("all").unwrap(), MASK_ALL);
        assert_eq!(parse_mask("OFF").unwrap(), 0);
        assert_eq!(parse_mask("").unwrap(), 0);
        let m = parse_mask("statement, WAIT ,Kill").unwrap();
        assert_eq!(
            m,
            TraceClass::Statement.bit() | TraceClass::Wait.bit() | TraceClass::Kill.bit()
        );
        let err = parse_mask("STATEMENT,NOPE").unwrap_err();
        assert!(matches!(err, DbError::Unsupported(_)), "{err}");
    }

    #[test]
    fn disabled_classes_cost_no_event_and_no_detail() {
        let _g = MASK_LOCK.lock();
        let t = tracer();
        t.set_mask(0);
        t.clear();
        let mut built = false;
        t.emit(TraceClass::Statement, "x", 1, 1, || {
            built = true;
            String::new()
        });
        assert!(!built, "detail closure must not run when the class is off");
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn events_merge_across_threads_in_seq_order() {
        let _g = MASK_LOCK.lock();
        let t = tracer();
        t.set_mask(TraceClass::Kill.bit());
        t.clear();
        t.emit(TraceClass::Kill, "k_main", 1, 10, || "a=1".into());
        std::thread::spawn(|| {
            emit(TraceClass::Kill, "k_worker", 2, 20, || "b=2".into());
        })
        .join()
        .unwrap();
        t.emit(TraceClass::Kill, "k_main2", 1, 11, String::new);
        let snap = t.snapshot();
        let names: Vec<&str> = snap.iter().map(|e| e.name).collect();
        // The worker thread's ring was retired at thread exit; its event
        // still shows up, and the merge is seq-ordered.
        assert_eq!(names, vec!["k_main", "k_worker", "k_main2"]);
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
        t.set_mask(0);
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _g = MASK_LOCK.lock();
        let t = tracer();
        t.set_mask(TraceClass::Scrub.bit());
        t.clear();
        std::thread::spawn(|| {
            for i in 0..(RING_CAPACITY + 50) {
                emit(TraceClass::Scrub, "s", 0, i as i64, String::new);
            }
        })
        .join()
        .unwrap();
        let snap = t.snapshot();
        // The thread emitted capacity+50 events; its ring kept the last
        // RING_CAPACITY, which were then retired wholesale.
        assert_eq!(snap.len(), RING_CAPACITY);
        assert!(t.dropped() >= 50);
        assert_eq!(
            snap.last().unwrap().statement_id,
            (RING_CAPACITY + 49) as i64
        );
        t.set_mask(0);
        t.clear();
    }

    #[test]
    fn sink_buffers_only_while_attached() {
        let _g = MASK_LOCK.lock();
        let t = tracer();
        t.set_mask(TraceClass::Backup.bit());
        t.clear();
        t.emit(TraceClass::Backup, "before", 0, 0, String::new);
        t.attach_sink(true);
        t.emit(TraceClass::Backup, "during", 0, 0, || "k=v".into());
        let drained = t.drain_sink();
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].name, "during");
        assert!(t.drain_sink().is_empty(), "drain consumes");
        let json = drained[0].to_json(t.start_unix_ms());
        assert!(json.contains("\"class\":\"BACKUP\""), "{json}");
        assert!(json.contains("\"event\":\"during\""), "{json}");
        t.attach_sink(false);
        t.set_mask(0);
        t.clear();
    }

    #[test]
    fn json_escapes_quotes_and_control_chars() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}

//! Abstract syntax for the T-SQL subset seqdb accepts — the statements
//! the paper's prototype uses (§3.3 DDL with `DATA_COMPRESSION` and
//! `FILESTREAM`, §4.2 Queries 1–3 with GROUP BY, ROW_NUMBER, CROSS APPLY
//! and user-defined aggregates).

use seqdb_types::Value;

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable(CreateTable),
    CreateIndex(CreateIndex),
    DropTable {
        name: String,
    },
    Insert(Insert),
    Select(Select),
    Delete {
        table: String,
        predicate: Option<AstExpr>,
    },
    Update {
        table: String,
        assignments: Vec<(String, AstExpr)>,
        predicate: Option<AstExpr>,
    },
    /// `EXPLAIN [ANALYZE] <select>` — returns the physical plan as text;
    /// with `ANALYZE` the statement is executed and each operator line is
    /// annotated with its actual rows, `next()` calls, wall time, memory
    /// high-water and spill traffic.
    Explain {
        analyze: bool,
        inner: Box<Statement>,
    },
    /// `CHECKPOINT` — flush all dirty pages durably and truncate the
    /// write-ahead log (T-SQL's manual checkpoint).
    Checkpoint,
    /// `SET <option> = <n | 'text'>` — session knob (resource-governor
    /// limits, degree of parallelism, trace classes). For integer knobs
    /// `0` switches a limit off; string values are for text-typed
    /// options such as `TRACE_EVENTS`.
    Set {
        name: String,
        value: SetValue,
    },
    /// `KILL <statement-id>` — cancel a running statement in any session
    /// (T-SQL's `KILL <session id>`, at statement granularity).
    Kill(i64),
    /// `CHECK TABLE <t> [REPAIR]` / `CHECK DATABASE [REPAIR]` — integrity
    /// scrub (the `DBCC CHECKDB` analogue): verify every page and blob,
    /// with `REPAIR` rewrite corrupt pages from the buffer pool or WAL
    /// and quarantine what has no good image.
    Check {
        /// `Some(name)` for one table, `None` for the whole database.
        table: Option<String>,
        repair: bool,
    },
    /// `BACKUP DATABASE TO '<dir>' [INCREMENTAL FROM '<base>']` —
    /// online, crash-consistent backup into a fresh directory; with
    /// `INCREMENTAL FROM` only pages/blobs changed since the named base
    /// set are copied (T-SQL's `BACKUP DATABASE ... WITH DIFFERENTIAL`).
    Backup {
        dir: String,
        incremental_from: Option<String>,
    },
    /// `RESTORE DATABASE FROM '<dir>' [TO '<target>'] [VERIFY ONLY]` —
    /// with `VERIFY ONLY` run every restore-time check without writing
    /// (T-SQL's `RESTORE VERIFYONLY`); with `TO` materialize the backup
    /// chain into a fresh directory. Restoring over the live database
    /// is refused.
    Restore {
        dir: String,
        to: Option<String>,
        verify_only: bool,
    },
}

/// Right-hand side of a `SET` statement. Integer knobs and text knobs
/// share one production; the binder type-checks per option name.
#[derive(Debug, Clone, PartialEq)]
pub enum SetValue {
    Int(i64),
    Str(String),
}

#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub columns: Vec<ColumnDef>,
    /// Table-level `PRIMARY KEY (a, b, ...)` (column-level PKs are folded
    /// into this by the parser).
    pub primary_key: Option<Vec<String>>,
    /// `WITH (DATA_COMPRESSION = NONE|ROW|PAGE)`.
    pub compression: Option<String>,
    /// `FILESTREAM_ON <group>` — accepted and recorded; seqdb has a
    /// single filestream group.
    pub filestream_on: Option<String>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    /// SQL type name, uppercased, length arguments stripped.
    pub type_name: String,
    pub not_null: bool,
    pub filestream: bool,
    /// `ROWGUIDCOL` marker (accepted for fidelity with the paper's DDL).
    pub rowguidcol: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    pub name: String,
    pub table: String,
    pub columns: Vec<String>,
    pub unique: bool,
    /// `CLUSTERED` keyword (recorded; all seqdb indexes are B+-trees).
    pub clustered: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    /// Optional explicit column list.
    pub columns: Option<Vec<String>>,
    pub source: InsertSource,
}

#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<AstExpr>>),
    Query(Box<Select>),
}

#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub top: Option<u64>,
    pub items: Vec<SelectItem>,
    pub from: Option<FromClause>,
    pub where_clause: Option<AstExpr>,
    pub group_by: Vec<AstExpr>,
    pub having: Option<AstExpr>,
    pub order_by: Vec<OrderItem>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    Expr {
        expr: AstExpr,
        alias: Option<String>,
    },
}

#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: AstExpr,
    pub desc: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct FromClause {
    pub base: TableRef,
    pub joins: Vec<JoinClause>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// `table [AS alias]`
    Named { name: String, alias: Option<String> },
    /// `fn(args) [AS alias]` — a table-valued function in FROM.
    Function {
        name: String,
        args: Vec<AstExpr>,
        alias: Option<String>,
    },
    /// `(SELECT ...) AS alias`
    Subquery {
        query: Box<Select>,
        alias: Option<String>,
    },
    /// `OPENROWSET(BULK 'path', SINGLE_BLOB)`
    OpenRowset { path: String },
}

#[derive(Debug, Clone, PartialEq)]
pub enum JoinClause {
    Inner { table: TableRef, on: AstExpr },
    CrossApply { func: TableRef },
}

/// Unbound scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum AstExpr {
    Literal(Value),
    /// Possibly-qualified identifier (`a.b.c` → `["a","b","c"]`).
    Ident(Vec<String>),
    Binary {
        op: AstBinOp,
        left: Box<AstExpr>,
        right: Box<AstExpr>,
    },
    Not(Box<AstExpr>),
    Neg(Box<AstExpr>),
    IsNull {
        expr: Box<AstExpr>,
        negated: bool,
    },
    /// Function call; `star` marks `COUNT(*)`. Method-style calls like
    /// `reads.PathName()` parse as `Func { name: "PATHNAME", args:[Ident(reads)] }`.
    Func {
        name: String,
        args: Vec<AstExpr>,
        star: bool,
    },
    /// `fn(...) OVER (ORDER BY ...)` — only ROW_NUMBER is supported.
    Window {
        name: String,
        order_by: Vec<OrderItem>,
    },
    /// `CAST(expr AS TYPE)`.
    Cast {
        expr: Box<AstExpr>,
        type_name: String,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AstBinOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

impl AstExpr {
    /// Canonical textual form used to match GROUP BY expressions against
    /// select items and ORDER BY keys (T-SQL matches them structurally).
    pub fn canonical(&self) -> String {
        match self {
            AstExpr::Literal(v) => format!("lit:{v}"),
            AstExpr::Ident(parts) => parts
                .iter()
                .map(|p| p.to_ascii_lowercase())
                .collect::<Vec<_>>()
                .join("."),
            AstExpr::Binary { op, left, right } => {
                format!("({} {op:?} {})", left.canonical(), right.canonical())
            }
            AstExpr::Not(e) => format!("not({})", e.canonical()),
            AstExpr::Neg(e) => format!("neg({})", e.canonical()),
            AstExpr::IsNull { expr, negated } => {
                format!("isnull({},{negated})", expr.canonical())
            }
            AstExpr::Func { name, args, star } => {
                let a: Vec<String> = args.iter().map(|x| x.canonical()).collect();
                format!(
                    "{}({}{})",
                    name.to_ascii_uppercase(),
                    if *star { "*" } else { "" },
                    a.join(",")
                )
            }
            AstExpr::Window { name, .. } => format!("window:{}", name.to_ascii_uppercase()),
            AstExpr::Cast { expr, type_name } => {
                format!("cast({} as {type_name})", expr.canonical())
            }
        }
    }

    /// The last path component of an identifier (used for output column
    /// naming).
    pub fn simple_name(&self) -> Option<&str> {
        match self {
            AstExpr::Ident(parts) => parts.last().map(|s| s.as_str()),
            _ => None,
        }
    }

    /// Does this expression contain an aggregate function call (given the
    /// set of known aggregate names)?
    pub fn contains_aggregate(&self, is_agg: &dyn Fn(&str) -> bool) -> bool {
        match self {
            AstExpr::Func { name, args, .. } => {
                is_agg(name) || args.iter().any(|a| a.contains_aggregate(is_agg))
            }
            AstExpr::Binary { left, right, .. } => {
                left.contains_aggregate(is_agg) || right.contains_aggregate(is_agg)
            }
            AstExpr::Not(e) | AstExpr::Neg(e) => e.contains_aggregate(is_agg),
            AstExpr::IsNull { expr, .. } => expr.contains_aggregate(is_agg),
            AstExpr::Cast { expr, .. } => expr.contains_aggregate(is_agg),
            AstExpr::Window { .. } | AstExpr::Literal(_) | AstExpr::Ident(_) => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_is_case_insensitive_on_idents_and_fns() {
        let a = AstExpr::Func {
            name: "count".into(),
            args: vec![AstExpr::Ident(vec!["Seq".into()])],
            star: false,
        };
        let b = AstExpr::Func {
            name: "COUNT".into(),
            args: vec![AstExpr::Ident(vec!["seq".into()])],
            star: false,
        };
        assert_eq!(a.canonical(), b.canonical());
    }

    #[test]
    fn contains_aggregate_walks_the_tree() {
        let is_agg = |n: &str| n.eq_ignore_ascii_case("count");
        let e = AstExpr::Binary {
            op: AstBinOp::Add,
            left: Box::new(AstExpr::Literal(Value::Int(1))),
            right: Box::new(AstExpr::Func {
                name: "COUNT".into(),
                args: vec![],
                star: true,
            }),
        };
        assert!(e.contains_aggregate(&is_agg));
        let e2 = AstExpr::Ident(vec!["x".into()]);
        assert!(!e2.contains_aggregate(&is_agg));
    }
}

//! T-SQL-subset front end for seqdb.
//!
//! Covers the statements of the paper's prototype: `CREATE TABLE` with
//! `DATA_COMPRESSION` and `FILESTREAM`, `CREATE INDEX`, `INSERT`
//! (`VALUES`, `SELECT`, and `OPENROWSET(BULK …, SINGLE_BLOB)` bulk
//! import), and `SELECT` with joins, `CROSS APPLY` of table-valued
//! functions, `GROUP BY` with (user-defined) aggregates,
//! `ROW_NUMBER() OVER (ORDER BY …)`, `TOP` and `ORDER BY` — enough to run
//! the paper's Queries 1–3 verbatim (modulo schema names).
//!
//! `EXPLAIN SELECT …` returns the physical plan as text (Figures 9–10).

pub mod ast;
pub mod binder;
pub mod lexer;
pub mod parser;

use std::sync::Arc;

use seqdb_engine::{Database, Plan, QueryResult, Session};
use seqdb_types::Result;

pub use parser::{parse, parse_script};

/// Ergonomic SQL entry points on [`Database`].
pub trait DatabaseSqlExt {
    /// Execute any single statement (DDL, DML or query).
    fn execute_sql(&self, sql: &str) -> Result<QueryResult>;
    /// Execute a `;`-separated script; returns the last statement's result.
    fn execute_sql_script(&self, sql: &str) -> Result<QueryResult>;
    /// Execute a query (alias of [`DatabaseSqlExt::execute_sql`] that
    /// reads better at call sites that expect rows back).
    fn query_sql(&self, sql: &str) -> Result<QueryResult>;
    /// Plan a SELECT without running it.
    fn plan_sql(&self, sql: &str) -> Result<Plan>;
    /// Physical plan of a SELECT as text (`EXPLAIN`).
    fn explain_sql(&self, sql: &str) -> Result<String>;
}

impl DatabaseSqlExt for Arc<Database> {
    fn execute_sql(&self, sql: &str) -> Result<QueryResult> {
        binder::execute(self, sql)
    }
    fn execute_sql_script(&self, sql: &str) -> Result<QueryResult> {
        binder::execute_script(self, sql)
    }
    fn query_sql(&self, sql: &str) -> Result<QueryResult> {
        binder::execute(self, sql)
    }
    fn plan_sql(&self, sql: &str) -> Result<Plan> {
        binder::plan_query(self, sql)
    }
    fn explain_sql(&self, sql: &str) -> Result<String> {
        Ok(binder::plan_query(self, sql)?.explain())
    }
}

/// SQL entry points on a [`Session`]. Unlike [`DatabaseSqlExt`], `SET`
/// changes only this session's settings, and queries run admitted
/// against the global memory pool, governed by the session's effective
/// limits, and visible in `sys.dm_exec_requests` (hence killable from
/// another session with `KILL <statement id>`).
pub trait SessionSqlExt {
    /// Execute any single statement under this session.
    fn execute_sql(&self, sql: &str) -> Result<QueryResult>;
    /// Execute a `;`-separated script; returns the last statement's result.
    fn execute_sql_script(&self, sql: &str) -> Result<QueryResult>;
    /// Alias of [`SessionSqlExt::execute_sql`] for query call sites.
    fn query_sql(&self, sql: &str) -> Result<QueryResult>;
}

impl SessionSqlExt for Session {
    fn execute_sql(&self, sql: &str) -> Result<QueryResult> {
        binder::execute_on(self, sql)
    }
    fn execute_sql_script(&self, sql: &str) -> Result<QueryResult> {
        binder::execute_script_on(self, sql)
    }
    fn query_sql(&self, sql: &str) -> Result<QueryResult> {
        binder::execute_on(self, sql)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seqdb_types::Value;

    fn db() -> Arc<Database> {
        Database::in_memory()
    }

    #[test]
    fn ddl_insert_select_roundtrip() {
        let db = db();
        db.execute_sql("CREATE TABLE t (id INT NOT NULL PRIMARY KEY, seq VARCHAR(64))")
            .unwrap();
        let r = db
            .execute_sql("INSERT INTO t VALUES (1, 'ACGT'), (2, 'GGTA'), (3, 'ACGT')")
            .unwrap();
        assert_eq!(r.affected, 3);
        let r = db.query_sql("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(3));
        let r = db
            .query_sql("SELECT seq, COUNT(*) FROM t GROUP BY seq ORDER BY COUNT(*) DESC")
            .unwrap();
        assert_eq!(r.rows[0][0], Value::text("ACGT"));
        assert_eq!(r.rows[0][1], Value::Int(2));
    }

    #[test]
    fn where_filters_and_charindex() {
        let db = db();
        db.execute_sql("CREATE TABLE r (id INT, seq VARCHAR(64))")
            .unwrap();
        db.execute_sql("INSERT INTO r VALUES (1,'ACGT'),(2,'ACNT'),(3,'GGGG')")
            .unwrap();
        let r = db
            .query_sql("SELECT id FROM r WHERE CHARINDEX('N', seq) = 0 ORDER BY id")
            .unwrap();
        let ids: Vec<i64> = r.rows.iter().map(|x| x[0].as_int().unwrap()).collect();
        assert_eq!(ids, vec![1, 3]);
    }

    #[test]
    fn join_group_and_insert_select() {
        let db = db();
        db.execute_sql_script(
            "CREATE TABLE tag (t_id INT PRIMARY KEY, t_freq INT);
             CREATE TABLE al (a_t_id INT, a_g_id INT);
             CREATE TABLE expr_out (g INT, total INT, n INT);
             INSERT INTO tag VALUES (1, 10), (2, 20), (3, 5);
             INSERT INTO al VALUES (1, 100), (2, 100), (3, 200);",
        )
        .unwrap();
        let r = db
            .execute_sql(
                "INSERT INTO expr_out
                 SELECT a_g_id, SUM(t_freq), COUNT(a_t_id)
                 FROM al JOIN tag ON a_t_id = t_id
                 GROUP BY a_g_id",
            )
            .unwrap();
        assert_eq!(r.affected, 2);
        let r = db
            .query_sql("SELECT g, total, n FROM expr_out ORDER BY g")
            .unwrap();
        assert_eq!(
            r.rows[0].values(),
            &[Value::Int(100), Value::Int(30), Value::Int(2)]
        );
        assert_eq!(
            r.rows[1].values(),
            &[Value::Int(200), Value::Int(5), Value::Int(1)]
        );
    }

    #[test]
    fn row_number_window_over_aggregate() {
        // The shape of the paper's Query 1.
        let db = db();
        db.execute_sql_script(
            "CREATE TABLE reads (seq VARCHAR(64));
             INSERT INTO reads VALUES ('A'),('A'),('A'),('B'),('B'),('C');",
        )
        .unwrap();
        let r = db
            .query_sql(
                "SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC), COUNT(*), seq
                 FROM reads GROUP BY seq",
            )
            .unwrap();
        assert_eq!(r.rows.len(), 3);
        assert_eq!(r.rows[0].values()[..2], [Value::Int(1), Value::Int(3)]);
        assert_eq!(r.rows[0][2], Value::text("A"));
        assert_eq!(r.rows[2].values()[..2], [Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn window_over_ordered_index_scan_skips_the_sort() {
        let db = db();
        db.execute_sql_script(
            "CREATE TABLE t (k INT PRIMARY KEY, v INT);
             INSERT INTO t VALUES (3, 30), (1, 10), (2, 20);",
        )
        .unwrap();
        // The clustered PK already orders the scan by k: no Sort node,
        // and ROW_NUMBER buffers its own (budget-charged) peer frames.
        let plan = db
            .explain_sql("SELECT k, v, ROW_NUMBER() OVER (ORDER BY k) FROM t")
            .unwrap();
        assert!(!plan.contains("Sort"), "{plan}");
        assert!(plan.contains("peer frames over ordered input"), "{plan}");
        assert!(plan.contains("Clustered Index Scan"), "{plan}");
        let r = db
            .query_sql("SELECT k, v, ROW_NUMBER() OVER (ORDER BY k) FROM t")
            .unwrap();
        let triples: Vec<(i64, i64)> = r
            .rows
            .iter()
            .map(|x| (x[0].as_int().unwrap(), x[2].as_int().unwrap()))
            .collect();
        assert_eq!(triples, vec![(1, 1), (2, 2), (3, 3)]);
        // A descending window still needs the Sort.
        let plan = db
            .explain_sql("SELECT k, ROW_NUMBER() OVER (ORDER BY k DESC) FROM t")
            .unwrap();
        assert!(plan.contains("Sort"), "{plan}");
    }

    #[test]
    fn top_and_order() {
        let db = db();
        db.execute_sql_script(
            "CREATE TABLE t (x INT);
             INSERT INTO t VALUES (5),(3),(9),(1);",
        )
        .unwrap();
        let r = db
            .query_sql("SELECT TOP 2 x FROM t ORDER BY x DESC")
            .unwrap();
        let xs: Vec<i64> = r.rows.iter().map(|x| x[0].as_int().unwrap()).collect();
        assert_eq!(xs, vec![9, 5]);
    }

    #[test]
    fn explain_select_returns_plan_text() {
        let db = db();
        db.execute_sql("CREATE TABLE t (x INT)").unwrap();
        let plan = db
            .explain_sql("SELECT x, COUNT(*) FROM t GROUP BY x")
            .unwrap();
        assert!(plan.contains("Hash Match (Aggregate)"), "{plan}");
        let r = db
            .execute_sql("EXPLAIN SELECT x, COUNT(*) FROM t GROUP BY x")
            .unwrap();
        assert!(!r.rows.is_empty());
    }

    #[test]
    fn filestream_column_with_openrowset_and_pathname() {
        let db = db();
        // Create a source file to bulk-import.
        let dir = std::env::temp_dir().join(format!("seqdb-sqltest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let fq = dir.join("lane1.fastq");
        std::fs::write(&fq, b"@r1\nACGT\n+\nIIII\n").unwrap();

        db.execute_sql(
            "CREATE TABLE ShortReadFiles (
                guid UNIQUEIDENTIFIER ROWGUIDCOL PRIMARY KEY,
                sample INT, lane INT,
                reads VARBINARY(MAX) FILESTREAM
             ) FILESTREAM_ON FS",
        )
        .unwrap();
        let sql = format!(
            "INSERT INTO ShortReadFiles (guid, sample, lane, reads)
             SELECT NEWID(), 855, 1, * FROM OPENROWSET(BULK '{}', SINGLE_BLOB)",
            fq.display()
        );
        let r = db.execute_sql(&sql).unwrap();
        assert_eq!(r.affected, 1);
        let r = db
            .query_sql(
                "SELECT sample, lane, reads.PathName(), DATALENGTH(reads) FROM ShortReadFiles",
            )
            .unwrap();
        assert_eq!(r.rows[0][0], Value::Int(855));
        assert_eq!(r.rows[0][3], Value::Int(16));
        let path = r.rows[0][2].as_text().unwrap().to_string();
        assert!(std::path::Path::new(&path).exists());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn merge_join_is_chosen_with_clustered_indexes() {
        let db = db();
        db.execute_sql_script(
            "CREATE TABLE a (k INT PRIMARY KEY, v INT);
             CREATE TABLE b (k INT PRIMARY KEY, w INT);",
        )
        .unwrap();
        let plan = db
            .explain_sql("SELECT v, w FROM a JOIN b ON a.k = b.k")
            .unwrap();
        assert!(plan.contains("Merge Join"), "{plan}");
        assert!(plan.contains("Clustered Index Scan"), "{plan}");
    }

    #[test]
    fn subquery_in_from() {
        let db = db();
        db.execute_sql_script(
            "CREATE TABLE t (g INT, v INT);
             INSERT INTO t VALUES (1,10),(1,20),(2,5);",
        )
        .unwrap();
        let r = db
            .query_sql(
                "SELECT g2, total FROM
                   (SELECT g AS g2, SUM(v) AS total FROM t GROUP BY g) x
                 ORDER BY g2",
            )
            .unwrap();
        assert_eq!(r.rows[0][1], Value::Int(30));
        assert_eq!(r.rows[1][1], Value::Int(5));
    }

    #[test]
    fn errors_name_unknown_objects() {
        let db = db();
        assert!(db.query_sql("SELECT * FROM nosuch").is_err());
        db.execute_sql("CREATE TABLE t (x INT)").unwrap();
        let e = db.query_sql("SELECT y FROM t").unwrap_err();
        assert!(e.to_string().contains("y"), "{e}");
        let e = db.query_sql("SELECT NOSUCHFN(x) FROM t").unwrap_err();
        assert!(e.to_string().contains("NOSUCHFN"), "{e}");
    }

    #[test]
    fn delete_and_update_statements() {
        let db = db();
        db.execute_sql_script(
            "CREATE TABLE t (id INT PRIMARY KEY, grp INT, v INT);
             INSERT INTO t VALUES (1,1,10),(2,1,20),(3,2,30),(4,2,40);",
        )
        .unwrap();
        // UPDATE with expression referencing the old row.
        let r = db
            .execute_sql("UPDATE t SET v = v + 100 WHERE grp = 2")
            .unwrap();
        assert_eq!(r.affected, 2);
        let r = db.query_sql("SELECT SUM(v) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(10 + 20 + 130 + 140));
        // DELETE with predicate.
        let r = db.execute_sql("DELETE FROM t WHERE v >= 100").unwrap();
        assert_eq!(r.affected, 2);
        let r = db.query_sql("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(2));
        // PK index consistent after delete: reinsertion works.
        db.execute_sql("INSERT INTO t VALUES (3, 9, 9)").unwrap();
        // DELETE without predicate clears the table.
        let r = db.execute_sql("DELETE FROM t").unwrap();
        assert_eq!(r.affected, 3);
        assert_eq!(
            db.query_sql("SELECT COUNT(*) FROM t").unwrap().rows[0][0],
            Value::Int(0)
        );
    }

    #[test]
    fn having_filters_groups() {
        let db = db();
        db.execute_sql_script(
            "CREATE TABLE t (g INT, v INT);
             INSERT INTO t VALUES (1,1),(1,1),(1,1),(2,5),(3,2),(3,2);",
        )
        .unwrap();
        // HAVING over an aggregate in the select list.
        let r = db
            .query_sql("SELECT g, COUNT(*) FROM t GROUP BY g HAVING COUNT(*) >= 2 ORDER BY g")
            .unwrap();
        let gs: Vec<i64> = r.rows.iter().map(|x| x[0].as_int().unwrap()).collect();
        assert_eq!(gs, vec![1, 3]);
        // HAVING over a hidden aggregate (not selected) and a compound.
        let r = db
            .query_sql(
                "SELECT g FROM t GROUP BY g
                 HAVING SUM(v) > 3 AND COUNT(*) < 3 ORDER BY g",
            )
            .unwrap();
        let gs: Vec<i64> = r.rows.iter().map(|x| x[0].as_int().unwrap()).collect();
        assert_eq!(gs, vec![2, 3]);
    }

    #[test]
    fn primary_key_violations_surface_through_sql() {
        let db = db();
        db.execute_sql("CREATE TABLE t (id INT PRIMARY KEY)")
            .unwrap();
        db.execute_sql("INSERT INTO t VALUES (1)").unwrap();
        assert!(db.execute_sql("INSERT INTO t VALUES (1)").is_err());
    }
}

//! Recursive-descent parser for the T-SQL subset.

use seqdb_types::{DbError, Result, Value};

use crate::ast::*;
use crate::lexer::{tokenize, Token};

/// Parse one statement (a trailing `;` is allowed).
pub fn parse(sql: &str) -> Result<Statement> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.statement()?;
    p.eat_if(&Token::Semi);
    if !p.at_end() {
        return Err(p.unexpected("end of statement"));
    }
    Ok(stmt)
}

/// Parse a script of `;`-separated statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    let tokens = tokenize(sql)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut out = Vec::new();
    while !p.at_end() {
        if p.eat_if(&Token::Semi) {
            continue;
        }
        out.push(p.statement()?);
        if !p.at_end() && !p.eat_if(&Token::Semi) {
            return Err(p.unexpected("';' between statements"));
        }
    }
    Ok(out)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek2(&self) -> Option<&Token> {
        self.tokens.get(self.pos + 1)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .tokens
            .get(self.pos)
            .cloned()
            .ok_or_else(|| DbError::Parse("unexpected end of input".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn unexpected(&self, wanted: &str) -> DbError {
        match self.peek() {
            Some(t) => DbError::Parse(format!("expected {wanted}, found {}", t.describe())),
            None => DbError::Parse(format!("expected {wanted}, found end of input")),
        }
    }

    fn eat_if(&mut self, t: &Token) -> bool {
        if self.peek() == Some(t) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, t: &Token, what: &str) -> Result<()> {
        if self.eat_if(t) {
            Ok(())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn kw(&mut self, kw: &str) -> bool {
        if self.peek().map(|t| t.is_kw(kw)).unwrap_or(false) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        if self.kw(kw) {
            Ok(())
        } else {
            Err(self.unexpected(&format!("keyword {kw}")))
        }
    }

    fn peek_kw(&self, kw: &str) -> bool {
        self.peek().map(|t| t.is_kw(kw)).unwrap_or(false)
    }

    /// Any identifier (quoted or not).
    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            Token::QuotedIdent(s) => Ok(s),
            t => Err(DbError::Parse(format!(
                "expected identifier, found {}",
                t.describe()
            ))),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        if self.kw("explain") {
            let analyze = self.kw("analyze");
            let inner = self.statement()?;
            return Ok(Statement::Explain {
                analyze,
                inner: Box::new(inner),
            });
        }
        if self.peek_kw("select") {
            return Ok(Statement::Select(self.select()?));
        }
        if self.kw("create") {
            if self.kw("table") {
                return self.create_table();
            }
            let unique = self.kw("unique");
            let clustered = self.kw("clustered") || {
                self.kw("nonclustered");
                false
            };
            if self.kw("index") {
                return self.create_index(unique, clustered);
            }
            return Err(self.unexpected("TABLE or INDEX after CREATE"));
        }
        if self.kw("drop") {
            self.expect_kw("table")?;
            let name = self.ident()?;
            return Ok(Statement::DropTable { name });
        }
        if self.kw("insert") {
            return self.insert();
        }
        if self.kw("delete") {
            self.expect_kw("from")?;
            let table = self.ident()?;
            let predicate = if self.kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Delete { table, predicate });
        }
        if self.kw("checkpoint") {
            return Ok(Statement::Checkpoint);
        }
        if self.kw("check") {
            let table = if self.kw("database") {
                None
            } else {
                self.expect_kw("table")?;
                Some(self.ident()?)
            };
            let repair = self.kw("repair");
            return Ok(Statement::Check { table, repair });
        }
        if self.kw("backup") {
            self.expect_kw("database")?;
            self.expect_kw("to")?;
            let dir = self.str_literal("backup destination directory")?;
            let incremental_from = if self.kw("incremental") {
                self.expect_kw("from")?;
                Some(self.str_literal("incremental base directory")?)
            } else {
                None
            };
            return Ok(Statement::Backup {
                dir,
                incremental_from,
            });
        }
        if self.kw("restore") {
            self.expect_kw("database")?;
            self.expect_kw("from")?;
            let dir = self.str_literal("backup directory")?;
            let to = if self.kw("to") {
                Some(self.str_literal("restore target directory")?)
            } else {
                None
            };
            let verify_only = if self.kw("verify") {
                self.expect_kw("only")?;
                true
            } else {
                false
            };
            return Ok(Statement::Restore {
                dir,
                to,
                verify_only,
            });
        }
        if self.kw("set") {
            let name = self.ident()?.to_ascii_uppercase();
            self.expect(&Token::Eq, "'=' in SET")?;
            let value = match self.next()? {
                Token::Int(i) => SetValue::Int(i),
                Token::Str(s) => SetValue::Str(s),
                t => {
                    return Err(DbError::Parse(format!(
                        "expected integer or string value for SET {name}, found {}",
                        t.describe()
                    )))
                }
            };
            return Ok(Statement::Set { name, value });
        }
        if self.kw("kill") {
            let id = match self.next()? {
                Token::Int(i) => i,
                t => {
                    return Err(DbError::Parse(format!(
                        "expected statement id after KILL, found {}",
                        t.describe()
                    )))
                }
            };
            return Ok(Statement::Kill(id));
        }
        if self.kw("update") {
            let table = self.ident()?;
            self.expect_kw("set")?;
            let mut assignments = Vec::new();
            loop {
                let col = self.ident()?;
                self.expect(&Token::Eq, "'=' in SET assignment")?;
                let value = self.expr()?;
                assignments.push((col, value));
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            let predicate = if self.kw("where") {
                Some(self.expr()?)
            } else {
                None
            };
            return Ok(Statement::Update {
                table,
                assignments,
                predicate,
            });
        }
        Err(self.unexpected(
            "a statement (SELECT/INSERT/UPDATE/DELETE/CREATE/DROP/CHECK/BACKUP/RESTORE/EXPLAIN)",
        ))
    }

    /// Consume a `'string'` literal, e.g. a directory path.
    fn str_literal(&mut self, what: &str) -> Result<String> {
        match self.next()? {
            Token::Str(s) => Ok(s),
            t => Err(DbError::Parse(format!(
                "expected {what} as a 'string', found {}",
                t.describe()
            ))),
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        let name = self.ident()?;
        self.expect(&Token::LParen, "'(' after table name")?;
        let mut columns = Vec::new();
        let mut primary_key: Option<Vec<String>> = None;
        loop {
            if self.kw("primary") {
                self.expect_kw("key")?;
                self.expect(&Token::LParen, "'(' after PRIMARY KEY")?;
                let mut cols = Vec::new();
                loop {
                    cols.push(self.ident()?);
                    if !self.eat_if(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen, "')' after key columns")?;
                primary_key = Some(cols);
            } else {
                let col_name = self.ident()?;
                let mut type_name = self.ident()?.to_ascii_uppercase();
                // Strip length arguments: VARCHAR(50), VARBINARY(MAX).
                if self.eat_if(&Token::LParen) {
                    match self.next()? {
                        Token::Int(_) => {}
                        Token::Ident(s) if s.eq_ignore_ascii_case("max") => {}
                        t => {
                            return Err(DbError::Parse(format!(
                                "expected length or MAX in type, found {}",
                                t.describe()
                            )))
                        }
                    }
                    self.expect(&Token::RParen, "')' after type length")?;
                }
                // Normalize e.g. "INT" and "INTEGER".
                if type_name == "INTEGER" {
                    type_name = "INT".into();
                }
                let mut def = ColumnDef {
                    name: col_name,
                    type_name,
                    not_null: false,
                    filestream: false,
                    rowguidcol: false,
                };
                // Column options in any order.
                loop {
                    if self.kw("not") {
                        self.expect_kw("null")?;
                        def.not_null = true;
                    } else if self.kw("null") {
                        // explicit NULL: default
                    } else if self.kw("filestream") {
                        def.filestream = true;
                    } else if self.kw("rowguidcol") {
                        def.rowguidcol = true;
                    } else if self.kw("primary") {
                        self.expect_kw("key")?;
                        def.not_null = true;
                        primary_key = Some(vec![def.name.clone()]);
                    } else {
                        break;
                    }
                }
                columns.push(def);
            }
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen, "')' after column list")?;

        let mut compression = None;
        let mut filestream_on = None;
        loop {
            if self.kw("with") {
                self.expect(&Token::LParen, "'(' after WITH")?;
                loop {
                    let opt = self.ident()?.to_ascii_uppercase();
                    self.expect(&Token::Eq, "'=' in WITH option")?;
                    let val = self.ident()?.to_ascii_uppercase();
                    if opt == "DATA_COMPRESSION" {
                        compression = Some(val);
                    } else {
                        return Err(DbError::Parse(format!("unknown table option {opt}")));
                    }
                    if !self.eat_if(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen, "')' after WITH options")?;
            } else if self.kw("filestream_on") {
                filestream_on = Some(self.ident()?);
            } else {
                break;
            }
        }

        Ok(Statement::CreateTable(CreateTable {
            name,
            columns,
            primary_key,
            compression,
            filestream_on,
        }))
    }

    fn create_index(&mut self, unique: bool, clustered: bool) -> Result<Statement> {
        let name = self.ident()?;
        self.expect_kw("on")?;
        let table = self.ident()?;
        self.expect(&Token::LParen, "'(' after table name")?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.ident()?);
            // Ignore per-column ASC/DESC (B+-trees scan both ways).
            let _ = self.kw("asc") || self.kw("desc");
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen, "')' after index columns")?;
        Ok(Statement::CreateIndex(CreateIndex {
            name,
            table,
            columns,
            unique,
            clustered,
        }))
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("into")?;
        let table = self.ident()?;
        let mut columns = None;
        if self.peek() == Some(&Token::LParen) {
            // Could be a column list or a VALUES-less subselect; we only
            // support a column list here.
            self.expect(&Token::LParen, "'('")?;
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen, "')' after column list")?;
            columns = Some(cols);
        }
        if self.kw("values") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen, "'(' before row values")?;
                let mut vals = Vec::new();
                loop {
                    vals.push(self.expr()?);
                    if !self.eat_if(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen, "')' after row values")?;
                rows.push(vals);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
            return Ok(Statement::Insert(Insert {
                table,
                columns,
                source: InsertSource::Values(rows),
            }));
        }
        if self.peek_kw("select") {
            let q = self.select()?;
            return Ok(Statement::Insert(Insert {
                table,
                columns,
                source: InsertSource::Query(Box::new(q)),
            }));
        }
        Err(self.unexpected("VALUES or SELECT after INSERT INTO"))
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let mut top = None;
        if self.kw("top") {
            match self.next()? {
                Token::Int(n) if n >= 0 => top = Some(n as u64),
                t => {
                    return Err(DbError::Parse(format!(
                        "expected row count after TOP, found {}",
                        t.describe()
                    )))
                }
            }
        }
        let mut items = Vec::new();
        loop {
            if self.eat_if(&Token::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let mut alias = None;
                if self.kw("as")
                    || matches!(self.peek(), Some(Token::Ident(s)) if !is_clause_keyword(s))
                {
                    alias = Some(self.ident()?);
                }
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }

        let mut from = None;
        if self.kw("from") {
            let base = self.table_ref()?;
            let mut joins = Vec::new();
            loop {
                if self.kw("join") || (self.kw("inner") && self.expect_kw("join").is_ok()) {
                    let table = self.table_ref()?;
                    self.expect_kw("on")?;
                    let on = self.expr()?;
                    joins.push(JoinClause::Inner { table, on });
                } else if self.kw("cross") {
                    self.expect_kw("apply")?;
                    let func = self.table_ref()?;
                    joins.push(JoinClause::CrossApply { func });
                } else {
                    break;
                }
            }
            from = Some(FromClause { base, joins });
        }

        let mut where_clause = None;
        if self.kw("where") {
            where_clause = Some(self.expr()?);
        }

        let mut group_by = Vec::new();
        if self.kw("group") {
            self.expect_kw("by")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat_if(&Token::Comma) {
                    break;
                }
            }
        }

        let mut having = None;
        if self.kw("having") {
            having = Some(self.expr()?);
        }

        let mut order_by = Vec::new();
        if self.kw("order") {
            self.expect_kw("by")?;
            order_by = self.order_items()?;
        }

        Ok(Select {
            top,
            items,
            from,
            where_clause,
            group_by,
            having,
            order_by,
        })
    }

    fn order_items(&mut self) -> Result<Vec<OrderItem>> {
        let mut out = Vec::new();
        loop {
            let expr = self.expr()?;
            let desc = if self.kw("desc") {
                true
            } else {
                self.kw("asc");
                false
            };
            out.push(OrderItem { expr, desc });
            if !self.eat_if(&Token::Comma) {
                break;
            }
        }
        Ok(out)
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        // Subquery.
        if self.peek() == Some(&Token::LParen) {
            self.expect(&Token::LParen, "'('")?;
            let q = self.select()?;
            self.expect(&Token::RParen, "')' after subquery")?;
            let alias = self.optional_alias()?;
            return Ok(TableRef::Subquery {
                query: Box::new(q),
                alias,
            });
        }
        // OPENROWSET(BULK 'path', SINGLE_BLOB)
        if self.peek_kw("openrowset") {
            self.pos += 1;
            self.expect(&Token::LParen, "'(' after OPENROWSET")?;
            self.expect_kw("bulk")?;
            let path = match self.next()? {
                Token::Str(s) => s,
                t => {
                    return Err(DbError::Parse(format!(
                        "expected file path string, found {}",
                        t.describe()
                    )))
                }
            };
            self.expect(&Token::Comma, "',' before SINGLE_BLOB")?;
            self.expect_kw("single_blob")?;
            self.expect(&Token::RParen, "')' after OPENROWSET")?;
            return Ok(TableRef::OpenRowset { path });
        }
        let name = self.ident()?;
        // Function in FROM / CROSS APPLY.
        if self.peek() == Some(&Token::LParen) {
            self.expect(&Token::LParen, "'('")?;
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat_if(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen, "')' after function arguments")?;
            let alias = self.optional_alias()?;
            return Ok(TableRef::Function { name, args, alias });
        }
        let alias = self.optional_alias()?;
        Ok(TableRef::Named { name, alias })
    }

    fn optional_alias(&mut self) -> Result<Option<String>> {
        if self.kw("as") {
            return Ok(Some(self.ident()?));
        }
        match self.peek() {
            Some(Token::Ident(s)) if !is_clause_keyword(s) => Ok(Some(self.ident()?)),
            Some(Token::QuotedIdent(_)) => Ok(Some(self.ident()?)),
            _ => Ok(None),
        }
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<AstExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.and_expr()?;
        while self.kw("or") {
            let right = self.and_expr()?;
            left = AstExpr::Binary {
                op: AstBinOp::Or,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<AstExpr> {
        let mut left = self.not_expr()?;
        while self.kw("and") {
            let right = self.not_expr()?;
            left = AstExpr::Binary {
                op: AstBinOp::And,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<AstExpr> {
        if self.kw("not") {
            let inner = self.not_expr()?;
            return Ok(AstExpr::Not(Box::new(inner)));
        }
        self.comparison()
    }

    fn comparison(&mut self) -> Result<AstExpr> {
        let left = self.additive()?;
        let op = match self.peek() {
            Some(Token::Eq) => Some(AstBinOp::Eq),
            Some(Token::NotEq) => Some(AstBinOp::NotEq),
            Some(Token::Lt) => Some(AstBinOp::Lt),
            Some(Token::LtEq) => Some(AstBinOp::LtEq),
            Some(Token::Gt) => Some(AstBinOp::Gt),
            Some(Token::GtEq) => Some(AstBinOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            return Ok(AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            });
        }
        // IS [NOT] NULL
        if self.kw("is") {
            let negated = self.kw("not");
            self.expect_kw("null")?;
            return Ok(AstExpr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<AstExpr> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => AstBinOp::Add,
                Some(Token::Minus) => AstBinOp::Sub,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<AstExpr> {
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => AstBinOp::Mul,
                Some(Token::Slash) => AstBinOp::Div,
                Some(Token::Percent) => AstBinOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = AstExpr::Binary {
                op,
                left: Box::new(left),
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<AstExpr> {
        if self.eat_if(&Token::Minus) {
            let inner = self.unary()?;
            return Ok(AstExpr::Neg(Box::new(inner)));
        }
        if self.eat_if(&Token::Plus) {
            return self.unary();
        }
        self.postfix()
    }

    /// Primary expression plus postfix method calls (`expr.Method()`).
    fn postfix(&mut self) -> Result<AstExpr> {
        let mut e = self.primary()?;
        // Method-call syntax: ident.Method() — rewrite to Method(ident).
        while self.peek() == Some(&Token::Dot) && matches!(e, AstExpr::Ident(_)) {
            // Only rewrite when followed by ident + '(' — otherwise the
            // dot was already folded into the qualified ident by primary.
            let Some(Token::Ident(m)) = self.peek2().cloned() else {
                break;
            };
            if self.tokens.get(self.pos + 2) != Some(&Token::LParen) {
                break;
            }
            self.pos += 3; // consume . method (
            self.expect(&Token::RParen, "')' after method call")?;
            e = AstExpr::Func {
                name: m.to_ascii_uppercase(),
                args: vec![e],
                star: false,
            };
        }
        Ok(e)
    }

    fn primary(&mut self) -> Result<AstExpr> {
        match self.peek().cloned() {
            Some(Token::Int(n)) => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::Int(n)))
            }
            Some(Token::Float(f)) => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::Float(f)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(AstExpr::Literal(Value::text(s)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen, "')'")?;
                Ok(e)
            }
            Some(Token::Ident(s))
                if is_clause_keyword(&s)
                    && !s.eq_ignore_ascii_case("null")
                    && !s.eq_ignore_ascii_case("not")
                    && self.peek2() != Some(&Token::LParen) =>
            {
                Err(DbError::Parse(format!(
                    "expected expression, found keyword {s}"
                )))
            }
            Some(Token::Ident(_)) | Some(Token::QuotedIdent(_)) => self.ident_or_call(),
            Some(t) => Err(DbError::Parse(format!(
                "expected expression, found {}",
                t.describe()
            ))),
            None => Err(DbError::Parse(
                "expected expression, found end of input".into(),
            )),
        }
    }

    fn ident_or_call(&mut self) -> Result<AstExpr> {
        let first = self.ident()?;

        // NULL / TRUE / FALSE literals.
        if first.eq_ignore_ascii_case("null") {
            return Ok(AstExpr::Literal(Value::Null));
        }
        if first.eq_ignore_ascii_case("true") {
            return Ok(AstExpr::Literal(Value::Bool(true)));
        }
        if first.eq_ignore_ascii_case("false") {
            return Ok(AstExpr::Literal(Value::Bool(false)));
        }

        // CAST(expr AS TYPE)
        if first.eq_ignore_ascii_case("cast") && self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let inner = self.expr()?;
            self.expect_kw("as")?;
            let mut type_name = self.ident()?.to_ascii_uppercase();
            if self.eat_if(&Token::LParen) {
                match self.next()? {
                    Token::Int(_) => {}
                    Token::Ident(s) if s.eq_ignore_ascii_case("max") => {}
                    t => {
                        return Err(DbError::Parse(format!(
                            "expected length in CAST type, found {}",
                            t.describe()
                        )))
                    }
                }
                self.expect(&Token::RParen, "')' after type length")?;
            }
            if type_name == "INTEGER" {
                type_name = "INT".into();
            }
            self.expect(&Token::RParen, "')' after CAST")?;
            return Ok(AstExpr::Cast {
                expr: Box::new(inner),
                type_name,
            });
        }

        // Function call?
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let mut args = Vec::new();
            let mut star = false;
            if self.eat_if(&Token::Star) {
                star = true;
            } else if self.peek() != Some(&Token::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.eat_if(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen, "')' after arguments")?;

            // OVER clause -> window function.
            if self.kw("over") {
                self.expect(&Token::LParen, "'(' after OVER")?;
                self.expect_kw("order")?;
                self.expect_kw("by")?;
                let order_by = self.order_items()?;
                self.expect(&Token::RParen, "')' after OVER clause")?;
                if !first.eq_ignore_ascii_case("row_number") {
                    return Err(DbError::Unsupported(format!(
                        "window function {first} (only ROW_NUMBER is supported)"
                    )));
                }
                return Ok(AstExpr::Window {
                    name: first.to_ascii_uppercase(),
                    order_by,
                });
            }

            return Ok(AstExpr::Func {
                name: first.to_ascii_uppercase(),
                args,
                star,
            });
        }

        // Qualified identifier a.b (but stop before method calls, which
        // postfix() handles).
        let mut parts = vec![first];
        while self.peek() == Some(&Token::Dot) {
            // a '.' must be followed by an ident; if that ident is then
            // followed by '(', it is a method call — leave it for postfix.
            let Some(next) = self.peek2() else { break };
            let is_ident = matches!(next, Token::Ident(_) | Token::QuotedIdent(_));
            if !is_ident {
                break;
            }
            if self.tokens.get(self.pos + 2) == Some(&Token::LParen) {
                break;
            }
            self.pos += 1; // dot
            parts.push(self.ident()?);
        }
        Ok(AstExpr::Ident(parts))
    }
}

/// Keywords that terminate an implicit alias position.
fn is_clause_keyword(s: &str) -> bool {
    const KW: &[&str] = &[
        "from", "where", "group", "order", "having", "join", "inner", "left", "right", "cross",
        "on", "as", "top", "and", "or", "not", "is", "null", "asc", "desc", "union", "values",
        "select", "insert", "into", "set", "with",
    ];
    KW.iter().any(|k| s.eq_ignore_ascii_case(k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_query1_from_the_paper() {
        let sql = "
            SELECT ROW_NUMBER() OVER (ORDER BY COUNT(*) DESC),
                   COUNT(*),
                   short_read_seq
            FROM [Read]
            WHERE r_e_id=1 AND r_sg_id=2 AND r_s_id=1
                  AND CHARINDEX('N', short_read_seq)=0
            GROUP BY short_read_seq";
        let stmt = parse(sql).unwrap();
        let Statement::Select(s) = stmt else { panic!() };
        assert_eq!(s.items.len(), 3);
        assert!(matches!(
            s.items[0],
            SelectItem::Expr {
                expr: AstExpr::Window { .. },
                ..
            }
        ));
        assert_eq!(s.group_by.len(), 1);
        assert!(s.where_clause.is_some());
    }

    #[test]
    fn parses_checkpoint() {
        assert!(matches!(
            parse("CHECKPOINT").unwrap(),
            Statement::Checkpoint
        ));
        assert!(matches!(
            parse("checkpoint").unwrap(),
            Statement::Checkpoint
        ));
    }

    #[test]
    fn parses_backup_and_restore() {
        assert_eq!(
            parse("BACKUP DATABASE TO '/backups/full'").unwrap(),
            Statement::Backup {
                dir: "/backups/full".into(),
                incremental_from: None
            }
        );
        assert_eq!(
            parse("BACKUP DATABASE TO '/b/2' INCREMENTAL FROM '/b/1'").unwrap(),
            Statement::Backup {
                dir: "/b/2".into(),
                incremental_from: Some("/b/1".into())
            }
        );
        assert_eq!(
            parse("RESTORE DATABASE FROM '/b/1' VERIFY ONLY").unwrap(),
            Statement::Restore {
                dir: "/b/1".into(),
                to: None,
                verify_only: true
            }
        );
        assert_eq!(
            parse("RESTORE DATABASE FROM '/b/1' TO '/data/db'").unwrap(),
            Statement::Restore {
                dir: "/b/1".into(),
                to: Some("/data/db".into()),
                verify_only: false
            }
        );
        // The destination must be a string literal, not an identifier.
        assert!(parse("BACKUP DATABASE TO somewhere").is_err());
        // VERIFY must be followed by ONLY.
        assert!(parse("RESTORE DATABASE FROM '/b/1' VERIFY").is_err());
    }

    #[test]
    fn parses_check_statements() {
        assert_eq!(
            parse("CHECK TABLE reads").unwrap(),
            Statement::Check {
                table: Some("reads".into()),
                repair: false
            }
        );
        assert_eq!(
            parse("CHECK TABLE reads REPAIR").unwrap(),
            Statement::Check {
                table: Some("reads".into()),
                repair: true
            }
        );
        assert_eq!(
            parse("check database repair").unwrap(),
            Statement::Check {
                table: None,
                repair: true
            }
        );
        assert_eq!(
            parse("CHECK DATABASE").unwrap(),
            Statement::Check {
                table: None,
                repair: false
            }
        );
        // CHECK alone is not a statement.
        assert!(parse("CHECK").is_err());
    }

    #[test]
    fn parses_set_option() {
        assert_eq!(
            parse("SET QUERY_TIMEOUT_MS = 500").unwrap(),
            Statement::Set {
                name: "QUERY_TIMEOUT_MS".into(),
                value: SetValue::Int(500)
            }
        );
        // Option names are case-normalized; UPDATE's SET is unaffected.
        assert_eq!(
            parse("set query_memory_limit_kb = 0").unwrap(),
            Statement::Set {
                name: "QUERY_MEMORY_LIMIT_KB".into(),
                value: SetValue::Int(0)
            }
        );
        // String values parse (the binder type-checks per option); a bare
        // identifier is still a syntax error.
        assert_eq!(
            parse("SET TRACE_EVENTS = 'WAIT,SPILL'").unwrap(),
            Statement::Set {
                name: "TRACE_EVENTS".into(),
                value: SetValue::Str("WAIT,SPILL".into())
            }
        );
        assert!(parse("SET QUERY_TIMEOUT_MS = soon").is_err());
        assert!(matches!(
            parse("UPDATE t SET a = 1").unwrap(),
            Statement::Update { .. }
        ));
    }

    #[test]
    fn parses_query2_insert_select_join() {
        let sql = "
            INSERT INTO GeneExpression
            SELECT a_g_id, a_e_id, SUM(t_frequency), COUNT(a_t_id)
            FROM Alignment JOIN Tag ON (a_t_id = t_id)
            WHERE a_e_id = 1
            GROUP BY a_g_id, a_e_id";
        let Statement::Insert(ins) = parse(sql).unwrap() else {
            panic!()
        };
        let InsertSource::Query(q) = ins.source else {
            panic!()
        };
        assert_eq!(q.group_by.len(), 2);
        let from = q.from.unwrap();
        assert_eq!(from.joins.len(), 1);
    }

    #[test]
    fn parses_create_table_with_filestream_and_compression() {
        let sql = "
            CREATE TABLE ShortReadFiles (
                guid UNIQUEIDENTIFIER ROWGUIDCOL PRIMARY KEY,
                sample INT,
                lane INT,
                reads VARBINARY(MAX) FILESTREAM
            ) FILESTREAM_ON FILESTREAMGROUP";
        let Statement::CreateTable(ct) = parse(sql).unwrap() else {
            panic!()
        };
        assert_eq!(ct.columns.len(), 4);
        assert!(ct.columns[0].rowguidcol);
        assert!(ct.columns[3].filestream);
        assert_eq!(ct.primary_key, Some(vec!["guid".to_string()]));
        assert_eq!(ct.filestream_on.as_deref(), Some("FILESTREAMGROUP"));

        let sql2 = "CREATE TABLE T1 (c1 INT, c2 NVARCHAR(50)) WITH (DATA_COMPRESSION = ROW)";
        let Statement::CreateTable(ct2) = parse(sql2).unwrap() else {
            panic!()
        };
        assert_eq!(ct2.compression.as_deref(), Some("ROW"));
    }

    #[test]
    fn parses_openrowset_bulk_import() {
        let sql = "
            INSERT INTO ShortReadFiles (guid, sample, lane, reads)
            SELECT NEWID(), 855, 1, *
            FROM OPENROWSET(BULK 'D:\\855_s_1.fastq', SINGLE_BLOB)";
        let Statement::Insert(ins) = parse(sql).unwrap() else {
            panic!()
        };
        let InsertSource::Query(q) = ins.source else {
            panic!()
        };
        let from = q.from.unwrap();
        assert!(matches!(from.base, TableRef::OpenRowset { .. }));
    }

    #[test]
    fn parses_cross_apply_and_tvf() {
        let sql = "
            SELECT chromosome, pos
            FROM Alignments a JOIN [Read] r ON (a_r_id = r_id)
            CROSS APPLY PivotAlignment(pos, seq, quals)
            WHERE a_e_id = 3";
        let Statement::Select(s) = parse(sql).unwrap() else {
            panic!()
        };
        let from = s.from.unwrap();
        assert_eq!(from.joins.len(), 2);
        assert!(matches!(from.joins[1], JoinClause::CrossApply { .. }));
    }

    #[test]
    fn parses_method_call_pathname() {
        let sql = "SELECT guid, reads.PathName(), DATALENGTH(reads) FROM ShortReadFiles";
        let Statement::Select(s) = parse(sql).unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &s.items[1] else {
            panic!()
        };
        let AstExpr::Func { name, args, .. } = expr else {
            panic!("got {expr:?}")
        };
        assert_eq!(name, "PATHNAME");
        assert_eq!(args.len(), 1);
    }

    #[test]
    fn parses_subquery_in_from() {
        let sql = "
            SELECT chromosome, AssembleSequence(pos, b)
            FROM (SELECT chromosome, pos, CallBase(base, qual) b
                  FROM Pileup GROUP BY chromosome, pos) x
            GROUP BY chromosome";
        let Statement::Select(s) = parse(sql).unwrap() else {
            panic!()
        };
        let from = s.from.unwrap();
        assert!(matches!(from.base, TableRef::Subquery { .. }));
    }

    #[test]
    fn parses_top_and_order_by() {
        let sql = "SELECT TOP 10 seq FROM t ORDER BY freq DESC, seq";
        let Statement::Select(s) = parse(sql).unwrap() else {
            panic!()
        };
        assert_eq!(s.top, Some(10));
        assert_eq!(s.order_by.len(), 2);
        assert!(s.order_by[0].desc);
        assert!(!s.order_by[1].desc);
    }

    #[test]
    fn explain_wraps_statement() {
        let stmt = parse("EXPLAIN SELECT 1").unwrap();
        assert!(matches!(stmt, Statement::Explain { analyze: false, .. }));
        let stmt = parse("EXPLAIN ANALYZE SELECT 1").unwrap();
        assert!(matches!(stmt, Statement::Explain { analyze: true, .. }));
    }

    #[test]
    fn script_splits_on_semicolons() {
        let stmts =
            parse_script("CREATE TABLE t (a INT); INSERT INTO t VALUES (1); SELECT * FROM t;")
                .unwrap();
        assert_eq!(stmts.len(), 3);
    }

    #[test]
    fn error_messages_name_the_problem() {
        let e = parse("SELECT FROM").unwrap_err();
        assert!(e.to_string().contains("expression"));
        let e = parse("CREATE VIEW v").unwrap_err();
        assert!(e.to_string().contains("TABLE or INDEX"));
        assert!(parse("SELECT 1 extra junk, ,").is_err());
    }

    #[test]
    fn arithmetic_precedence() {
        let Statement::Select(s) = parse("SELECT 1 + 2 * 3").unwrap() else {
            panic!()
        };
        let SelectItem::Expr { expr, .. } = &s.items[0] else {
            panic!()
        };
        // Must parse as 1 + (2*3).
        let AstExpr::Binary { op, right, .. } = expr else {
            panic!()
        };
        assert_eq!(*op, AstBinOp::Add);
        assert!(matches!(
            **right,
            AstExpr::Binary {
                op: AstBinOp::Mul,
                ..
            }
        ));
    }
}

//! Tokenizer for the T-SQL subset.
//!
//! Identifiers are case-insensitive; keywords are recognized at the
//! parser level by comparing identifier text. Supports `--` line comments,
//! `/* */` block comments, quoted identifiers (`[Read]`, the form the
//! paper uses for its `Read` table) and single-quoted strings with `''`
//! escapes.

use seqdb_types::{DbError, Result};

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Unquoted identifier or keyword (original case preserved).
    Ident(String),
    /// `[bracketed]` or `"quoted"` identifier.
    QuotedIdent(String),
    /// Integer literal.
    Int(i64),
    /// Floating-point literal.
    Float(f64),
    /// 'string literal'.
    Str(String),
    LParen,
    RParen,
    Comma,
    Dot,
    Semi,
    Star,
    Plus,
    Minus,
    Slash,
    Percent,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
}

impl Token {
    /// Is this the (case-insensitive) keyword `kw`?
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }

    pub fn describe(&self) -> String {
        match self {
            Token::Ident(s) => format!("identifier '{s}'"),
            Token::QuotedIdent(s) => format!("identifier [{s}]"),
            Token::Int(i) => format!("integer {i}"),
            Token::Float(f) => format!("number {f}"),
            Token::Str(s) => format!("string '{s}'"),
            other => format!("{other:?}"),
        }
    }
}

/// Tokenize a SQL string.
pub fn tokenize(sql: &str) -> Result<Vec<Token>> {
    let bytes = sql.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\r' | '\n' => i += 1,
            '-' if bytes.get(i + 1) == Some(&b'-') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                let start = i;
                i += 2;
                loop {
                    if i + 1 >= bytes.len() {
                        return Err(DbError::Parse(format!(
                            "unterminated block comment at byte {start}"
                        )));
                    }
                    if bytes[i] == b'*' && bytes[i + 1] == b'/' {
                        i += 2;
                        break;
                    }
                    i += 1;
                }
            }
            '(' => {
                out.push(Token::LParen);
                i += 1;
            }
            ')' => {
                out.push(Token::RParen);
                i += 1;
            }
            ',' => {
                out.push(Token::Comma);
                i += 1;
            }
            '.' if !bytes
                .get(i + 1)
                .map(|b| b.is_ascii_digit())
                .unwrap_or(false) =>
            {
                out.push(Token::Dot);
                i += 1;
            }
            ';' => {
                out.push(Token::Semi);
                i += 1;
            }
            '*' => {
                out.push(Token::Star);
                i += 1;
            }
            '+' => {
                out.push(Token::Plus);
                i += 1;
            }
            '-' => {
                out.push(Token::Minus);
                i += 1;
            }
            '/' => {
                out.push(Token::Slash);
                i += 1;
            }
            '%' => {
                out.push(Token::Percent);
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::LtEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    out.push(Token::NotEq);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    out.push(Token::GtEq);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&b'=') => {
                out.push(Token::NotEq);
                i += 2;
            }
            '\'' => {
                i += 1;
                let mut s = String::new();
                loop {
                    match bytes.get(i) {
                        None => return Err(DbError::Parse("unterminated string literal".into())),
                        Some(b'\'') if bytes.get(i + 1) == Some(&b'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some(b'\'') => {
                            i += 1;
                            break;
                        }
                        Some(&b) => {
                            s.push(b as char);
                            i += 1;
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            '[' => {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != b']' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(DbError::Parse("unterminated [identifier]".into()));
                }
                out.push(Token::QuotedIdent(sql[start..i].to_string()));
                i += 1;
            }
            '"' => {
                i += 1;
                let start = i;
                while i < bytes.len() && bytes[i] != b'"' {
                    i += 1;
                }
                if i >= bytes.len() {
                    return Err(DbError::Parse("unterminated \"identifier\"".into()));
                }
                out.push(Token::QuotedIdent(sql[start..i].to_string()));
                i += 1;
            }
            c if c.is_ascii_digit()
                || (c == '.'
                    && bytes
                        .get(i + 1)
                        .map(|b| b.is_ascii_digit())
                        .unwrap_or(false)) =>
            {
                let start = i;
                let mut is_float = false;
                while i < bytes.len()
                    && (bytes[i].is_ascii_digit()
                        || bytes[i] == b'.'
                        || bytes[i] == b'e'
                        || bytes[i] == b'E'
                        || ((bytes[i] == b'+' || bytes[i] == b'-')
                            && i > start
                            && (bytes[i - 1] == b'e' || bytes[i - 1] == b'E')))
                {
                    if bytes[i] == b'.' || bytes[i] == b'e' || bytes[i] == b'E' {
                        is_float = true;
                    }
                    i += 1;
                }
                let text = &sql[start..i];
                if is_float {
                    let f: f64 = text
                        .parse()
                        .map_err(|_| DbError::Parse(format!("bad number literal '{text}'")))?;
                    out.push(Token::Float(f));
                } else {
                    let n: i64 = text
                        .parse()
                        .map_err(|_| DbError::Parse(format!("bad integer literal '{text}'")))?;
                    out.push(Token::Int(n));
                }
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '@' || c == '#' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric()
                        || bytes[i] == b'_'
                        || bytes[i] == b'@'
                        || bytes[i] == b'#'
                        || bytes[i] == b'$')
                {
                    i += 1;
                }
                out.push(Token::Ident(sql[start..i].to_string()));
            }
            other => {
                return Err(DbError::Parse(format!(
                    "unexpected character '{other}' at byte {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_select_tokens() {
        let toks = tokenize("SELECT COUNT(*), seq FROM [Read] WHERE id >= 10").unwrap();
        assert!(toks[0].is_kw("select"));
        assert!(toks.contains(&Token::Star));
        assert!(toks.contains(&Token::QuotedIdent("Read".into())));
        assert!(toks.contains(&Token::GtEq));
        assert!(toks.contains(&Token::Int(10)));
    }

    #[test]
    fn strings_with_escapes_and_comments() {
        let toks = tokenize("-- comment\nSELECT 'it''s' /* block */ , 1.5e2").unwrap();
        assert_eq!(toks[1], Token::Str("it's".into()));
        assert_eq!(toks[3], Token::Float(150.0));
    }

    #[test]
    fn operators() {
        let toks = tokenize("a <> b != c <= d >= e < f > g").unwrap();
        let ops: Vec<&Token> = toks
            .iter()
            .filter(|t| !matches!(t, Token::Ident(_)))
            .collect();
        assert_eq!(
            ops,
            vec![
                &Token::NotEq,
                &Token::NotEq,
                &Token::LtEq,
                &Token::GtEq,
                &Token::Lt,
                &Token::Gt
            ]
        );
    }

    #[test]
    fn errors_are_reported() {
        assert!(tokenize("SELECT 'oops").is_err());
        assert!(tokenize("SELECT [oops").is_err());
        assert!(tokenize("SELECT ^").is_err());
        assert!(tokenize("/* never closed").is_err());
    }

    #[test]
    fn qualified_names_and_method_calls() {
        let toks = tokenize("reads.PathName()").unwrap();
        assert_eq!(toks[1], Token::Dot);
        assert!(toks[2].is_kw("pathname"));
    }
}

//! Name resolution and planning: turns parsed statements into engine
//! plans and executes them against a [`Database`].
//!
//! The binder also performs the rule-based optimizations the paper's
//! experiments depend on:
//!
//! * predicate pushdown into table scans;
//! * index-seek extraction: equality conjuncts on a prefix of a table's
//!   clustered key become a B+-tree seek;
//! * merge-join selection when both join inputs are ordered by their keys
//!   via clustered indexes (the Figure 10 plan);
//! * stream (non-blocking) aggregation when the input is already ordered
//!   by the GROUP BY columns — the sliding-window consensus plan;
//! * exchange-parallel aggregation when the input is a large base-table
//!   scan and every aggregate is mergeable (the Figure 9 plan).

use std::sync::Arc;

use seqdb_engine::exec::agg::AggSpec;
use seqdb_engine::exec::filter::project_schema;
use seqdb_engine::exec::sort::SortKey;
use seqdb_engine::plan::aggregate_schema;
use seqdb_engine::{
    BinOp, Database, DbConfig, ExecContext, Expr, JoinStrategy, Plan, QueryResult, Session,
    TableFunction,
};
use seqdb_types::{Column, DataType, DbError, Result, Row, Schema, Value};

use crate::ast::*;

/// Execute one SQL statement.
pub fn execute(db: &Arc<Database>, sql: &str) -> Result<QueryResult> {
    let stmt = crate::parser::parse(sql)?;
    execute_statement(db, &stmt)
}

/// Execute a script of `;`-separated statements, returning the last
/// statement's result.
pub fn execute_script(db: &Arc<Database>, sql: &str) -> Result<QueryResult> {
    let stmts = crate::parser::parse_script(sql)?;
    let mut last = QueryResult::empty();
    for s in &stmts {
        last = execute_statement(db, s)?;
    }
    Ok(last)
}

/// Execute one SQL statement in a [`Session`]: `SET` mutates the
/// session's own settings (not the server defaults), and queries run
/// admitted against the global pool, governed by the session's effective
/// limits, and registered in `sys.dm_exec_requests` where another
/// session's `KILL` can reach them.
pub fn execute_on(session: &Session, sql: &str) -> Result<QueryResult> {
    let stmt = crate::parser::parse(sql)?;
    execute_statement_on(session, &stmt, sql)
}

/// Session-scoped variant of [`execute_script`].
pub fn execute_script_on(session: &Session, sql: &str) -> Result<QueryResult> {
    let stmts = crate::parser::parse_script(sql)?;
    let mut last = QueryResult::empty();
    for s in &stmts {
        last = execute_statement_on(session, s, sql)?;
    }
    Ok(last)
}

/// Session-scoped statement dispatch. `sql_text` is what
/// `sys.dm_exec_requests` shows for the running statement.
pub fn execute_statement_on(
    session: &Session,
    stmt: &Statement,
    sql_text: &str,
) -> Result<QueryResult> {
    let db = session.database();
    match stmt {
        Statement::Set { name, value } => {
            if let Some(result) = apply_text_set(name, value)? {
                return Ok(result);
            }
            let value = set_int_value(name, value)?;
            let v = (value != 0).then_some(value as u64);
            match name.as_str() {
                // Session-scoped overlays of the server defaults.
                "QUERY_TIMEOUT_MS" => session.set_query_timeout_ms(v),
                "QUERY_MEMORY_LIMIT_KB" => session.set_query_memory_limit_kb(v),
                "MAX_DOP" => session.set_max_dop(value as usize),
                "JOIN_STRATEGY" => session.set_join_strategy(
                    JoinStrategy::from_setting(value).ok_or_else(|| {
                        DbError::Unsupported(format!(
                            "SET JOIN_STRATEGY: {value} (want 0=auto, 1=hash, 2=merge)"
                        ))
                    })?,
                ),
                // 0 = forced row-at-a-time (batch protocol off).
                "BATCH_SIZE" => session.set_batch_size(value as usize),
                // Admission control is a property of the shared pool, not
                // of one session: these stay server-wide.
                "ADMISSION_POOL_KB" => db.set_admission_pool_kb(v),
                "ADMISSION_WAIT_MS" => db.set_admission_wait_ms(value as u64),
                "ADMISSION_QUEUE_SLOTS" => db.set_admission_queue_slots(value as usize),
                // The slow-statement threshold feeds the trace log, which
                // is a server-wide sink: keep the knob server-wide too.
                "SLOW_QUERY_MS" => db.set_slow_query_ms(v),
                other => {
                    return Err(DbError::Unsupported(format!("unknown SET option {other}")));
                }
            }
            Ok(QueryResult::empty())
        }
        Statement::Select(s) => {
            // Plan under the session's effective config (its MAX_DOP
            // override steers the parallel-plan choice), then execute
            // admitted + governed + registered.
            let b = Binder::with_config(db, session.effective_config());
            let bound = b.plan_select(s)?;
            let (ctx, mut guard) = session.begin_statement(sql_text)?;
            let rows = bound.plan.run(&ctx)?;
            guard.set_rows(rows.len() as u64);
            drop(guard);
            Ok(QueryResult {
                schema: bound.plan.schema(),
                rows,
                affected: 0,
            })
        }
        Statement::Explain { analyze, inner } => {
            // Session-scoped EXPLAIN: planned under the session's
            // effective config; with ANALYZE the statement runs admitted
            // + governed + registered like any other query.
            let Statement::Select(s) = inner.as_ref() else {
                return Err(DbError::Unsupported("EXPLAIN of non-SELECT".into()));
            };
            let b = Binder::with_config(db, session.effective_config());
            let bound = b.plan_select(s)?;
            if *analyze {
                let (ctx, mut guard) = session.begin_statement(sql_text)?;
                let (result, rows) = run_explain_analyze(&bound.plan, ctx)?;
                guard.set_rows(rows);
                Ok(result)
            } else {
                Ok(plan_text_result(bound.plan.explain()))
            }
        }
        // DDL/DML and KILL behave identically from any session.
        other => execute_statement(db, other),
    }
}

/// Plan a SELECT and return the physical plan (for EXPLAIN and tests).
pub fn plan_query(db: &Arc<Database>, sql: &str) -> Result<Plan> {
    let stmt = crate::parser::parse(sql)?;
    match stmt {
        Statement::Select(s) => {
            let b = Binder::new(db);
            Ok(b.plan_select(&s)?.plan)
        }
        _ => Err(DbError::Plan("EXPLAIN requires a SELECT".into())),
    }
}

/// Text-typed `SET` options, shared by the server-scoped and
/// session-scoped dispatchers. Returns `Ok(Some(..))` when the option
/// was handled here, `Ok(None)` when the caller should treat it as an
/// integer knob.
fn apply_text_set(name: &str, value: &SetValue) -> Result<Option<QueryResult>> {
    if name != "TRACE_EVENTS" {
        return Ok(None);
    }
    let SetValue::Str(classes) = value else {
        return Err(DbError::Unsupported(
            "SET TRACE_EVENTS: expected a string value ('ALL', 'OFF' or a class list)".into(),
        ));
    };
    // The trace mask gates event emission process-wide: every session's
    // events land in the same per-thread rings.
    let mask = seqdb_engine::parse_mask(classes)?;
    seqdb_engine::tracer().set_mask(mask);
    Ok(Some(QueryResult::empty()))
}

/// Type-check a `SET` value as a non-negative integer.
fn set_int_value(name: &str, value: &SetValue) -> Result<i64> {
    match value {
        SetValue::Int(i) if *i >= 0 => Ok(*i),
        SetValue::Int(_) => Err(DbError::Unsupported(format!(
            "SET {name}: value must be non-negative"
        ))),
        SetValue::Str(_) => Err(DbError::Unsupported(format!(
            "SET {name}: expected an integer value"
        ))),
    }
}

/// Render plan text as the `[plan TEXT]` result EXPLAIN returns.
fn plan_text_result(text: String) -> QueryResult {
    let schema = Arc::new(Schema::new(vec![Column::new("plan", DataType::Text)]));
    let rows = text
        .lines()
        .map(|l| Row::new(vec![Value::text(l)]))
        .collect();
    QueryResult {
        schema,
        rows,
        affected: 0,
    }
}

/// `EXPLAIN ANALYZE`: execute the plan with an actuals collector
/// attached, then render the annotated tree plus a one-line statement
/// summary. Returns the result and the row count the run produced (for
/// the caller's query-stats record).
fn run_explain_analyze(plan: &Plan, mut ctx: ExecContext) -> Result<(QueryResult, u64)> {
    let stats = seqdb_engine::ExecStats::new();
    ctx.stats = Some(stats.clone());
    let started = std::time::Instant::now();
    let rows = plan.run(&ctx)?;
    let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
    let spill = ctx.gov.spill_tally();
    let mut text = plan.explain_analyze(&stats);
    text.push_str(&format!(
        "-- actual: {} rows, elapsed_ms={elapsed_ms:.3}, peak_mem_kb={}, \
         spill_files={}, spill_kb={}\n",
        rows.len(),
        ctx.gov.mem_peak() / 1024,
        spill.files(),
        spill.bytes() / 1024
    ));
    Ok((plan_text_result(text), rows.len() as u64))
}

pub fn execute_statement(db: &Arc<Database>, stmt: &Statement) -> Result<QueryResult> {
    match stmt {
        Statement::Explain { analyze, inner } => {
            let Statement::Select(s) = inner.as_ref() else {
                return Err(DbError::Unsupported("EXPLAIN of non-SELECT".into()));
            };
            let b = Binder::new(db);
            let bound = b.plan_select(s)?;
            if *analyze {
                let (result, _rows) = run_explain_analyze(&bound.plan, db.exec_context())?;
                Ok(result)
            } else {
                Ok(plan_text_result(bound.plan.explain()))
            }
        }
        Statement::Checkpoint => {
            db.checkpoint()?;
            Ok(QueryResult::empty())
        }
        Statement::Set { name, value } => {
            if let Some(result) = apply_text_set(name, value)? {
                return Ok(result);
            }
            // 0 switches a limit off, matching the resource-governor
            // convention of "unlimited unless configured".
            let value = set_int_value(name, value)?;
            let v = (value != 0).then_some(value as u64);
            match name.as_str() {
                "QUERY_TIMEOUT_MS" => db.set_query_timeout_ms(v),
                "QUERY_MEMORY_LIMIT_KB" => db.set_query_memory_limit_kb(v),
                "MAX_DOP" => db.set_max_dop(value as usize),
                "JOIN_STRATEGY" => {
                    db.set_join_strategy(JoinStrategy::from_setting(value).ok_or_else(|| {
                        DbError::Unsupported(format!(
                            "SET JOIN_STRATEGY: {value} (want 0=auto, 1=hash, 2=merge)"
                        ))
                    })?)
                }
                // 0 = forced row-at-a-time (batch protocol off).
                "BATCH_SIZE" => db.set_batch_size(value as usize),
                "ADMISSION_POOL_KB" => db.set_admission_pool_kb(v),
                "ADMISSION_WAIT_MS" => db.set_admission_wait_ms(value as u64),
                "ADMISSION_QUEUE_SLOTS" => db.set_admission_queue_slots(value as usize),
                "SLOW_QUERY_MS" => db.set_slow_query_ms(v),
                other => {
                    return Err(DbError::Unsupported(format!("unknown SET option {other}")));
                }
            }
            Ok(QueryResult::empty())
        }
        Statement::Kill(id) => {
            db.statements().kill(*id)?;
            Ok(QueryResult::empty())
        }
        Statement::Check { table, repair } => {
            let report = match table {
                Some(name) => db.check_table(name, *repair)?,
                None => db.check_database(*repair)?,
            };
            Ok(report.into_result())
        }
        Statement::Backup {
            dir,
            incremental_from,
        } => {
            let report = db.backup_database(
                std::path::Path::new(dir),
                incremental_from.as_deref().map(std::path::Path::new),
            )?;
            Ok(report.into_result())
        }
        Statement::Restore {
            dir,
            to,
            verify_only,
        } => {
            let backup = std::path::Path::new(dir);
            let report = if *verify_only {
                seqdb_engine::verify_backup(backup)?
            } else {
                match to {
                    Some(target) => {
                        seqdb_engine::restore_database(backup, std::path::Path::new(target))?
                    }
                    None => {
                        return Err(DbError::Unsupported(
                            "RESTORE DATABASE over the live database; use RESTORE ... TO \
                             '<dir>' and open the restored directory, or VERIFY ONLY"
                                .into(),
                        ))
                    }
                }
            };
            Ok(report.into_result())
        }
        Statement::CreateTable(ct) => create_table(db, ct),
        Statement::CreateIndex(ci) => create_index(db, ci),
        Statement::DropTable { name } => {
            db.catalog().drop_table(name)?;
            // The object is gone; a later table of the same name must not
            // inherit its fence.
            db.quarantine().clear_object(&name.to_ascii_lowercase());
            Ok(QueryResult::empty())
        }
        Statement::Insert(ins) => insert(db, ins),
        Statement::Delete { table, predicate } => {
            let t = db.resolve_table(table)?;
            let b = Binder::new(db);
            let scope = Scope::from_schema(&t.schema, Some(&t.name));
            let bound = match predicate {
                Some(p) => Some(b.bind_expr(p, &scope)?),
                None => None,
            };
            let n = t.delete_where(|row| match &bound {
                Some(p) => p.eval_predicate(row),
                None => Ok(true),
            })?;
            Ok(QueryResult {
                schema: Arc::new(Schema::empty()),
                rows: Vec::new(),
                affected: n,
            })
        }
        Statement::Update {
            table,
            assignments,
            predicate,
        } => {
            let t = db.resolve_table(table)?;
            let b = Binder::new(db);
            let scope = Scope::from_schema(&t.schema, Some(&t.name));
            let bound_pred = match predicate {
                Some(p) => Some(b.bind_expr(p, &scope)?),
                None => None,
            };
            let mut sets = Vec::with_capacity(assignments.len());
            for (col, e) in assignments {
                sets.push((t.schema.resolve(col)?, b.bind_expr(e, &scope)?));
            }
            // Collect matching rows, then delete + reinsert with the
            // assignments applied (updates are rare in this workload; no
            // in-place row rewrite).
            let victims: Vec<(seqdb_storage::RecordId, Row)> = t
                .heap
                .scan()
                .filter_map(|item| match item {
                    Ok((rid, row)) => match &bound_pred {
                        Some(p) => match p.eval_predicate(&row) {
                            Ok(true) => Some(Ok((rid, row))),
                            Ok(false) => None,
                            Err(e) => Some(Err(e)),
                        },
                        None => Some(Ok((rid, row))),
                    },
                    Err(e) => Some(Err(e)),
                })
                .collect::<seqdb_types::Result<_>>()?;
            for (rid, row) in &victims {
                let mut updated = row.clone();
                for (idx, e) in &sets {
                    updated.0[*idx] = e.eval(row)?;
                }
                t.delete_row(*rid, row)?;
                t.insert(&updated)?;
            }
            Ok(QueryResult {
                schema: Arc::new(Schema::empty()),
                rows: Vec::new(),
                affected: victims.len() as u64,
            })
        }
        Statement::Select(s) => {
            let b = Binder::new(db);
            let bound = b.plan_select(s)?;
            let ctx = db.exec_context();
            let rows = bound.plan.run(&ctx)?;
            Ok(QueryResult {
                schema: bound.plan.schema(),
                rows,
                affected: 0,
            })
        }
    }
}

// ----------------------------------------------------------------------
// DDL
// ----------------------------------------------------------------------

fn create_table(db: &Arc<Database>, ct: &CreateTable) -> Result<QueryResult> {
    let mut columns = Vec::with_capacity(ct.columns.len());
    for c in &ct.columns {
        let dtype = DataType::from_sql_name(&c.type_name)
            .ok_or_else(|| DbError::Schema(format!("unknown type {}", c.type_name)))?;
        let mut col = Column::new(c.name.clone(), dtype);
        if c.not_null {
            col = col.not_null();
        }
        if c.filestream {
            if dtype != DataType::Bytes {
                return Err(DbError::Schema("FILESTREAM requires VARBINARY(MAX)".into()));
            }
            col = col.filestream();
        }
        columns.push(col);
    }
    let schema = Schema::new(columns);
    let pk = match &ct.primary_key {
        None => None,
        Some(names) => {
            let mut idxs = Vec::with_capacity(names.len());
            for n in names {
                idxs.push(schema.resolve(n)?);
            }
            Some(idxs)
        }
    };
    let compression = match &ct.compression {
        None => seqdb_storage::rowfmt::Compression::None,
        Some(c) => seqdb_storage::rowfmt::Compression::from_sql_name(c)
            .ok_or_else(|| DbError::Schema(format!("unknown DATA_COMPRESSION {c}")))?,
    };
    db.create_table(&ct.name, schema, compression, pk)?;
    Ok(QueryResult::empty())
}

fn create_index(db: &Arc<Database>, ci: &CreateIndex) -> Result<QueryResult> {
    // An index build scans the heap: fenced tables must fail typed here
    // too, not surface a checksum error halfway through the backfill.
    let table = db.resolve_table(&ci.table)?;
    let mut cols = Vec::with_capacity(ci.columns.len());
    for c in &ci.columns {
        cols.push(table.schema.resolve(c)?);
    }
    db.catalog()
        .create_index(&ci.table, &ci.name, cols, ci.unique)?;
    Ok(QueryResult::empty())
}

// ----------------------------------------------------------------------
// INSERT
// ----------------------------------------------------------------------

fn insert(db: &Arc<Database>, ins: &Insert) -> Result<QueryResult> {
    let table = db.resolve_table(&ins.table)?;
    // Map provided columns to table positions.
    let positions: Vec<usize> = match &ins.columns {
        None => (0..table.schema.len()).collect(),
        Some(names) => {
            let mut v = Vec::with_capacity(names.len());
            for n in names {
                v.push(table.schema.resolve(n)?);
            }
            v
        }
    };

    let source_rows: Box<dyn Iterator<Item = Result<Row>>> = match &ins.source {
        InsertSource::Values(rows) => {
            let b = Binder::new(db);
            let empty_scope = Scope::empty();
            let mut out = Vec::with_capacity(rows.len());
            for r in rows {
                let mut vals = Vec::with_capacity(r.len());
                for e in r {
                    let bound = b.bind_expr(e, &empty_scope)?;
                    vals.push(bound.eval(&Row::empty())?);
                }
                out.push(Ok(Row::new(vals)));
            }
            Box::new(out.into_iter())
        }
        InsertSource::Query(q) => {
            let b = Binder::new(db);
            let bound = b.plan_select(q)?;
            let ctx = db.exec_context();
            let rows = bound.plan.run(&ctx)?;
            Box::new(rows.into_iter().map(Ok))
        }
    };

    let mut affected = 0u64;
    for row in source_rows {
        let row = row?;
        if row.len() != positions.len() {
            return Err(DbError::Schema(format!(
                "INSERT provides {} values for {} columns",
                row.len(),
                positions.len()
            )));
        }
        let mut full = vec![Value::Null; table.schema.len()];
        for (v, &p) in row.into_values().into_iter().zip(&positions) {
            full[p] = v;
        }
        // FILESTREAM conversion: raw bytes inserted into a FILESTREAM
        // column are written to the blob store; the row keeps the GUID.
        for (i, col) in table.schema.columns().iter().enumerate() {
            if col.filestream {
                if let Value::Bytes(b) = &full[i] {
                    let guid = db.filestream().insert(b)?;
                    full[i] = Value::Guid(guid);
                }
            }
        }
        table.insert(&Row::new(full))?;
        affected += 1;
    }
    Ok(QueryResult {
        schema: Arc::new(Schema::empty()),
        rows: Vec::new(),
        affected,
    })
}

// ----------------------------------------------------------------------
// Scopes
// ----------------------------------------------------------------------

#[derive(Clone, Debug)]
struct ScopeCol {
    qualifier: Option<String>,
    name: String,
    dtype: DataType,
    filestream: bool,
}

#[derive(Clone, Debug, Default)]
struct Scope {
    cols: Vec<ScopeCol>,
}

impl Scope {
    fn empty() -> Scope {
        Scope::default()
    }

    fn from_schema(schema: &Schema, qualifier: Option<&str>) -> Scope {
        Scope {
            cols: schema
                .columns()
                .iter()
                .map(|c| ScopeCol {
                    qualifier: qualifier.map(|q| q.to_string()),
                    name: c.name.clone(),
                    dtype: c.dtype,
                    filestream: c.filestream,
                })
                .collect(),
        }
    }

    fn concat(&self, other: &Scope) -> Scope {
        let mut cols = self.cols.clone();
        cols.extend(other.cols.iter().cloned());
        Scope { cols }
    }

    fn len(&self) -> usize {
        self.cols.len()
    }

    fn resolve(&self, parts: &[String]) -> Result<usize> {
        let (qual, name) = match parts {
            [name] => (None, name.as_str()),
            [qual, name] => (Some(qual.as_str()), name.as_str()),
            _ => {
                return Err(DbError::Schema(format!(
                    "unsupported qualified name {}",
                    parts.join(".")
                )))
            }
        };
        let mut found = None;
        for (i, c) in self.cols.iter().enumerate() {
            if !c.name.eq_ignore_ascii_case(name) {
                continue;
            }
            if let Some(q) = qual {
                let matches = c
                    .qualifier
                    .as_deref()
                    .map(|cq| cq.eq_ignore_ascii_case(q))
                    .unwrap_or(false);
                if !matches {
                    continue;
                }
            }
            if found.is_some() {
                return Err(DbError::Schema(format!(
                    "ambiguous column reference '{}'",
                    parts.join(".")
                )));
            }
            found = Some(i);
        }
        found.ok_or_else(|| DbError::Schema(format!("unknown column '{}'", parts.join("."))))
    }

    /// The output schema corresponding to this scope.
    fn to_schema(&self) -> Schema {
        Schema::new(
            self.cols
                .iter()
                .map(|c| {
                    let mut col = Column::new(c.name.clone(), c.dtype);
                    if c.filestream {
                        col = col.filestream();
                    }
                    col
                })
                .collect(),
        )
    }
}

// ----------------------------------------------------------------------
// SELECT planning
// ----------------------------------------------------------------------

struct BoundSelect {
    plan: Plan,
}

struct Binder<'a> {
    db: &'a Arc<Database>,
    /// Effective configuration for planning decisions (degree of
    /// parallelism, parallel threshold): the server defaults, or a
    /// session's overlaid view of them.
    cfg: DbConfig,
}

impl<'a> Binder<'a> {
    fn new(db: &'a Arc<Database>) -> Binder<'a> {
        let cfg = db.config();
        Binder { db, cfg }
    }

    fn with_config(db: &'a Arc<Database>, cfg: DbConfig) -> Binder<'a> {
        Binder { db, cfg }
    }
}

// ---- join costing ----

/// Fallback cardinality when a plan has no estimate (TVFs, nested joins).
const UNKNOWN_ROWS: u64 = 10_000;

/// Rough per-row width in bytes from the schema, for costing only.
fn estimated_row_width(schema: &Schema) -> u64 {
    schema
        .columns()
        .iter()
        .map(|c| match c.dtype {
            DataType::Bool => 9,
            DataType::Int | DataType::Float => 16,
            DataType::Guid => 24,
            DataType::Text => 40,
            DataType::Bytes => 72,
        })
        .sum::<u64>()
        .max(8)
}

/// (rows, bytes) estimate for a join input.
fn estimated_size(plan: &Plan) -> (u64, u64) {
    let rows = plan.estimate_rows().unwrap_or(UNKNOWN_ROWS);
    (
        rows,
        rows.saturating_mul(estimated_row_width(&plan.schema())),
    )
}

/// Cost (bytes moved) of a hash join: scan both sides plus the build side
/// handled twice more (hashing, table residency); if the build cannot fit
/// the memory grant, both sides additionally round-trip through spill
/// partitions.
fn hash_join_cost(build_bytes: u64, probe_bytes: u64, mem_limit: Option<u64>) -> u64 {
    let spill = match mem_limit {
        Some(limit) if build_bytes > limit => 2 * (build_bytes + probe_bytes),
        _ => 0,
    };
    3 * build_bytes + probe_bytes + spill
}

/// Cost of sorting both inputs then merging: each side pays its scan plus
/// an n·log2(n) comparison-and-move term (damped — comparisons are
/// cheaper than byte moves).
fn sort_merge_cost(l: (u64, u64), r: (u64, u64)) -> u64 {
    let sort = |(rows, bytes): (u64, u64)| {
        let log2 = 63 - u64::from(rows.max(2).leading_zeros());
        bytes + bytes.saturating_mul(log2) / 4
    };
    sort(l) + sort(r)
}

/// Wrap a plan in an explicit ascending sort on its join keys (the forced
/// merge-join path over unordered input).
fn sort_on_keys(plan: Plan, keys: &[Expr]) -> Plan {
    Plan::Sort {
        input: Box::new(plan),
        keys: keys.iter().cloned().map(SortKey::asc).collect(),
    }
}

/// Columns (by position) the plan's output is known to be ordered by.
fn plan_ordering(plan: &Plan) -> Vec<usize> {
    match plan {
        Plan::IndexScan {
            index, projection, ..
        } => match projection {
            None => index.columns.clone(),
            Some(proj) => {
                // Translate index key positions through the projection.
                let mut out = Vec::new();
                for kc in &index.columns {
                    match proj.iter().position(|p| p == kc) {
                        Some(new) => out.push(new),
                        None => break,
                    }
                }
                out
            }
        },
        Plan::MergeJoin {
            left, left_keys, ..
        } => {
            // Output is ordered by the left join keys (left columns keep
            // their positions in the concatenated row).
            let _ = left;
            left_keys
                .iter()
                .filter_map(|e| match e {
                    Expr::Column { index, .. } => Some(*index),
                    _ => None,
                })
                .collect()
        }
        Plan::Filter { input, .. } | Plan::Limit { input, .. } => plan_ordering(input),
        Plan::Sort { input: _, keys } => keys
            .iter()
            .filter_map(|k| match (&k.expr, k.desc) {
                (Expr::Column { index, .. }, false) => Some(*index),
                _ => None,
            })
            .collect(),
        _ => Vec::new(),
    }
}

impl Binder<'_> {
    fn is_aggregate_name(&self, name: &str) -> bool {
        self.db.catalog().aggregate(name).is_some()
    }

    fn plan_select(&self, s: &Select) -> Result<BoundSelect> {
        // ---- FROM ----
        let (mut plan, scope) = match &s.from {
            None => (
                Plan::Values {
                    schema: Arc::new(Schema::empty()),
                    rows: vec![Row::empty()],
                },
                Scope::empty(),
            ),
            Some(from) => self.plan_from(from)?,
        };

        // ---- WHERE ----
        if let Some(w) = &s.where_clause {
            let pred = self.bind_expr(w, &scope)?;
            plan = push_filter(plan, pred);
        }

        let is_agg = |n: &str| self.is_aggregate_name(n);
        let has_aggregates = s.items.iter().any(
            |i| matches!(i, SelectItem::Expr { expr, .. } if expr.contains_aggregate(&is_agg)),
        );

        if !s.group_by.is_empty() || has_aggregates {
            self.plan_grouped(s, plan, scope)
        } else {
            self.plan_plain(s, plan, scope)
        }
    }

    // ---- plain (non-aggregate) select ----
    fn plan_plain(&self, s: &Select, mut plan: Plan, scope: Scope) -> Result<BoundSelect> {
        // Expand items; windows are handled by sorting + numbering first.
        let mut exprs: Vec<Expr> = Vec::new();
        let mut aliases: Vec<Option<String>> = Vec::new();
        let mut window: Option<(usize, Vec<OrderItem>)> = None;
        for item in &s.items {
            match item {
                SelectItem::Wildcard => {
                    for (i, c) in scope.cols.iter().enumerate() {
                        exprs.push(Expr::col(i, c.name.clone()));
                        aliases.push(Some(c.name.clone()));
                    }
                }
                SelectItem::Expr { expr, alias } => match expr {
                    AstExpr::Window { order_by, .. } => {
                        if window.is_some() {
                            return Err(DbError::Unsupported("multiple window functions".into()));
                        }
                        window = Some((exprs.len(), order_by.clone()));
                        // Placeholder; patched after RowNumber is added.
                        exprs.push(Expr::lit(0));
                        aliases.push(alias.clone().or(Some("row_number".into())));
                    }
                    _ => {
                        exprs.push(self.bind_expr(expr, &scope)?);
                        aliases.push(
                            alias
                                .clone()
                                .or_else(|| expr.simple_name().map(|s| s.to_string())),
                        );
                    }
                },
            }
        }

        // ORDER BY over the *input* scope for plain selects.
        let order_keys = self.bind_order(&s.order_by, &scope)?;

        if let Some((win_pos, win_order)) = window {
            let win_keys = self.bind_order(&win_order, &scope)?;
            // If the input is already ordered by the window keys (e.g. a
            // clustered index scan), skip the Sort: ROW_NUMBER then runs
            // directly over the scan, buffering (and budget-charging) its
            // own peer frames instead of relying on the Sort's accounting.
            let covering_cols: Option<Vec<usize>> = win_keys
                .iter()
                .map(|k| match (&k.expr, k.desc) {
                    (Expr::Column { index, .. }, false) => Some(*index),
                    _ => None,
                })
                .collect();
            let mut presorted = false;
            if let Some(cols) = &covering_cols {
                if !cols.is_empty() {
                    presorted = ordering_covers(&plan_ordering(&plan), cols);
                    if !presorted {
                        if let Some(ordered) = try_index_order(&plan, cols) {
                            plan = ordered;
                            presorted = true;
                        }
                    }
                }
            }
            let order_cols = if presorted {
                covering_cols.unwrap_or_default()
            } else {
                plan = Plan::Sort {
                    input: Box::new(plan),
                    keys: win_keys,
                };
                Vec::new()
            };
            let schema_before = scope.to_schema();
            plan = Plan::RowNumber {
                input: Box::new(plan),
                prepend: false,
                order_cols,
                schema: Arc::new(append_rownum(&schema_before)),
            };
            exprs[win_pos] = Expr::col(scope.len(), "ROW_NUMBER()");
        }

        if !order_keys.is_empty() {
            if let Some(n) = s.top {
                plan = Plan::TopN {
                    input: Box::new(plan),
                    keys: order_keys,
                    n,
                };
            } else {
                plan = Plan::Sort {
                    input: Box::new(plan),
                    keys: order_keys,
                };
            }
        } else if let Some(n) = s.top {
            plan = Plan::Limit {
                input: Box::new(plan),
                n,
            };
        }

        let in_schema = plan.schema();
        let schema = project_schema(&in_schema, &exprs, &aliases);
        let plan = Plan::Project {
            input: Box::new(plan),
            exprs,
            schema,
        };
        Ok(BoundSelect { plan })
    }

    // ---- grouped / aggregate select ----
    fn plan_grouped(&self, s: &Select, plan: Plan, scope: Scope) -> Result<BoundSelect> {
        let is_agg = |n: &str| self.is_aggregate_name(n);

        // Bind GROUP BY expressions.
        let mut group_exprs = Vec::new();
        let mut group_names = Vec::new();
        let mut group_canon = Vec::new();
        for g in &s.group_by {
            group_exprs.push(self.bind_expr(g, &scope)?);
            group_names.push(
                g.simple_name()
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| g.canonical()),
            );
            group_canon.push(g.canonical());
        }

        // Walk select items: each is a group expr, an aggregate call, or
        // a ROW_NUMBER window over aggregate output.
        enum ItemKind {
            Group(usize),
            Agg(usize),
            Window(Vec<OrderItem>),
        }
        let mut aggs: Vec<AggSpec> = Vec::new();
        let mut agg_canon: Vec<String> = Vec::new();
        let mut items: Vec<(ItemKind, Option<String>)> = Vec::new();

        for item in &s.items {
            let SelectItem::Expr { expr, alias } = item else {
                return Err(DbError::Unsupported("SELECT * with GROUP BY".into()));
            };
            match expr {
                AstExpr::Window { order_by, .. } => {
                    items.push((ItemKind::Window(order_by.clone()), alias.clone()));
                }
                AstExpr::Func { name, args, star } if is_agg(name) => {
                    let factory = self.db.catalog().aggregate(name).expect("checked is_agg");
                    let bound_args = if *star {
                        Vec::new()
                    } else {
                        args.iter()
                            .map(|a| self.bind_expr(a, &scope))
                            .collect::<Result<Vec<_>>>()?
                    };
                    let out_name = alias.clone().unwrap_or_else(|| expr.canonical());
                    aggs.push(AggSpec::new(factory, bound_args, out_name));
                    agg_canon.push(expr.canonical());
                    items.push((ItemKind::Agg(aggs.len() - 1), alias.clone()));
                }
                other => {
                    let canon = other.canonical();
                    match group_canon.iter().position(|c| *c == canon) {
                        Some(pos) => items.push((ItemKind::Group(pos), alias.clone())),
                        None => {
                            return Err(DbError::Plan(format!(
                                "select item '{canon}' is neither a GROUP BY expression nor an aggregate"
                            )))
                        }
                    }
                }
            }
        }

        // ORDER BY keys referenced in the aggregate output may also be
        // aggregates not in the select list; add them as hidden aggs.
        let mut hidden_order: Vec<(usize, bool, usize)> = Vec::new(); // (order idx, desc, agg idx)
        for (oi, o) in s.order_by.iter().enumerate() {
            let canon = o.expr.canonical();
            if group_canon.contains(&canon) || agg_canon.contains(&canon) {
                continue;
            }
            if let AstExpr::Func { name, args, star } = &o.expr {
                if is_agg(name) {
                    let factory = self.db.catalog().aggregate(name).expect("is_agg");
                    let bound_args = if *star {
                        Vec::new()
                    } else {
                        args.iter()
                            .map(|a| self.bind_expr(a, &scope))
                            .collect::<Result<Vec<_>>>()?
                    };
                    aggs.push(AggSpec::new(factory, bound_args, canon.clone()));
                    agg_canon.push(canon);
                    hidden_order.push((oi, o.desc, aggs.len() - 1));
                }
            }
        }

        // HAVING: bound over the aggregate output; aggregate calls that
        // are not in the select list become hidden aggregates.
        let having_expr = match &s.having {
            None => None,
            Some(h) => {
                Some(self.bind_having(h, &scope, &group_canon, &mut agg_canon, &mut aggs)?)
            }
        };

        // Choose the aggregation strategy.
        let in_schema = plan.schema();
        let agg_schema = aggregate_schema(&in_schema, &group_exprs, &group_names, &aggs)?;
        let cfg = self.cfg.clone();
        let all_mergeable = aggs.iter().all(|a| a.factory.mergeable());
        let ordering = plan_ordering(&plan);
        let group_cols: Option<Vec<usize>> = group_exprs
            .iter()
            .map(|e| match e {
                Expr::Column { index, .. } => Some(*index),
                _ => None,
            })
            .collect();
        let grouped_by_order = match (&group_cols, group_exprs.is_empty()) {
            (_, true) => false,
            (Some(cols), _) if cols.len() <= ordering.len() => {
                let prefix: std::collections::HashSet<usize> =
                    ordering[..cols.len()].iter().copied().collect();
                cols.iter().all(|c| prefix.contains(c))
            }
            _ => false,
        };

        let mut plan = if grouped_by_order {
            Plan::StreamAggregate {
                input: Box::new(plan),
                group_exprs: group_exprs.clone(),
                aggs: aggs.clone(),
                schema: agg_schema.clone(),
            }
        } else if let Plan::TableScan {
            table,
            filter,
            projection: None,
            ..
        } = &plan
        {
            if all_mergeable && cfg.max_dop > 1 && table.row_count() >= cfg.parallel_threshold {
                Plan::ParallelAggregate {
                    table: table.clone(),
                    filter: filter.clone(),
                    group_exprs: group_exprs.clone(),
                    aggs: aggs.clone(),
                    dop: cfg.max_dop,
                    schema: agg_schema.clone(),
                }
            } else {
                Plan::HashAggregate {
                    input: Box::new(plan),
                    group_exprs: group_exprs.clone(),
                    aggs: aggs.clone(),
                    schema: agg_schema.clone(),
                }
            }
        } else {
            Plan::HashAggregate {
                input: Box::new(plan),
                group_exprs: group_exprs.clone(),
                aggs: aggs.clone(),
                schema: agg_schema.clone(),
            }
        };

        if let Some(h) = having_expr {
            plan = Plan::Filter {
                input: Box::new(plan),
                predicate: h,
            };
        }

        // Output positions: groups first, aggs after (see aggregate_schema).
        let group_base = 0usize;
        let agg_base = group_exprs.len();
        let out_schema = agg_schema.clone();

        // Resolve ORDER BY over the aggregate output.
        let mut order_keys: Vec<SortKey> = Vec::new();
        for (oi, o) in s.order_by.iter().enumerate() {
            if let Some(&(_, desc, agg_idx)) = hidden_order.iter().find(|(h_oi, _, _)| *h_oi == oi)
            {
                let e = Expr::col(agg_base + agg_idx, aggs[agg_idx].name.clone());
                order_keys.push(if desc {
                    SortKey::desc(e)
                } else {
                    SortKey::asc(e)
                });
                continue;
            }
            let e = self.resolve_in_output(&o.expr, &group_canon, &agg_canon, &out_schema)?;
            order_keys.push(if o.desc {
                SortKey::desc(e)
            } else {
                SortKey::asc(e)
            });
        }

        // Window over aggregate output.
        let mut window_col: Option<usize> = None;
        for (kind, _) in &items {
            if let ItemKind::Window(order) = kind {
                let mut keys = Vec::new();
                for o in order {
                    let e =
                        self.resolve_in_output(&o.expr, &group_canon, &agg_canon, &out_schema)?;
                    keys.push(if o.desc {
                        SortKey::desc(e)
                    } else {
                        SortKey::asc(e)
                    });
                }
                plan = Plan::Sort {
                    input: Box::new(plan),
                    keys,
                };
                plan = Plan::RowNumber {
                    input: Box::new(plan),
                    prepend: false,
                    // The Sort just planned above accounts for the rows.
                    order_cols: Vec::new(),
                    schema: Arc::new(append_rownum(&out_schema)),
                };
                window_col = Some(out_schema.len());
                break;
            }
        }

        // ORDER BY / TOP.
        if !order_keys.is_empty() {
            if let Some(n) = s.top {
                plan = Plan::TopN {
                    input: Box::new(plan),
                    keys: order_keys,
                    n,
                };
            } else {
                plan = Plan::Sort {
                    input: Box::new(plan),
                    keys: order_keys,
                };
            }
        } else if let Some(n) = s.top {
            plan = Plan::Limit {
                input: Box::new(plan),
                n,
            };
        }

        // Final projection in select order.
        let mut exprs = Vec::with_capacity(items.len());
        let mut aliases = Vec::with_capacity(items.len());
        for (kind, alias) in &items {
            match kind {
                ItemKind::Group(g) => {
                    exprs.push(Expr::col(group_base + g, group_names[*g].clone()));
                    aliases.push(alias.clone().or(Some(group_names[*g].clone())));
                }
                ItemKind::Agg(a) => {
                    exprs.push(Expr::col(agg_base + a, aggs[*a].name.clone()));
                    aliases.push(alias.clone().or(Some(aggs[*a].name.clone())));
                }
                ItemKind::Window(_) => {
                    exprs.push(Expr::col(
                        window_col.expect("window planned above"),
                        "ROW_NUMBER()",
                    ));
                    aliases.push(alias.clone().or(Some("row_number".into())));
                }
            }
        }
        let in_schema2 = plan.schema();
        let schema = project_schema(&in_schema2, &exprs, &aliases);
        let plan = Plan::Project {
            input: Box::new(plan),
            exprs,
            schema,
        };
        Ok(BoundSelect { plan })
    }

    /// Bind a HAVING expression over the aggregate output. Group
    /// expressions and already-planned aggregates resolve to their output
    /// columns; new aggregate calls are appended as hidden aggregates
    /// (dropped by the final projection); scalar structure recurses.
    fn bind_having(
        &self,
        e: &AstExpr,
        input_scope: &Scope,
        group_canon: &[String],
        agg_canon: &mut Vec<String>,
        aggs: &mut Vec<AggSpec>,
    ) -> Result<Expr> {
        let canon = e.canonical();
        if let Some(p) = group_canon.iter().position(|c| *c == canon) {
            return Ok(Expr::col(p, canon));
        }
        if let Some(p) = agg_canon.iter().position(|c| *c == canon) {
            return Ok(Expr::col(group_canon.len() + p, canon));
        }
        match e {
            AstExpr::Func { name, args, star } if self.is_aggregate_name(name) => {
                let factory = self
                    .db
                    .catalog()
                    .aggregate(name)
                    .expect("is_aggregate_name");
                let bound_args = if *star {
                    Vec::new()
                } else {
                    args.iter()
                        .map(|a| self.bind_expr(a, input_scope))
                        .collect::<Result<Vec<_>>>()?
                };
                aggs.push(AggSpec::new(factory, bound_args, canon.clone()));
                agg_canon.push(canon.clone());
                Ok(Expr::col(group_canon.len() + aggs.len() - 1, canon))
            }
            AstExpr::Binary { op, left, right } => Ok(Expr::Binary {
                op: map_binop(*op),
                left: Box::new(self.bind_having(
                    left,
                    input_scope,
                    group_canon,
                    agg_canon,
                    aggs,
                )?),
                right: Box::new(self.bind_having(
                    right,
                    input_scope,
                    group_canon,
                    agg_canon,
                    aggs,
                )?),
            }),
            AstExpr::Not(inner) => Ok(Expr::Not(Box::new(self.bind_having(
                inner,
                input_scope,
                group_canon,
                agg_canon,
                aggs,
            )?))),
            AstExpr::Neg(inner) => Ok(Expr::Neg(Box::new(self.bind_having(
                inner,
                input_scope,
                group_canon,
                agg_canon,
                aggs,
            )?))),
            AstExpr::IsNull { expr, negated } => Ok(Expr::IsNull {
                expr: Box::new(self.bind_having(
                    expr,
                    input_scope,
                    group_canon,
                    agg_canon,
                    aggs,
                )?),
                negated: *negated,
            }),
            AstExpr::Literal(v) => Ok(Expr::Literal(v.clone())),
            other => Err(DbError::Plan(format!(
                "HAVING expression '{}' must be built from GROUP BY expressions and aggregates",
                other.canonical()
            ))),
        }
    }

    /// Resolve an expression against the *output* of an aggregate
    /// (group columns by canonical form or name, aggregates by canonical
    /// form).
    fn resolve_in_output(
        &self,
        e: &AstExpr,
        group_canon: &[String],
        agg_canon: &[String],
        out_schema: &Schema,
    ) -> Result<Expr> {
        let canon = e.canonical();
        if let Some(pos) = group_canon.iter().position(|c| *c == canon) {
            return Ok(Expr::col(pos, out_schema.column(pos).name.clone()));
        }
        if let Some(pos) = agg_canon.iter().position(|c| *c == canon) {
            let idx = group_canon.len() + pos;
            return Ok(Expr::col(idx, out_schema.column(idx).name.clone()));
        }
        // By output column name / alias.
        if let AstExpr::Ident(parts) = e {
            if parts.len() == 1 {
                if let Some(i) = out_schema.index_of(&parts[0]) {
                    return Ok(Expr::col(i, parts[0].clone()));
                }
            }
        }
        Err(DbError::Plan(format!(
            "cannot resolve '{canon}' in the aggregate output"
        )))
    }

    fn bind_order(&self, items: &[OrderItem], scope: &Scope) -> Result<Vec<SortKey>> {
        items
            .iter()
            .map(|o| {
                let e = self.bind_expr(&o.expr, scope)?;
                Ok(if o.desc {
                    SortKey::desc(e)
                } else {
                    SortKey::asc(e)
                })
            })
            .collect()
    }

    // ---- FROM ----

    fn plan_from(&self, from: &FromClause) -> Result<(Plan, Scope)> {
        let (mut plan, mut scope) = self.plan_table_ref(&from.base)?;
        for j in &from.joins {
            match j {
                JoinClause::Inner { table, on } => {
                    let (right_plan, right_scope) = self.plan_table_ref(table)?;
                    let joint_scope = scope.concat(&right_scope);
                    let bound_on = self.bind_expr(on, &joint_scope)?;
                    let (keys, residual) =
                        split_equi_keys(&bound_on, scope.len(), joint_scope.len());
                    if keys.is_empty() {
                        return Err(DbError::Unsupported(
                            "JOIN without an equality condition".into(),
                        ));
                    }
                    let left_keys: Vec<Expr> = keys.iter().map(|(l, _)| l.clone()).collect();
                    let right_keys: Vec<Expr> = keys
                        .iter()
                        .map(|(_, r)| {
                            let mut e = r.clone();
                            shift_columns(&mut e, -(scope.len() as isize));
                            e
                        })
                        .collect();

                    // Try a merge join: both sides ordered on their keys.
                    let left_cols: Option<Vec<usize>> = left_keys
                        .iter()
                        .map(|e| match e {
                            Expr::Column { index, .. } => Some(*index),
                            _ => None,
                        })
                        .collect();
                    let right_cols: Option<Vec<usize>> = right_keys
                        .iter()
                        .map(|e| match e {
                            Expr::Column { index, .. } => Some(*index),
                            _ => None,
                        })
                        .collect();
                    let schema = Arc::new(plan.schema().concat(&right_plan.schema()));
                    let merged = match (&left_cols, &right_cols) {
                        (Some(lc), Some(rc)) => {
                            let lsorted = ordering_covers(&plan_ordering(&plan), lc);
                            let rsorted = ordering_covers(&plan_ordering(&right_plan), rc);
                            let (lplan, lok) = if lsorted {
                                (None, true)
                            } else {
                                (try_index_order(&plan, lc), false)
                            };
                            let (rplan, rok) = if rsorted {
                                (None, true)
                            } else {
                                (try_index_order(&right_plan, rc), false)
                            };
                            let l_final = if lok { Some(None) } else { lplan.map(Some) };
                            let r_final = if rok { Some(None) } else { rplan.map(Some) };
                            match (l_final, r_final) {
                                (Some(l), Some(r)) => Some((l, r)),
                                _ => None,
                            }
                        }
                        _ => None,
                    };
                    let strategy = self.cfg.join_strategy;
                    plan = match merged {
                        // Pre-ordered inputs: a merge join moves the
                        // fewest bytes, so the cost model never beats it
                        // — unless the user forced hashing.
                        Some((l, r)) if strategy != JoinStrategy::Hash => {
                            let left_plan = match l {
                                None => plan,
                                Some(p) => p,
                            };
                            let right_plan2 = match r {
                                None => right_plan,
                                Some(p) => p,
                            };
                            Plan::MergeJoin {
                                left: Box::new(left_plan),
                                right: Box::new(right_plan2),
                                left_keys,
                                right_keys,
                                schema,
                                dop_hint: self.cfg.max_dop,
                            }
                        }
                        _ => {
                            let l_est = estimated_size(&plan);
                            let r_est = estimated_size(&right_plan);
                            let mem_limit = self.cfg.query_mem_limit_kb.map(|kb| kb * 1024);
                            let build_bytes = l_est.1.min(r_est.1);
                            let probe_bytes = l_est.1.max(r_est.1);
                            let use_merge = strategy == JoinStrategy::Merge
                                || (strategy == JoinStrategy::Auto
                                    && sort_merge_cost(l_est, r_est)
                                        < hash_join_cost(build_bytes, probe_bytes, mem_limit));
                            if use_merge {
                                // Sort both unordered sides explicitly,
                                // then merge.
                                Plan::MergeJoin {
                                    left: Box::new(sort_on_keys(plan, &left_keys)),
                                    right: Box::new(sort_on_keys(right_plan, &right_keys)),
                                    left_keys,
                                    right_keys,
                                    schema,
                                    dop_hint: self.cfg.max_dop,
                                }
                            } else {
                                // Hash join, building on the estimated-
                                // smaller side; parallel partition phase
                                // only pays off past the same row
                                // threshold as parallel aggregation.
                                let dop = if l_est.0 + r_est.0 >= self.cfg.parallel_threshold {
                                    self.cfg.max_dop
                                } else {
                                    1
                                };
                                if r_est.1 < l_est.1 {
                                    Plan::HashJoin {
                                        build: Box::new(right_plan),
                                        probe: Box::new(plan),
                                        build_keys: right_keys,
                                        probe_keys: left_keys,
                                        probe_first: true,
                                        dop,
                                        schema,
                                    }
                                } else {
                                    Plan::HashJoin {
                                        build: Box::new(plan),
                                        probe: Box::new(right_plan),
                                        build_keys: left_keys,
                                        probe_keys: right_keys,
                                        probe_first: false,
                                        dop,
                                        schema,
                                    }
                                }
                            }
                        }
                    };
                    scope = joint_scope;
                    if let Some(res) = residual {
                        plan = Plan::Filter {
                            input: Box::new(plan),
                            predicate: res,
                        };
                    }
                }
                JoinClause::CrossApply { func } => {
                    let TableRef::Function { name, args, alias } = func else {
                        return Err(DbError::Unsupported(
                            "CROSS APPLY expects a table-valued function".into(),
                        ));
                    };
                    let tvf = self.db.catalog().table_fn(name).ok_or_else(|| {
                        DbError::NotFound(format!("table-valued function {name}"))
                    })?;
                    let bound_args: Vec<Expr> = args
                        .iter()
                        .map(|a| self.bind_expr(a, &scope))
                        .collect::<Result<_>>()?;
                    let tvf_schema = tvf.schema();
                    let qualifier = alias.clone().unwrap_or_else(|| name.clone());
                    let apply_scope =
                        scope.concat(&Scope::from_schema(&tvf_schema, Some(&qualifier)));
                    let schema = Arc::new(plan.schema().concat(&tvf_schema));
                    plan = Plan::CrossApply {
                        input: Box::new(plan),
                        tvf,
                        args: bound_args,
                        schema,
                    };
                    scope = apply_scope;
                }
            }
        }
        Ok((plan, scope))
    }

    fn plan_table_ref(&self, tr: &TableRef) -> Result<(Plan, Scope)> {
        match tr {
            TableRef::Named { name, alias } => {
                let table = self.db.resolve_table(name)?;
                let qualifier = alias.clone().unwrap_or_else(|| name.clone());
                let scope = Scope::from_schema(&table.schema, Some(&qualifier));
                let schema = table.schema.clone();
                Ok((
                    Plan::TableScan {
                        table,
                        filter: None,
                        projection: None,
                        schema,
                    },
                    scope,
                ))
            }
            TableRef::Function { name, args, alias } => {
                let tvf =
                    self.db.catalog().table_fn(name).ok_or_else(|| {
                        DbError::NotFound(format!("table-valued function {name}"))
                    })?;
                let empty = Scope::empty();
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    let bound = self.bind_expr(a, &empty).map_err(|_| {
                        DbError::Plan(format!(
                            "arguments of {name} in FROM must be constants (use CROSS APPLY for correlated arguments)"
                        ))
                    })?;
                    vals.push(bound.eval(&Row::empty())?);
                }
                let qualifier = alias.clone().unwrap_or_else(|| name.clone());
                let scope = Scope::from_schema(&tvf.schema(), Some(&qualifier));
                Ok((Plan::TvfScan { tvf, args: vals }, scope))
            }
            TableRef::Subquery { query, alias } => {
                let bound = self.plan_select(query)?;
                let schema = bound.plan.schema();
                let scope = Scope::from_schema(&schema, alias.as_deref());
                Ok((bound.plan, scope))
            }
            TableRef::OpenRowset { path } => {
                let tvf: Arc<dyn TableFunction> = Arc::new(OpenRowsetFn);
                let scope = Scope::from_schema(&tvf.schema(), Some("openrowset"));
                Ok((
                    Plan::TvfScan {
                        tvf,
                        args: vec![Value::text(path.clone())],
                    },
                    scope,
                ))
            }
        }
    }

    // ---- expressions ----

    fn bind_expr(&self, e: &AstExpr, scope: &Scope) -> Result<Expr> {
        Ok(match e {
            AstExpr::Literal(v) => Expr::Literal(v.clone()),
            AstExpr::Ident(parts) => {
                let idx = scope.resolve(parts)?;
                Expr::col(idx, parts.join("."))
            }
            AstExpr::Binary { op, left, right } => Expr::Binary {
                op: map_binop(*op),
                left: Box::new(self.bind_expr(left, scope)?),
                right: Box::new(self.bind_expr(right, scope)?),
            },
            AstExpr::Not(inner) => Expr::Not(Box::new(self.bind_expr(inner, scope)?)),
            AstExpr::Neg(inner) => Expr::Neg(Box::new(self.bind_expr(inner, scope)?)),
            AstExpr::IsNull { expr, negated } => Expr::IsNull {
                expr: Box::new(self.bind_expr(expr, scope)?),
                negated: *negated,
            },
            AstExpr::Cast { expr, type_name } => {
                let fname = match type_name.as_str() {
                    "INT" | "BIGINT" | "SMALLINT" | "TINYINT" => "TO_INT",
                    "FLOAT" | "REAL" | "DOUBLE" => "TO_FLOAT",
                    "VARCHAR" | "NVARCHAR" | "TEXT" | "CHAR" => "TO_VARCHAR",
                    other => return Err(DbError::Unsupported(format!("CAST to {other}"))),
                };
                let udf = self
                    .db
                    .catalog()
                    .scalar_fn(fname)
                    .ok_or_else(|| DbError::NotFound(format!("function {fname}")))?;
                Expr::Func {
                    udf,
                    args: vec![self.bind_expr(expr, scope)?],
                }
            }
            AstExpr::Func { name, args, star } => {
                if *star {
                    return Err(DbError::Plan(format!(
                        "{name}(*) is only valid as an aggregate in a GROUP BY query"
                    )));
                }
                if self.is_aggregate_name(name) {
                    return Err(DbError::Plan(format!(
                        "aggregate {name} is not allowed here"
                    )));
                }
                // Method-call rewrites with FILESTREAM awareness.
                let fname = if name.eq_ignore_ascii_case("pathname") {
                    "FS_PATHNAME".to_string()
                } else if name.eq_ignore_ascii_case("datalength")
                    && args.len() == 1
                    && is_filestream_ref(&args[0], scope)
                {
                    "FS_DATALENGTH".to_string()
                } else {
                    name.to_ascii_uppercase()
                };
                let udf = self
                    .db
                    .catalog()
                    .scalar_fn(&fname)
                    .ok_or_else(|| DbError::NotFound(format!("function {name}")))?;
                Expr::Func {
                    udf,
                    args: args
                        .iter()
                        .map(|a| self.bind_expr(a, scope))
                        .collect::<Result<_>>()?,
                }
            }
            AstExpr::Window { .. } => {
                return Err(DbError::Plan(
                    "window functions are only allowed in the select list".into(),
                ))
            }
        })
    }
}

fn is_filestream_ref(e: &AstExpr, scope: &Scope) -> bool {
    if let AstExpr::Ident(parts) = e {
        if let Ok(i) = scope.resolve(parts) {
            return scope.cols[i].filestream;
        }
    }
    false
}

fn map_binop(op: AstBinOp) -> BinOp {
    match op {
        AstBinOp::Add => BinOp::Add,
        AstBinOp::Sub => BinOp::Sub,
        AstBinOp::Mul => BinOp::Mul,
        AstBinOp::Div => BinOp::Div,
        AstBinOp::Mod => BinOp::Mod,
        AstBinOp::Eq => BinOp::Eq,
        AstBinOp::NotEq => BinOp::NotEq,
        AstBinOp::Lt => BinOp::Lt,
        AstBinOp::LtEq => BinOp::LtEq,
        AstBinOp::Gt => BinOp::Gt,
        AstBinOp::GtEq => BinOp::GtEq,
        AstBinOp::And => BinOp::And,
        AstBinOp::Or => BinOp::Or,
    }
}

/// Push a filter into a bare table scan where possible.
fn push_filter(plan: Plan, pred: Expr) -> Plan {
    match plan {
        Plan::TableScan {
            table,
            filter: None,
            projection,
            schema,
        } => Plan::TableScan {
            table,
            filter: Some(pred),
            projection,
            schema,
        },
        Plan::IndexScan {
            table,
            index,
            prefix,
            filter: None,
            projection,
            schema,
        } => Plan::IndexScan {
            table,
            index,
            prefix,
            filter: Some(pred),
            projection,
            schema,
        },
        other => Plan::Filter {
            input: Box::new(other),
            predicate: pred,
        },
    }
}

/// Does `ordering` start with exactly the columns in `cols` (in order)?
fn ordering_covers(ordering: &[usize], cols: &[usize]) -> bool {
    ordering.len() >= cols.len() && ordering[..cols.len()] == *cols
}

/// If `plan` is a bare table scan whose table has an index prefixed by
/// `cols`, replace it with an ordered index scan (keeping any filter).
fn try_index_order(plan: &Plan, cols: &[usize]) -> Option<Plan> {
    if let Plan::TableScan {
        table,
        filter,
        projection: None,
        schema,
    } = plan
    {
        if let Some(index) = table.index_with_prefix(cols) {
            return Some(Plan::IndexScan {
                table: table.clone(),
                index,
                prefix: Vec::new(),
                filter: filter.clone(),
                projection: None,
                schema: schema.clone(),
            });
        }
    }
    None
}

/// Split an ON condition into equi-join key pairs (left expr, right expr
/// over the *joint* row) plus a residual predicate.
fn split_equi_keys(
    on: &Expr,
    left_len: usize,
    _joint_len: usize,
) -> (Vec<(Expr, Expr)>, Option<Expr>) {
    let mut conjuncts = Vec::new();
    flatten_and(on, &mut conjuncts);
    let mut keys = Vec::new();
    let mut residual: Option<Expr> = None;
    for c in conjuncts {
        if let Expr::Binary {
            op: BinOp::Eq,
            left,
            right,
        } = &c
        {
            let l_side = side_of(left, left_len);
            let r_side = side_of(right, left_len);
            match (l_side, r_side) {
                (Some(false), Some(true)) => {
                    keys.push(((**left).clone(), (**right).clone()));
                    continue;
                }
                (Some(true), Some(false)) => {
                    keys.push(((**right).clone(), (**left).clone()));
                    continue;
                }
                _ => {}
            }
        }
        residual = Some(match residual {
            None => c,
            Some(r) => Expr::binary(BinOp::And, r, c),
        });
    }
    (keys, residual)
}

fn flatten_and(e: &Expr, out: &mut Vec<Expr>) {
    if let Expr::Binary {
        op: BinOp::And,
        left,
        right,
    } = e
    {
        flatten_and(left, out);
        flatten_and(right, out);
    } else {
        out.push(e.clone());
    }
}

/// Which side of a join does an expression reference? `Some(false)` =
/// only left columns, `Some(true)` = only right, `None` = both/neither.
fn side_of(e: &Expr, left_len: usize) -> Option<bool> {
    let mut cols = Vec::new();
    e.referenced_columns(&mut cols);
    if cols.is_empty() {
        return None;
    }
    let all_left = cols.iter().all(|&c| c < left_len);
    let all_right = cols.iter().all(|&c| c >= left_len);
    if all_left {
        Some(false)
    } else if all_right {
        Some(true)
    } else {
        None
    }
}

/// Shift every column reference in an expression by `delta`.
fn shift_columns(e: &mut Expr, delta: isize) {
    match e {
        Expr::Column { index, .. } => {
            *index = (*index as isize + delta) as usize;
        }
        Expr::Literal(_) => {}
        Expr::Binary { left, right, .. } => {
            shift_columns(left, delta);
            shift_columns(right, delta);
        }
        Expr::Not(i) | Expr::Neg(i) => shift_columns(i, delta),
        Expr::IsNull { expr, .. } => shift_columns(expr, delta),
        Expr::Func { args, .. } => {
            for a in args {
                shift_columns(a, delta);
            }
        }
    }
}

fn append_rownum(schema: &Schema) -> Schema {
    let mut cols = schema.columns().to_vec();
    cols.push(Column::new("row_number", DataType::Int));
    Schema::new(cols)
}

/// `OPENROWSET(BULK 'path', SINGLE_BLOB)`: one row, one VARBINARY column
/// with the file's contents (the paper's bulk-import idiom, §3.3).
struct OpenRowsetFn;

struct OpenRowsetCursor {
    path: String,
    emitted: bool,
    data: Option<Vec<u8>>,
}

impl seqdb_engine::TvfCursor for OpenRowsetCursor {
    fn move_next(&mut self) -> Result<bool> {
        if self.emitted {
            return Ok(false);
        }
        self.emitted = true;
        self.data = Some(
            std::fs::read(&self.path)
                .map_err(|e| DbError::Io(format!("OPENROWSET BULK '{}': {e}", self.path)))?,
        );
        Ok(true)
    }
    fn fill_row(&mut self) -> Result<Row> {
        Ok(Row::new(vec![Value::Bytes(
            self.data.take().expect("move_next loaded data").into(),
        )]))
    }
}

impl TableFunction for OpenRowsetFn {
    fn name(&self) -> &str {
        "OPENROWSET"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![Column::new(
            "BulkColumn",
            DataType::Bytes,
        )]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn seqdb_engine::TvfCursor>> {
        let path = args
            .first()
            .ok_or_else(|| DbError::Execution("OPENROWSET needs a path".into()))?
            .as_text()?
            .to_string();
        Ok(Box::new(OpenRowsetCursor {
            path,
            emitted: false,
            data: None,
        }))
    }
}

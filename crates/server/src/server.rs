//! The wire server: listener, per-connection threads, graceful drain.
//!
//! Thread-per-connection over `std::net::TcpStream` — no async runtime,
//! matching the rest of the workspace. Robustness is structural:
//!
//! * **Bounded connections.** An accept past `max_connections` gets a
//!   typed [`DbError::ServerBusy`] error frame and a close, before any
//!   session state is created.
//! * **Timeouts everywhere.** Socket reads poll on a short timeout (so
//!   idle connections notice drain and their idle deadline), and writes
//!   carry `write_timeout` — a reader that stops draining its response
//!   stalls into a typed close instead of growing a server-side buffer.
//! * **Disconnect mid-statement = KILL.** Statements run on a worker
//!   thread while the connection thread watches the socket; EOF or a
//!   reset cancels every statement of that session via
//!   [`StatementRegistry::kill_session`], then *waits for the worker to
//!   unwind* so pins, temp files and the admission reservation are all
//!   released before the connection deregisters.
//! * **Graceful drain.** [`Server::drain`] stops accepting, gives
//!   in-flight statements until the deadline, `KILL`s stragglers, joins
//!   every connection thread and finishes with a `CHECKPOINT`.
//!
//! With a [`FaultClock`] in the config every accepted stream is wrapped
//! in [`FaultInjectingStream`], so short reads, partial writes, stalls
//! and abrupt resets hit the connection lifecycle at seeded,
//! reproducible points — the same discipline the WAL sync faults use.
//!
//! [`StatementRegistry::kill_session`]: seqdb_engine::StatementRegistry::kill_session

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use seqdb_engine::{ConnState, Database, Session, TraceClass};
use seqdb_sql::SessionSqlExt;
use seqdb_storage::{FaultClock, FaultInjectingStream};
use seqdb_types::{DbError, Result};

use crate::protocol::{
    decode_query, encode_error, write_frame, write_result, MAX_FRAME, REQ_QUERY,
};

/// Server tunables. The defaults suit tests; `report server` raises the
/// connection bound into the hundreds.
#[derive(Clone)]
pub struct ServerConfig {
    /// Hard cap on concurrent connections; the next accept is rejected
    /// with a typed [`DbError::ServerBusy`] frame.
    pub max_connections: usize,
    /// How often blocked socket reads wake to check the idle deadline
    /// and the drain flag.
    pub poll_interval: Duration,
    /// A connection with no complete request for this long is closed.
    pub idle_timeout: Duration,
    /// Per-write socket timeout: the slow-reader backpressure bound.
    pub write_timeout: Duration,
    /// How long [`Server::drain`] lets in-flight statements finish
    /// before `KILL`ing them.
    pub drain_deadline: Duration,
    /// Wrap every accepted stream in a [`FaultInjectingStream`] driven
    /// by this clock (tests only; `None` in production).
    pub fault: Option<Arc<FaultClock>>,
    /// Run `CHECK DATABASE REPAIR` on a background thread this often;
    /// `None` (the default) disables the periodic scrub. The thread
    /// stops cleanly at drain.
    pub scrub_interval: Option<Duration>,
    /// Take an online backup on a background thread this often; `None`
    /// (the default) disables periodic backups. Requires `backup_dir`.
    /// The thread stops cleanly at drain.
    pub backup_interval: Option<Duration>,
    /// Where the periodic backup thread writes its sets: numbered
    /// subdirectories (`1`, `2`, ...), the first full, every later one
    /// incremental from its predecessor.
    pub backup_dir: Option<std::path::PathBuf>,
    /// Append every trace event the mask lets through as one JSON line
    /// per event. `None` (the default) keeps tracing in-memory only.
    pub trace_file: Option<std::path::PathBuf>,
    /// Append `slow_statement` events (see `SET SLOW_QUERY_MS`) here as
    /// JSONL, independent of the trace mask.
    pub slow_log_file: Option<std::path::PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            max_connections: 64,
            poll_interval: Duration::from_millis(20),
            idle_timeout: Duration::from_secs(300),
            write_timeout: Duration::from_secs(5),
            drain_deadline: Duration::from_secs(5),
            fault: None,
            scrub_interval: None,
            backup_interval: None,
            backup_dir: None,
            trace_file: None,
            slow_log_file: None,
        }
    }
}

/// What [`Server::drain`] did.
#[derive(Debug, Clone, Copy)]
pub struct DrainReport {
    /// Statements that were in flight when drain began and finished on
    /// their own within the deadline.
    pub finished: usize,
    /// Statements still running at the deadline that were killed.
    pub killed: usize,
    /// Total drain wall time, including the final checkpoint.
    pub elapsed: Duration,
}

struct Shared {
    db: Arc<Database>,
    cfg: ServerConfig,
    draining: AtomicBool,
    /// Statements completed over the server's lifetime (throughput
    /// numerator for `report server`).
    statements_done: AtomicUsize,
    conn_threads: Mutex<Vec<JoinHandle<()>>>,
}

/// A running wire server. Bind with [`Server::start`], stop with
/// [`Server::drain`].
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    scrub_thread: Option<JoinHandle<()>>,
    backup_thread: Option<JoinHandle<()>>,
    trace_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral test port)
    /// and start accepting connections.
    pub fn start(db: Arc<Database>, addr: &str, cfg: ServerConfig) -> Result<Server> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            db,
            cfg,
            draining: AtomicBool::new(false),
            statements_done: AtomicUsize::new(0),
            conn_threads: Mutex::new(Vec::new()),
        });
        let s2 = shared.clone();
        let accept_thread = std::thread::Builder::new()
            .name("seqdb-accept".into())
            .spawn(move || accept_loop(listener, s2))
            .map_err(DbError::io)?;
        let scrub_thread = match shared.cfg.scrub_interval {
            Some(interval) => {
                let s3 = shared.clone();
                Some(
                    std::thread::Builder::new()
                        .name("seqdb-scrub".into())
                        .spawn(move || scrub_loop(s3, interval))
                        .map_err(DbError::io)?,
                )
            }
            None => None,
        };
        let backup_thread = match (&shared.cfg.backup_interval, &shared.cfg.backup_dir) {
            (Some(interval), Some(dir)) => {
                let s4 = shared.clone();
                let (interval, dir) = (*interval, dir.clone());
                Some(
                    std::thread::Builder::new()
                        .name("seqdb-backup".into())
                        .spawn(move || backup_loop(s4, interval, dir))
                        .map_err(DbError::io)?,
                )
            }
            _ => None,
        };
        // With a trace or slow-log file configured, events flow through
        // the tracer's sink buffer to disk on a dedicated flusher thread
        // so no statement ever blocks on file I/O.
        let trace_thread = if shared.cfg.trace_file.is_some() || shared.cfg.slow_log_file.is_some()
        {
            seqdb_engine::tracer().attach_sink(true);
            let s5 = shared.clone();
            Some(
                std::thread::Builder::new()
                    .name("seqdb-trace".into())
                    .spawn(move || trace_flush_loop(s5))
                    .map_err(DbError::io)?,
            )
        } else {
            None
        };
        Ok(Server {
            shared,
            addr,
            accept_thread: Some(accept_thread),
            scrub_thread,
            backup_thread,
            trace_thread,
        })
    }

    /// The bound address (port resolved when binding `:0`).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Statements completed since startup.
    pub fn statements_done(&self) -> usize {
        self.shared.statements_done.load(Ordering::Relaxed)
    }

    /// Graceful shutdown: stop accepting, let in-flight statements
    /// finish until the configured deadline, `KILL` the stragglers,
    /// join every connection thread and `CHECKPOINT`.
    pub fn drain(mut self) -> Result<DrainReport> {
        let started = Instant::now();
        seqdb_engine::trace::emit(TraceClass::Connection, "drain_begin", 0, 0, || {
            format!("in_flight={}", self.shared.db.statements().running_count())
        });
        self.shared.draining.store(true, Ordering::SeqCst);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // The scrub thread polls the drain flag between slices and exits
        // at the next wakeup; a scrub pass never blocks the drain past
        // its current slice.
        if let Some(t) = self.scrub_thread.take() {
            let _ = t.join();
        }
        // Same deal for the backup thread: it polls the flag between
        // passes and a pass in flight finishes (backups are short and
        // rate-limited) before the thread exits.
        if let Some(t) = self.backup_thread.take() {
            let _ = t.join();
        }
        let deadline = started + self.shared.cfg.drain_deadline;
        let in_flight_at_start = self.shared.db.statements().running_count();
        // Phase 1: wait for in-flight statements to finish on their own.
        while self.shared.db.statements().running_count() > 0 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        // Phase 2: KILL whatever is still running, per owning session.
        let mut killed = 0;
        for conn in self.shared.db.connections().snapshot() {
            killed += self.shared.db.statements().kill_session(conn.session_id);
        }
        // Phase 3: connection threads all observe the drain flag (idle
        // ones at the next poll, executing ones when their statement
        // unwinds) and exit; joining them completes session cleanup.
        let threads: Vec<_> = self.shared.conn_threads.lock().drain(..).collect();
        for t in threads {
            let _ = t.join();
        }
        self.shared.db.checkpoint()?;
        let report = DrainReport {
            finished: in_flight_at_start.saturating_sub(killed),
            killed,
            elapsed: started.elapsed(),
        };
        seqdb_engine::trace::emit(TraceClass::Connection, "drain_end", 0, 0, || {
            format!(
                "finished={} killed={} elapsed_ms={}",
                report.finished,
                report.killed,
                report.elapsed.as_millis()
            )
        });
        // The flusher exits on the drain flag; one last synchronous
        // flush catches everything emitted during the drain itself
        // (kills, statement_finish, drain_end) before the sink detaches
        // (detaching discards whatever is still buffered).
        if let Some(t) = self.trace_thread.take() {
            let _ = t.join();
            flush_trace_sink(&self.shared.cfg);
            seqdb_engine::tracer().attach_sink(false);
        }
        Ok(report)
    }
}

/// The periodic integrity scrub: every `interval`, run a full
/// `CHECK DATABASE REPAIR` pass. Sleeps in `poll_interval` steps so the
/// drain flag is noticed promptly; scrub failures (e.g. an I/O error on
/// a dying disk) are recorded in the scrub counters by the engine and
/// must not take the thread down — the next pass retries.
fn scrub_loop(shared: Arc<Shared>, interval: Duration) {
    let mut next_pass = Instant::now() + interval;
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        if Instant::now() >= next_pass {
            let _ = shared.db.check_database(true);
            next_pass = Instant::now() + interval;
        }
        std::thread::sleep(shared.cfg.poll_interval.min(interval));
    }
}

/// The periodic online backup: every `interval`, write a new set under
/// `dir` — `dir/1` full, then `dir/N` incremental from `dir/N-1`. A
/// failed pass (disk full, crash-injected clock) is recorded in
/// `DM_DB_BACKUP_STATUS()`'s `last_outcome` by the engine and the next
/// pass retries into the same slot; the thread itself never dies.
fn backup_loop(shared: Arc<Shared>, interval: Duration, dir: std::path::PathBuf) {
    let mut seq: u64 = 1;
    let mut next_pass = Instant::now() + interval;
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        if Instant::now() >= next_pass {
            let dest = dir.join(seq.to_string());
            let base = (seq > 1).then(|| dir.join((seq - 1).to_string()));
            let ok = shared
                .db
                .backup_database(&dest, base.as_deref())
                .map(|_| ())
                .is_ok();
            if ok {
                seq += 1;
            } else {
                // Leave nothing half-written in the slot we will retry.
                let _ = std::fs::remove_dir_all(&dest);
            }
            next_pass = Instant::now() + interval;
        }
        std::thread::sleep(shared.cfg.poll_interval.min(interval));
    }
}

/// The trace flusher: drain the tracer's sink buffer to the configured
/// JSONL file(s) every interval. File errors are swallowed — losing a
/// trace line must never take the server down — and the drained events
/// are gone either way, keeping the sink bounded.
fn trace_flush_loop(shared: Arc<Shared>) {
    loop {
        let draining = shared.draining.load(Ordering::SeqCst);
        flush_trace_sink(&shared.cfg);
        if draining {
            return;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// One flush pass: take whatever the sink holds and append it as JSON
/// lines. `slow_statement` events are additionally copied to the slow
/// log so an operator can tail just the offenders.
fn flush_trace_sink(cfg: &ServerConfig) {
    let tracer = seqdb_engine::tracer();
    let events = tracer.drain_sink();
    if events.is_empty() {
        return;
    }
    let append = |path: &std::path::PathBuf| {
        std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .ok()
    };
    let mut trace_out = cfg.trace_file.as_ref().and_then(append);
    let mut slow_out = cfg.slow_log_file.as_ref().and_then(append);
    let start = tracer.start_unix_ms();
    for ev in &events {
        let line = ev.to_json(start);
        if let Some(f) = trace_out.as_mut() {
            let _ = writeln!(f, "{line}");
        }
        if ev.name == "slow_statement" {
            if let Some(f) = slow_out.as_mut() {
                let _ = writeln!(f, "{line}");
            }
        }
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        if shared.draining.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, peer)) => handle_accept(stream, peer, &shared),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            // Transient accept errors (e.g. the peer reset between
            // SYN and accept) must not take the listener down.
            Err(_) => std::thread::sleep(Duration::from_millis(2)),
        }
    }
}

/// Refuse (typed error frame, then close) or hand off to a connection
/// thread.
fn handle_accept(stream: TcpStream, peer: SocketAddr, shared: &Arc<Shared>) {
    let refusal = if shared.draining.load(Ordering::SeqCst) {
        Some(DbError::ServerDraining(
            "server is draining; retry later".into(),
        ))
    } else if shared.db.connections().active_count() >= shared.cfg.max_connections {
        Some(DbError::ServerBusy(format!(
            "connection limit of {} reached",
            shared.cfg.max_connections
        )))
    } else {
        None
    };
    if let Some(err) = refusal {
        let mut stream = stream;
        let _ = stream.set_write_timeout(Some(shared.cfg.write_timeout));
        let _ = write_frame(&mut stream, &encode_error(&err));
        return; // dropped: closed without ever registering
    }
    let shared2 = shared.clone();
    let spawned = std::thread::Builder::new()
        .name(format!("seqdb-conn-{peer}"))
        .spawn(move || {
            connection_main(stream, peer, shared2);
        });
    if let Ok(handle) = spawned {
        shared.conn_threads.lock().push(handle);
    }
}

/// Everything one connection does, from register to cleanup. Any error
/// path just returns: the `ConnectionHandle` drop deregisters, and the
/// `Session`/statement guards have already released engine resources.
fn connection_main(stream: TcpStream, peer: SocketAddr, shared: Arc<Shared>) {
    let _ = stream.set_nodelay(true);
    // `ctrl` shares the socket: used for liveness polling while a
    // statement runs and for socket timeouts (SO_RCVTIMEO/SO_SNDTIMEO
    // apply to every clone). The fault wrapper sits only on the framed
    // data path, so injected faults never corrupt the liveness poll.
    let Ok(ctrl) = stream.try_clone() else { return };
    let mut io: Box<dyn ReadWriteSend> = match &shared.cfg.fault {
        Some(clock) => Box::new(FaultInjectingStream::new(stream, clock.clone())),
        None => Box::new(stream),
    };
    let session = Arc::new(shared.db.create_session());
    let conn = shared
        .db
        .connections()
        .register(&peer.to_string(), session.id());
    let _ = ctrl.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = ctrl.set_read_timeout(Some(shared.cfg.poll_interval));

    let mut last_request = Instant::now();
    loop {
        conn.set_state(if shared.draining.load(Ordering::SeqCst) {
            ConnState::Draining
        } else {
            ConnState::Idle
        });
        // Wait for the next request frame, waking every poll_interval
        // (the socket read timeout) to check the idle deadline and the
        // drain flag.
        let payload = match next_request(io.as_mut(), &shared, last_request) {
            NextRequest::Frame(p) => p,
            NextRequest::Closed => return,
            NextRequest::Abort(e) => {
                // Courtesy frame so a blocked client learns why, then
                // close. Best-effort: the peer may already be gone.
                let _ = write_frame(&mut *io, &encode_error(&e));
                return;
            }
        };
        last_request = Instant::now();
        conn.touch();

        // Decode; a malformed request is a typed reply, not a close —
        // unless framing itself is broken, which read_frame caught.
        let sql = match payload.first() {
            Some(&REQ_QUERY) => match decode_query(&payload) {
                Ok(sql) => sql,
                Err(e) => {
                    if write_frame(&mut *io, &encode_error(&e)).is_err() {
                        return;
                    }
                    continue;
                }
            },
            _ => {
                // Unknown request tag: protocol violation, close after
                // telling the client why.
                let e = DbError::Protocol(format!(
                    "unknown request tag {:#04x}",
                    payload.first().copied().unwrap_or(0)
                ));
                let _ = write_frame(&mut *io, &encode_error(&e));
                return;
            }
        };

        if shared.draining.load(Ordering::SeqCst) {
            let e = DbError::ServerDraining("server is draining; statement rejected".into());
            let _ = write_frame(&mut *io, &encode_error(&e));
            return;
        }

        conn.set_state(ConnState::Executing);
        let result = execute_watched(&session, &sql, &ctrl, &shared);
        let Some(result) = result else {
            // Client vanished mid-statement; the statement was killed
            // and fully unwound. Nothing to write to.
            return;
        };
        shared.statements_done.fetch_add(1, Ordering::Relaxed);
        conn.touch();
        let written = match &result {
            Ok(res) => write_result(&mut *io, res),
            Err(e) => write_frame(&mut *io, &encode_error(e)),
        };
        if written.is_err() {
            // Write timeout or reset: the reader is gone or wedged.
            // The statement already finished, so no kill is needed.
            return;
        }
    }
}

/// Run one statement on a worker thread while watching the socket for a
/// client disconnect. Returns `None` if the client vanished (statement
/// killed and unwound); `Some(result)` otherwise.
fn execute_watched(
    session: &Arc<Session>,
    sql: &str,
    ctrl: &TcpStream,
    shared: &Arc<Shared>,
) -> Option<Result<seqdb_engine::QueryResult>> {
    let (tx, rx) = mpsc::channel();
    let worker_session = session.clone();
    let worker_sql = sql.to_string();
    let spawned = std::thread::Builder::new()
        .name("seqdb-stmt".into())
        .spawn(move || {
            let _ = tx.send(worker_session.execute_sql(&worker_sql));
        });
    let worker = match spawned {
        Ok(w) => w,
        Err(e) => return Some(Err(DbError::io(e))),
    };
    // A fault schedule whose reset point has passed means the simulated
    // peer is gone even though the real test socket is still open.
    let doomed = || {
        shared
            .cfg
            .fault
            .as_ref()
            .is_some_and(|c| c.net_reset_pending())
    };
    let mut peer_gone = false;
    let result = loop {
        match rx.recv_timeout(Duration::from_millis(10)) {
            Ok(res) => break res,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                if !peer_gone && (doomed() || !peer_alive(ctrl)) {
                    peer_gone = true;
                    // The client is gone: cancel everything this
                    // session has in flight, then keep waiting for the
                    // worker so cleanup (pins, temp files, admission
                    // budget) completes before the connection closes.
                    shared.db.statements().kill_session(session.id());
                }
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                break Err(DbError::Execution(
                    "statement worker vanished without a result".into(),
                ));
            }
        }
    };
    let _ = worker.join();
    if peer_gone {
        None
    } else {
        Some(result)
    }
}

/// Is the peer still there? `peek` returns 0 on EOF, an error on reset,
/// and times out (SO_RCVTIMEO, the configured poll interval) when the
/// peer is alive but quiet. Pipelined bytes stay in the socket buffer.
fn peer_alive(ctrl: &TcpStream) -> bool {
    let mut probe = [0u8; 1];
    match ctrl.peek(&mut probe) {
        Ok(0) => false,
        Ok(_) => true,
        Err(e)
            if e.kind() == std::io::ErrorKind::WouldBlock
                || e.kind() == std::io::ErrorKind::TimedOut =>
        {
            true
        }
        Err(_) => false,
    }
}

enum NextRequest {
    /// A complete request frame payload.
    Frame(Vec<u8>),
    /// The connection is over (clean EOF, reset, framing violation, or
    /// drain noticed while idle); close silently.
    Closed,
    /// Tell the client why (error frame), then close.
    Abort(DbError),
}

/// Read one request frame, waking on every socket read timeout (the
/// configured poll interval) to check the drain flag and the idle
/// deadline. Partial frames survive timeouts — a slow-trickling client
/// keeps its bytes — but the idle deadline bounds the total wait, so a
/// wedged or malicious half-frame cannot pin the connection forever.
fn next_request(io: &mut dyn ReadWriteSend, shared: &Shared, last_request: Instant) -> NextRequest {
    let mut header = [0u8; 4];
    match fill_polled(io, &mut header, shared, last_request) {
        Fill::Done => {}
        Fill::Eof(0) => return NextRequest::Closed, // boundary EOF
        Fill::Eof(_) | Fill::Broken => return NextRequest::Closed,
        Fill::Drain => return NextRequest::Closed,
        Fill::IdleDeadline => {
            return NextRequest::Abort(DbError::Timeout(format!(
                "connection idle past {}ms; closing",
                shared.cfg.idle_timeout.as_millis()
            )))
        }
    }
    let n = u32::from_le_bytes(header) as usize;
    if n > MAX_FRAME {
        return NextRequest::Abort(DbError::Protocol(format!(
            "incoming frame claims {n} bytes; cap is {MAX_FRAME}"
        )));
    }
    if n == 0 {
        return NextRequest::Abort(DbError::Protocol("empty frame (no tag byte)".into()));
    }
    let mut payload = vec![0u8; n];
    match fill_polled(io, &mut payload, shared, last_request) {
        Fill::Done => NextRequest::Frame(payload),
        Fill::Eof(_) | Fill::Broken | Fill::Drain | Fill::IdleDeadline => NextRequest::Closed,
    }
}

enum Fill {
    Done,
    /// EOF after this many bytes of the buffer.
    Eof(usize),
    /// Reset or unexpected socket error.
    Broken,
    /// The server started draining while we waited.
    Drain,
    /// The connection's idle deadline passed with no complete frame.
    IdleDeadline,
}

fn fill_polled(
    io: &mut dyn ReadWriteSend,
    buf: &mut [u8],
    shared: &Shared,
    last_request: Instant,
) -> Fill {
    let mut filled = 0;
    while filled < buf.len() {
        match io.read(&mut buf[filled..]) {
            Ok(0) => return Fill::Eof(filled),
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    return Fill::Drain;
                }
                if last_request.elapsed() >= shared.cfg.idle_timeout {
                    return Fill::IdleDeadline;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return Fill::Broken,
        }
    }
    Fill::Done
}

trait ReadWriteSend: Read + Write + Send {}
impl<T: Read + Write + Send> ReadWriteSend for T {}

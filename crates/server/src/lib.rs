//! seqdb wire server and client.
//!
//! The network front end that turns the engine's overload machinery —
//! sessions, `KILL`, the admission pool, the DMVs — into real service
//! robustness (*Röhm & Blakeley, CIDR 2009* assume the genomics
//! database is a shared server labs hit concurrently):
//!
//! * [`protocol`] — length-prefixed frames, typed error codes, bounded
//!   frame sizes;
//! * [`server`] — thread-per-connection listener with bounded
//!   connection count, idle/write timeouts, auto-`KILL` on client
//!   disconnect, seeded network fault injection and graceful drain;
//! * [`client`] — the matching blocking client, used by `report
//!   server` and the integration suite.

// A server must not die on a recoverable error: every fallible path
// propagates `DbError` instead of unwrapping. Tests may unwrap.
#![warn(clippy::unwrap_used)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod client;
pub mod protocol;
pub mod server;

pub use client::Client;
pub use server::{DrainReport, Server, ServerConfig};

//! Minimal client for the seqdb wire protocol.
//!
//! One blocking request/response exchange per [`Client::query`] call.
//! Typed engine errors come back as the same [`DbError`] variants the
//! server raised (see [`crate::protocol`]); transport failures surface
//! as [`DbError::Io`] / [`DbError::Protocol`]. Used by `report server`
//! and the integration suite; small enough to embed anywhere.

use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use seqdb_engine::QueryResult;
use seqdb_types::{DbError, Result, Row, Schema};

use crate::protocol::{
    decode_done, decode_error, decode_rows, decode_schema, encode_query, read_frame, write_frame,
    RESP_DONE, RESP_ERR, RESP_ROWS, RESP_SCHEMA,
};

/// A connection to a seqdb wire server.
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connect to `addr` (anything `ToSocketAddrs`, e.g. the value of
    /// [`Server::addr`](crate::Server::addr)).
    pub fn connect(addr: impl std::net::ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Connect with a bound on the TCP handshake itself.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Client> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        let _ = stream.set_nodelay(true);
        Ok(Client { stream })
    }

    /// Bound how long [`Client::query`] may block reading the response
    /// (`None` = forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// The underlying stream (tests use this to shut the socket down
    /// abruptly, simulating a vanished client).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Execute one statement and collect the whole result. A typed
    /// error frame becomes that same `Err(DbError)` locally; the
    /// connection stays usable after any *typed* error (`ServerBusy`,
    /// `NoSuchStatement`, `Cancelled`, ...), matching the server's
    /// promise not to drop the connection for statement-level failures.
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        write_frame(&mut self.stream, &encode_query(sql))?;
        let mut schema: Option<Schema> = None;
        let mut rows: Vec<Row> = Vec::new();
        loop {
            let payload = match read_frame(&mut self.stream)? {
                Some(p) => p,
                None => {
                    return Err(DbError::Io(
                        "server closed the connection mid response".into(),
                    ))
                }
            };
            match payload.first().copied() {
                Some(RESP_SCHEMA) => schema = Some(decode_schema(&payload)?),
                Some(RESP_ROWS) => rows.extend(decode_rows(&payload)?),
                Some(RESP_DONE) => {
                    let affected = decode_done(&payload)?;
                    return Ok(QueryResult {
                        schema: std::sync::Arc::new(schema.unwrap_or_else(Schema::empty)),
                        rows,
                        affected,
                    });
                }
                Some(RESP_ERR) => return Err(decode_error(&payload)?),
                other => {
                    return Err(DbError::Protocol(format!(
                        "unexpected response tag {other:?}"
                    )))
                }
            }
        }
    }
}

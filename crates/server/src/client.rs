//! Minimal client for the seqdb wire protocol.
//!
//! One blocking request/response exchange per [`Client::query`] call.
//! Typed engine errors come back as the same [`DbError`] variants the
//! server raised (see [`crate::protocol`]); transport failures surface
//! as [`DbError::Io`] / [`DbError::Protocol`]. Used by `report server`
//! and the integration suite; small enough to embed anywhere.
//!
//! With [`Client::set_retry_attempts`] the client absorbs *admission*
//! refusals — the typed [`DbError::ServerBusy`] / [`DbError::ServerDraining`]
//! the server answers when its connection or queue limits are hit — by
//! retrying with bounded exponential backoff, reconnecting when the
//! server closed the socket after the refusal frame. Off by default:
//! statement-level errors must stay visible to code that wants them.

use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

use seqdb_engine::QueryResult;
use seqdb_types::{DbError, Result, Row, Schema};

use crate::protocol::{
    decode_done, decode_error, decode_rows, decode_schema, encode_query, read_frame, write_frame,
    RESP_DONE, RESP_ERR, RESP_ROWS, RESP_SCHEMA,
};

/// First backoff pause; doubles per retry.
const RETRY_BASE: Duration = Duration::from_millis(10);
/// Backoff ceiling.
const RETRY_CAP: Duration = Duration::from_millis(500);

/// A connection to a seqdb wire server.
pub struct Client {
    stream: TcpStream,
    /// Peer address, kept so a retry can reconnect after the server
    /// refused-then-closed.
    peer: Option<SocketAddr>,
    /// How many times `query` retries a `ServerBusy`/`ServerDraining`
    /// refusal before surfacing it. `0` (the default) = no retries.
    retry_attempts: u32,
    /// Total refusals absorbed by backoff-and-retry over this client's
    /// lifetime.
    retries_performed: u64,
}

impl Client {
    /// Connect to `addr` (anything `ToSocketAddrs`, e.g. the value of
    /// [`Server::addr`](crate::Server::addr)).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        let peer = stream.peer_addr().ok();
        Ok(Client {
            stream,
            peer,
            retry_attempts: 0,
            retries_performed: 0,
        })
    }

    /// Connect with a bound on the TCP handshake itself.
    pub fn connect_timeout(addr: &SocketAddr, timeout: Duration) -> Result<Client> {
        let stream = TcpStream::connect_timeout(addr, timeout)?;
        let _ = stream.set_nodelay(true);
        Ok(Client {
            stream,
            peer: Some(*addr),
            retry_attempts: 0,
            retries_performed: 0,
        })
    }

    /// Bound how long [`Client::query`] may block reading the response
    /// (`None` = forever).
    pub fn set_read_timeout(&self, timeout: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(timeout)?;
        Ok(())
    }

    /// Opt in to absorbing up to `attempts` `ServerBusy`/`ServerDraining`
    /// refusals per [`Client::query`] call with bounded exponential
    /// backoff (10ms doubling, capped at 500ms).
    pub fn set_retry_attempts(&mut self, attempts: u32) {
        self.retry_attempts = attempts;
    }

    /// Refusals absorbed by retry over this client's lifetime.
    pub fn retries_performed(&self) -> u64 {
        self.retries_performed
    }

    /// The underlying stream (tests use this to shut the socket down
    /// abruptly, simulating a vanished client).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Execute one statement and collect the whole result. A typed
    /// error frame becomes that same `Err(DbError)` locally; the
    /// connection stays usable after any *typed* error (`ServerBusy`,
    /// `NoSuchStatement`, `Cancelled`, ...), matching the server's
    /// promise not to drop the connection for statement-level failures.
    ///
    /// With retries configured ([`Client::set_retry_attempts`]), a
    /// `ServerBusy`/`ServerDraining` answer is retried after a backoff
    /// pause — over the same connection when the server kept it open
    /// (queue-full), over a fresh one when it refused-then-closed
    /// (connection limit, draining).
    pub fn query(&mut self, sql: &str) -> Result<QueryResult> {
        let mut attempt: u32 = 0;
        loop {
            // A send failure is always safe to retry: the request never
            // reached the server, so nothing executed. It happens when a
            // refused-then-closed socket RSTs before our write lands —
            // EPIPE/ECONNRESET at write time instead of a readable busy
            // frame. Response errors retry only on the typed refusals;
            // an I/O error mid-response may follow a statement that ran.
            let retriable = match self.send_query(sql) {
                Ok(()) => match self.read_response() {
                    Ok(r) => return Ok(r),
                    Err(e @ (DbError::ServerBusy(_) | DbError::ServerDraining(_))) => e,
                    Err(other) => return Err(other),
                },
                Err(e @ DbError::Io(_)) => e,
                Err(other) => return Err(other),
            };
            if attempt >= self.retry_attempts {
                return Err(retriable);
            }
            let pause = RETRY_BASE
                .saturating_mul(1u32 << attempt.min(16))
                .min(RETRY_CAP);
            std::thread::sleep(pause);
            attempt += 1;
            self.retries_performed += 1;
            // A refusal at accept time (connection limit / draining) is
            // answered and then the socket is closed; reconnect before
            // retrying. A queue-full refusal keeps the connection open,
            // in which case the probe below is a no-op. A *send* failure
            // forces the redial: the unread refusal frame still buffered
            // on the dead socket would make the peek probe report it
            // alive, and writes would hit the same broken pipe forever.
            self.reconnect_if_closed(matches!(retriable, DbError::Io(_)));
        }
    }

    fn send_query(&mut self, sql: &str) -> Result<()> {
        write_frame(&mut self.stream, &encode_query(sql))
    }

    fn read_response(&mut self) -> Result<QueryResult> {
        let mut schema: Option<Schema> = None;
        let mut rows: Vec<Row> = Vec::new();
        loop {
            let payload = match read_frame(&mut self.stream)? {
                Some(p) => p,
                None => {
                    return Err(DbError::Io(
                        "server closed the connection mid response".into(),
                    ))
                }
            };
            match payload.first().copied() {
                Some(RESP_SCHEMA) => schema = Some(decode_schema(&payload)?),
                Some(RESP_ROWS) => rows.extend(decode_rows(&payload)?),
                Some(RESP_DONE) => {
                    let affected = decode_done(&payload)?;
                    return Ok(QueryResult {
                        schema: std::sync::Arc::new(schema.unwrap_or_else(Schema::empty)),
                        rows,
                        affected,
                    });
                }
                Some(RESP_ERR) => return Err(decode_error(&payload)?),
                other => {
                    return Err(DbError::Protocol(format!(
                        "unexpected response tag {other:?}"
                    )))
                }
            }
        }
    }

    /// If the server has closed our socket (refusal-then-close), dial
    /// the remembered peer again. Failures are left for the next
    /// `send_query` to surface as I/O errors.
    fn reconnect_if_closed(&mut self, force: bool) {
        let Some(peer) = self.peer else { return };
        let closed = force || {
            // A zero-byte peek distinguishes "closed" (Ok(0)) from
            // "open, nothing buffered" (WouldBlock under a nonblocking
            // probe).
            let _ = self.stream.set_nonblocking(true);
            let mut probe = [0u8; 1];
            let r = self.stream.peek(&mut probe);
            let _ = self.stream.set_nonblocking(false);
            matches!(r, Ok(0)) || matches!(&r, Err(e) if e.kind() != std::io::ErrorKind::WouldBlock)
        };
        if closed {
            if let Ok(stream) = TcpStream::connect(peer) {
                let _ = stream.set_nodelay(true);
                self.stream = stream;
            }
        }
    }
}

//! The wire protocol: length-prefixed frames over a byte stream.
//!
//! Every frame is `u32` little-endian payload length followed by the
//! payload; payload byte 0 is the frame tag. A request is one
//! [`REQ_QUERY`] frame carrying SQL text. A response is either a single
//! [`RESP_ERR`] frame, or a [`RESP_SCHEMA`] frame, zero or more
//! [`RESP_ROWS`] frames (so a big result streams in bounded chunks
//! instead of one giant allocation), and a terminating [`RESP_DONE`].
//!
//! Frames are capped at [`MAX_FRAME`] bytes: an oversized length prefix
//! is a typed [`DbError::Protocol`] error, not an allocation. Errors
//! travel as a one-byte kind code plus an `i64` auxiliary (the statement
//! id for `NoSuchStatement`) plus the message, so the client rebuilds
//! the same typed [`DbError`] the engine raised — `KILL` of a finished
//! statement comes back as `NoSuchStatement`, admission overload as
//! `ServerBusy`, and so on, with the connection surviving all of them.

use std::io::{Read, Write};
use std::sync::Arc;

use seqdb_engine::QueryResult;
use seqdb_types::{Column, DataType, DbError, Result, Row, Schema, Value};

/// Hard cap on one frame's payload. Bigger results are chunked by the
/// sender; a bigger *claimed* length is a protocol violation.
pub const MAX_FRAME: usize = 32 << 20;

/// Rows per [`RESP_ROWS`] chunk written by [`write_result`].
pub const ROWS_PER_FRAME: usize = 512;

/// Client → server: execute the SQL text in the payload.
pub const REQ_QUERY: u8 = 0x01;
/// Server → client: result schema (column names/types/nullability).
pub const RESP_SCHEMA: u8 = 0x81;
/// Server → client: a chunk of result rows.
pub const RESP_ROWS: u8 = 0x82;
/// Server → client: statement finished; carries the DML affected count.
pub const RESP_DONE: u8 = 0x83;
/// Server → client: the statement failed with a typed [`DbError`].
pub const RESP_ERR: u8 = 0xE1;

// -------------------------------------------------------------------
// Frame I/O
// -------------------------------------------------------------------

/// Write one frame (length prefix + payload). `Write::write_all` loops
/// over partial writes, so injected short writes only slow this down.
pub fn write_frame<W: Write + ?Sized>(w: &mut W, payload: &[u8]) -> Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(DbError::Protocol(format!(
            "outgoing frame of {} bytes exceeds the {} byte cap",
            payload.len(),
            MAX_FRAME
        )));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// Read one frame, blocking. Returns `Ok(None)` on a clean EOF at a
/// frame boundary (the peer closed between requests); EOF mid-frame is
/// a typed [`DbError::Protocol`] error.
pub fn read_frame(r: &mut impl Read) -> Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    match read_exact_or_eof(r, &mut len)? {
        ReadOutcome::Eof => return Ok(None),
        ReadOutcome::Partial => {
            return Err(DbError::Protocol(
                "connection closed mid frame header".into(),
            ))
        }
        ReadOutcome::Full => {}
    }
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(DbError::Protocol(format!(
            "incoming frame claims {n} bytes; cap is {MAX_FRAME}"
        )));
    }
    if n == 0 {
        return Err(DbError::Protocol("empty frame (no tag byte)".into()));
    }
    let mut payload = vec![0u8; n];
    match read_exact_or_eof(r, &mut payload)? {
        ReadOutcome::Full => Ok(Some(payload)),
        _ => Err(DbError::Protocol(format!(
            "connection closed mid frame; wanted {n} bytes"
        ))),
    }
}

enum ReadOutcome {
    Full,
    /// EOF before the first byte.
    Eof,
    /// EOF after some bytes.
    Partial,
}

/// `read_exact` that distinguishes a clean EOF from a truncation and
/// rides out injected short reads.
fn read_exact_or_eof(r: &mut impl Read, buf: &mut [u8]) -> Result<ReadOutcome> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) if filled == 0 => return Ok(ReadOutcome::Eof),
            Ok(0) => return Ok(ReadOutcome::Partial),
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(DbError::io(e)),
        }
    }
    Ok(ReadOutcome::Full)
}

// -------------------------------------------------------------------
// Payload encoding
// -------------------------------------------------------------------

/// Little-endian reader over a received payload with typed truncation
/// errors.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(DbError::Protocol(format!(
                "truncated payload: wanted {n} bytes at offset {} of {}",
                self.pos,
                self.buf.len()
            ))),
        }
    }
    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> Result<u16> {
        let b = self.take(2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }
    fn u32(&mut self) -> Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }
    fn u64(&mut self) -> Result<u64> {
        let b = self.take(8)?;
        let mut a = [0u8; 8];
        a.copy_from_slice(b);
        Ok(u64::from_le_bytes(a))
    }
    fn str(&mut self) -> Result<&'a str> {
        let n = self.u32()? as usize;
        std::str::from_utf8(self.take(n)?)
            .map_err(|_| DbError::Protocol("string payload is not UTF-8".into()))
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

/// Expect `tag` as payload byte 0 and return the rest.
fn expect_tag<'a>(payload: &'a [u8], tag: u8, what: &str) -> Result<&'a [u8]> {
    match payload.first() {
        Some(&t) if t == tag => Ok(&payload[1..]),
        Some(&t) => Err(DbError::Protocol(format!(
            "expected {what} frame (tag {tag:#04x}), got tag {t:#04x}"
        ))),
        None => Err(DbError::Protocol(format!("empty {what} frame"))),
    }
}

pub fn encode_query(sql: &str) -> Vec<u8> {
    let mut out = vec![REQ_QUERY];
    out.extend_from_slice(sql.as_bytes());
    out
}

pub fn decode_query(payload: &[u8]) -> Result<String> {
    let body = expect_tag(payload, REQ_QUERY, "query")?;
    String::from_utf8(body.to_vec())
        .map_err(|_| DbError::Protocol("query text is not UTF-8".into()))
}

fn dtype_code(d: DataType) -> u8 {
    match d {
        DataType::Bool => 0,
        DataType::Int => 1,
        DataType::Float => 2,
        DataType::Text => 3,
        DataType::Bytes => 4,
        DataType::Guid => 5,
    }
}

fn dtype_from(code: u8) -> Result<DataType> {
    Ok(match code {
        0 => DataType::Bool,
        1 => DataType::Int,
        2 => DataType::Float,
        3 => DataType::Text,
        4 => DataType::Bytes,
        5 => DataType::Guid,
        other => return Err(DbError::Protocol(format!("unknown data type code {other}"))),
    })
}

pub fn encode_schema(schema: &Schema) -> Vec<u8> {
    let mut out = vec![RESP_SCHEMA];
    out.extend_from_slice(&(schema.columns().len() as u16).to_le_bytes());
    for c in schema.columns() {
        put_str(&mut out, &c.name);
        out.push(dtype_code(c.dtype));
        out.push(c.nullable as u8);
    }
    out
}

pub fn decode_schema(payload: &[u8]) -> Result<Schema> {
    let mut c = Cursor::new(expect_tag(payload, RESP_SCHEMA, "schema")?);
    let n = c.u16()? as usize;
    let mut cols = Vec::with_capacity(n);
    for _ in 0..n {
        let name = c.str()?.to_string();
        let dtype = dtype_from(c.u8()?)?;
        let nullable = c.u8()? != 0;
        let mut col = Column::new(name, dtype);
        if !nullable {
            col = col.not_null();
        }
        cols.push(col);
    }
    Ok(Schema::new(cols))
}

fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::Int(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(f) => {
            out.push(3);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Text(s) => {
            out.push(4);
            put_str(out, s);
        }
        Value::Bytes(b) => {
            out.push(5);
            out.extend_from_slice(&(b.len() as u32).to_le_bytes());
            out.extend_from_slice(b);
        }
        Value::Guid(g) => {
            out.push(6);
            out.extend_from_slice(&g.to_le_bytes());
        }
    }
}

fn get_value(c: &mut Cursor<'_>) -> Result<Value> {
    Ok(match c.u8()? {
        0 => Value::Null,
        1 => Value::Bool(c.u8()? != 0),
        2 => Value::Int(c.u64()? as i64),
        3 => Value::Float(f64::from_bits(c.u64()?)),
        4 => Value::text(c.str()?),
        5 => {
            let n = c.u32()? as usize;
            Value::Bytes(Arc::from(c.take(n)?))
        }
        6 => {
            let b = c.take(16)?;
            let mut a = [0u8; 16];
            a.copy_from_slice(b);
            Value::Guid(u128::from_le_bytes(a))
        }
        other => return Err(DbError::Protocol(format!("unknown value tag {other}"))),
    })
}

pub fn encode_rows(rows: &[Row]) -> Vec<u8> {
    let mut out = vec![RESP_ROWS];
    out.extend_from_slice(&(rows.len() as u32).to_le_bytes());
    for row in rows {
        out.extend_from_slice(&(row.len() as u16).to_le_bytes());
        for v in row.values() {
            put_value(&mut out, v);
        }
    }
    out
}

pub fn decode_rows(payload: &[u8]) -> Result<Vec<Row>> {
    let mut c = Cursor::new(expect_tag(payload, RESP_ROWS, "rows")?);
    let n = c.u32()? as usize;
    let mut rows = Vec::with_capacity(n.min(MAX_FRAME / 2));
    for _ in 0..n {
        let w = c.u16()? as usize;
        let mut vals = Vec::with_capacity(w);
        for _ in 0..w {
            vals.push(get_value(&mut c)?);
        }
        rows.push(Row::new(vals));
    }
    if !c.done() {
        return Err(DbError::Protocol("trailing bytes after last row".into()));
    }
    Ok(rows)
}

pub fn encode_done(affected: u64) -> Vec<u8> {
    let mut out = vec![RESP_DONE];
    out.extend_from_slice(&affected.to_le_bytes());
    out
}

pub fn decode_done(payload: &[u8]) -> Result<u64> {
    let mut c = Cursor::new(expect_tag(payload, RESP_DONE, "done")?);
    c.u64()
}

/// Stable kind codes for every [`DbError`] variant, so a typed error
/// survives the wire round trip.
fn error_code(e: &DbError) -> (u8, i64, String) {
    match e {
        DbError::Io(m) => (1, 0, m.clone()),
        DbError::Parse(m) => (2, 0, m.clone()),
        DbError::Schema(m) => (3, 0, m.clone()),
        DbError::Plan(m) => (4, 0, m.clone()),
        DbError::Execution(m) => (5, 0, m.clone()),
        DbError::Storage(m) => (6, 0, m.clone()),
        DbError::Corruption(m) => (7, 0, m.clone()),
        DbError::Constraint(m) => (8, 0, m.clone()),
        DbError::NotFound(m) => (9, 0, m.clone()),
        DbError::Unsupported(m) => (10, 0, m.clone()),
        DbError::InvalidData(m) => (11, 0, m.clone()),
        DbError::ResourceExhausted(m) => (12, 0, m.clone()),
        DbError::Timeout(m) => (13, 0, m.clone()),
        DbError::Cancelled(m) => (14, 0, m.clone()),
        DbError::AdmissionTimeout(m) => (15, 0, m.clone()),
        DbError::UdxPanic { name, payload } => (16, 0, format!("{name}\u{0}{payload}")),
        DbError::NoSuchStatement(id) => (17, *id, String::new()),
        DbError::ServerBusy(m) => (18, 0, m.clone()),
        DbError::ServerDraining(m) => (19, 0, m.clone()),
        DbError::Protocol(m) => (20, 0, m.clone()),
        // The aux carries the page, the message the object name.
        DbError::Quarantined { object, page } => (21, *page as i64, object.clone()),
        DbError::DiskFull(m) => (22, 0, m.clone()),
        DbError::BackupCorrupt { object } => (23, 0, object.clone()),
    }
}

pub fn encode_error(e: &DbError) -> Vec<u8> {
    let (code, aux, msg) = error_code(e);
    let mut out = vec![RESP_ERR, code];
    out.extend_from_slice(&aux.to_le_bytes());
    out.extend_from_slice(msg.as_bytes());
    out
}

/// Decode a [`RESP_ERR`] payload back into the typed [`DbError`] it
/// carries (returned as `Ok` — the *caller* decides it is an error).
pub fn decode_error(payload: &[u8]) -> Result<DbError> {
    let body = expect_tag(payload, RESP_ERR, "error")?;
    let mut c = Cursor::new(body);
    let code = c.u8()?;
    let aux = c.u64()? as i64;
    let msg = std::str::from_utf8(c.take(body.len() - 9)?)
        .map_err(|_| DbError::Protocol("error message is not UTF-8".into()))?
        .to_string();
    Ok(match code {
        1 => DbError::Io(msg),
        2 => DbError::Parse(msg),
        3 => DbError::Schema(msg),
        4 => DbError::Plan(msg),
        5 => DbError::Execution(msg),
        6 => DbError::Storage(msg),
        7 => DbError::Corruption(msg),
        8 => DbError::Constraint(msg),
        9 => DbError::NotFound(msg),
        10 => DbError::Unsupported(msg),
        11 => DbError::InvalidData(msg),
        12 => DbError::ResourceExhausted(msg),
        13 => DbError::Timeout(msg),
        14 => DbError::Cancelled(msg),
        15 => DbError::AdmissionTimeout(msg),
        16 => {
            let (name, payload) = msg.split_once('\u{0}').unwrap_or((msg.as_str(), ""));
            DbError::UdxPanic {
                name: name.to_string(),
                payload: payload.to_string(),
            }
        }
        17 => DbError::NoSuchStatement(aux),
        18 => DbError::ServerBusy(msg),
        19 => DbError::ServerDraining(msg),
        20 => DbError::Protocol(msg),
        21 => DbError::Quarantined {
            object: msg,
            page: aux as u64,
        },
        22 => DbError::DiskFull(msg),
        23 => DbError::BackupCorrupt { object: msg },
        other => {
            return Err(DbError::Protocol(format!(
                "unknown error kind code {other}"
            )))
        }
    })
}

/// Write a whole successful result: schema, row chunks of
/// [`ROWS_PER_FRAME`], done. Chunking bounds both the peak frame size
/// and how much a slow reader can force the server to buffer beyond
/// the result the governor already admitted.
pub fn write_result<W: Write + ?Sized>(w: &mut W, res: &QueryResult) -> Result<()> {
    write_frame(w, &encode_schema(&res.schema))?;
    for chunk in res.rows.chunks(ROWS_PER_FRAME) {
        write_frame(w, &encode_rows(chunk))?;
    }
    write_frame(w, &encode_done(res.affected))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_and_eof_forms() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"\x01hello").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap().unwrap(), b"\x01hello");
        // Clean EOF at a boundary is None, not an error.
        assert!(read_frame(&mut r).unwrap().is_none());
        // EOF mid-frame is a protocol error.
        let mut truncated = &buf[..buf.len() - 2];
        let err = read_frame(&mut truncated).unwrap_err();
        assert!(matches!(err, DbError::Protocol(_)), "{err}");
    }

    #[test]
    fn oversized_frame_is_rejected_without_allocating() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(u32::MAX).to_le_bytes());
        let err = read_frame(&mut &buf[..]).unwrap_err();
        assert!(err.to_string().contains("cap"), "{err}");
    }

    #[test]
    fn values_of_every_type_roundtrip() {
        let row = Row::new(vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(2.5),
            Value::text("ACGT"),
            Value::Bytes(Arc::from(&b"\x00\xff"[..])),
            Value::Guid(0x0123_4567_89ab_cdef_0123_4567_89ab_cdef),
        ]);
        let rows = decode_rows(&encode_rows(std::slice::from_ref(&row))).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0], row);
    }

    #[test]
    fn schema_roundtrips_names_types_nullability() {
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("seq", DataType::Text),
            Column::new("blob", DataType::Guid),
        ]);
        let back = decode_schema(&encode_schema(&schema)).unwrap();
        assert_eq!(back.columns().len(), 3);
        assert_eq!(back.columns()[0].name, "id");
        assert!(!back.columns()[0].nullable);
        assert!(back.columns()[1].nullable);
        assert_eq!(back.columns()[2].dtype, DataType::Guid);
    }

    #[test]
    fn typed_errors_survive_the_wire() {
        for e in [
            DbError::NoSuchStatement(99),
            DbError::ServerBusy("queue full".into()),
            DbError::ServerDraining("bye".into()),
            DbError::Cancelled("killed".into()),
            DbError::AdmissionTimeout("pool".into()),
            DbError::Protocol("bad tag".into()),
            DbError::UdxPanic {
                name: "F".into(),
                payload: "boom".into(),
            },
            DbError::Quarantined {
                object: "reads".into(),
                page: 42,
            },
            DbError::DiskFull("no space left on device".into()),
            DbError::BackupCorrupt {
                object: "page 17".into(),
            },
        ] {
            let back = decode_error(&encode_error(&e)).unwrap();
            assert_eq!(back, e);
        }
    }

    #[test]
    fn truncated_payloads_are_protocol_errors() {
        let enc = encode_rows(&[Row::new(vec![Value::text("hello world")])]);
        for cut in 2..enc.len() {
            let err = decode_rows(&enc[..cut]).unwrap_err();
            assert!(matches!(err, DbError::Protocol(_)), "cut {cut}: {err}");
        }
        assert!(decode_query(&[RESP_DONE]).is_err(), "wrong tag rejected");
    }
}

use std::fmt;
use std::sync::Arc;

use crate::{DataType, DbError, Result, Row, Value};

/// A column definition: name, type, nullability and whether the column's
/// BLOB payload is stored as a FileStream (paper §2.3.6) rather than inline
/// in the row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    pub name: String,
    pub dtype: DataType,
    pub nullable: bool,
    /// `VARBINARY(MAX) FILESTREAM`: the row stores a GUID reference; the
    /// payload lives as a file in the database-managed blob directory.
    pub filestream: bool,
}

impl Column {
    pub fn new(name: impl Into<String>, dtype: DataType) -> Column {
        Column {
            name: name.into(),
            dtype,
            nullable: true,
            filestream: false,
        }
    }

    pub fn not_null(mut self) -> Column {
        self.nullable = false;
        self
    }

    pub fn filestream(mut self) -> Column {
        self.filestream = true;
        self
    }
}

/// An ordered set of columns. Wrapped in `Arc` internally everywhere it is
/// shared between operators.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

pub type SchemaRef = Arc<Schema>;

impl Schema {
    pub fn new(columns: Vec<Column>) -> Schema {
        Schema { columns }
    }

    pub fn empty() -> Schema {
        Schema { columns: vec![] }
    }

    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Case-insensitive column lookup (T-SQL identifiers are
    /// case-insensitive).
    pub fn index_of(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    /// Like [`Schema::index_of`] but returns a schema error naming the
    /// missing column.
    pub fn resolve(&self, name: &str) -> Result<usize> {
        self.index_of(name).ok_or_else(|| {
            DbError::Schema(format!(
                "column '{name}' not found (have: {})",
                self.columns
                    .iter()
                    .map(|c| c.name.as_str())
                    .collect::<Vec<_>>()
                    .join(", ")
            ))
        })
    }

    /// Concatenate two schemas (joins, CROSS APPLY).
    pub fn concat(&self, other: &Schema) -> Schema {
        let mut columns = self.columns.clone();
        columns.extend(other.columns.iter().cloned());
        Schema { columns }
    }

    /// Schema produced by projecting onto `indices`.
    pub fn project(&self, indices: &[usize]) -> Schema {
        Schema {
            columns: indices.iter().map(|&i| self.columns[i].clone()).collect(),
        }
    }

    /// Validate a row against this schema: arity, types and NOT NULL.
    pub fn check_row(&self, row: &Row) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(DbError::Schema(format!(
                "row has {} values, table has {} columns",
                row.len(),
                self.columns.len()
            )));
        }
        for (v, c) in row.values().iter().zip(&self.columns) {
            if v.is_null() {
                if !c.nullable {
                    return Err(DbError::Constraint(format!(
                        "NULL in NOT NULL column '{}'",
                        c.name
                    )));
                }
                continue;
            }
            // FILESTREAM columns store a GUID reference to the blob; both
            // the GUID and (small, inline) raw bytes are acceptable.
            if c.filestream && matches!(v, Value::Guid(_)) {
                continue;
            }
            if !v.matches_type(c.dtype) {
                return Err(DbError::Schema(format!(
                    "value of type {} does not fit column '{}' of type {}",
                    v.type_name(),
                    c.name,
                    c.dtype
                )));
            }
        }
        Ok(())
    }

    /// Coerce integer literals into FLOAT columns in-place. Applied on
    /// insert so stored rows always carry the declared type.
    pub fn coerce_row(&self, row: &mut Row) {
        for (v, c) in row.0.iter_mut().zip(&self.columns) {
            if c.dtype == DataType::Float {
                if let Value::Int(i) = v {
                    *v = Value::Float(*i as f64);
                }
            }
        }
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.columns.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", c.name, c.dtype)?;
            if !c.nullable {
                write!(f, " NOT NULL")?;
            }
            if c.filestream {
                write!(f, " FILESTREAM")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Column::new("id", DataType::Int).not_null(),
            Column::new("seq", DataType::Text),
            Column::new("reads", DataType::Bytes).filestream(),
        ])
    }

    #[test]
    fn lookup_is_case_insensitive() {
        let s = sample();
        assert_eq!(s.index_of("SEQ"), Some(1));
        assert_eq!(s.index_of("Id"), Some(0));
        assert!(s.resolve("missing").is_err());
    }

    #[test]
    fn check_row_rejects_bad_arity_type_and_null() {
        let s = sample();
        let ok = Row::new(vec![Value::Int(1), Value::text("ACGT"), Value::bytes(b"x")]);
        assert!(s.check_row(&ok).is_ok());

        let short = Row::new(vec![Value::Int(1)]);
        assert!(s.check_row(&short).is_err());

        let bad_type = Row::new(vec![Value::text("x"), Value::Null, Value::Null]);
        assert!(matches!(s.check_row(&bad_type), Err(DbError::Schema(_))));

        let null_pk = Row::new(vec![Value::Null, Value::Null, Value::Null]);
        assert!(matches!(s.check_row(&null_pk), Err(DbError::Constraint(_))));
    }

    #[test]
    fn coerce_int_literal_into_float_column() {
        let s = Schema::new(vec![Column::new("x", DataType::Float)]);
        let mut r = Row::new(vec![Value::Int(3)]);
        s.coerce_row(&mut r);
        assert_eq!(r[0], Value::Float(3.0));
    }

    #[test]
    fn display_mentions_filestream() {
        let s = sample();
        let d = s.to_string();
        assert!(d.contains("reads VARBINARY FILESTREAM"));
        assert!(d.contains("id BIGINT NOT NULL"));
    }
}

use std::fmt;

/// Scalar data types of the seqdb engine.
///
/// This mirrors the subset of the SQL Server scalar type system the paper's
/// prototype uses: integers, floats, (n)varchar, varbinary (including the
/// `FILESTREAM` flavour, which is a storage attribute on the column, see
/// [`crate::Column::filestream`]), `uniqueidentifier` and bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// Boolean (`BIT`).
    Bool,
    /// 64-bit signed integer (`INT`/`BIGINT` are collapsed into one type).
    Int,
    /// 64-bit IEEE float (`FLOAT`).
    Float,
    /// UTF-8 string (`VARCHAR`/`NVARCHAR`).
    Text,
    /// Byte string (`VARBINARY(MAX)`), possibly stored as a FileStream.
    Bytes,
    /// 128-bit GUID (`UNIQUEIDENTIFIER`), used as FileStream row ids.
    Guid,
}

impl DataType {
    /// SQL-facing name used in error messages and `EXPLAIN` output.
    pub fn sql_name(&self) -> &'static str {
        match self {
            DataType::Bool => "BIT",
            DataType::Int => "BIGINT",
            DataType::Float => "FLOAT",
            DataType::Text => "VARCHAR",
            DataType::Bytes => "VARBINARY",
            DataType::Guid => "UNIQUEIDENTIFIER",
        }
    }

    /// Parse a SQL type name (as produced by the seqdb-sql lexer, already
    /// uppercased) into a `DataType`. Length arguments such as
    /// `VARCHAR(50)` are stripped by the parser before this is called.
    pub fn from_sql_name(name: &str) -> Option<DataType> {
        match name {
            "BIT" | "BOOL" | "BOOLEAN" => Some(DataType::Bool),
            "INT" | "INTEGER" | "BIGINT" | "SMALLINT" | "TINYINT" => Some(DataType::Int),
            "FLOAT" | "REAL" | "DOUBLE" => Some(DataType::Float),
            "VARCHAR" | "NVARCHAR" | "CHAR" | "NCHAR" | "TEXT" => Some(DataType::Text),
            "VARBINARY" | "BINARY" | "BLOB" => Some(DataType::Bytes),
            "UNIQUEIDENTIFIER" | "GUID" => Some(DataType::Guid),
            _ => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.sql_name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_names_roundtrip() {
        for dt in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Bytes,
            DataType::Guid,
        ] {
            assert_eq!(DataType::from_sql_name(dt.sql_name()), Some(dt));
        }
    }

    #[test]
    fn aliases_parse() {
        assert_eq!(DataType::from_sql_name("INT"), Some(DataType::Int));
        assert_eq!(DataType::from_sql_name("NVARCHAR"), Some(DataType::Text));
        assert_eq!(DataType::from_sql_name("GEOGRAPHY"), None);
    }
}

use std::fmt;
use std::ops::Index;

use crate::Value;

/// A tuple of values produced and consumed by query operators.
///
/// Rows are positional; names live in the accompanying [`crate::Schema`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Row(pub Vec<Value>);

impl Row {
    pub fn new(values: Vec<Value>) -> Row {
        Row(values)
    }

    pub fn empty() -> Row {
        Row(Vec::new())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn get(&self, i: usize) -> Option<&Value> {
        self.0.get(i)
    }

    pub fn values(&self) -> &[Value] {
        &self.0
    }

    pub fn into_values(self) -> Vec<Value> {
        self.0
    }

    pub fn push(&mut self, v: Value) {
        self.0.push(v);
    }

    /// Concatenate two rows (used by joins and CROSS APPLY).
    pub fn concat(&self, other: &Row) -> Row {
        let mut vals = Vec::with_capacity(self.len() + other.len());
        vals.extend_from_slice(&self.0);
        vals.extend_from_slice(&other.0);
        Row(vals)
    }

    /// Project the row onto the given column positions.
    pub fn project(&self, indices: &[usize]) -> Row {
        Row(indices.iter().map(|&i| self.0[i].clone()).collect())
    }

    /// Approximate in-memory footprint, used for spill accounting.
    pub fn size_bytes(&self) -> usize {
        self.0.iter().map(Value::size_bytes).sum::<usize>() + 8
    }
}

impl Index<usize> for Row {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        &self.0[i]
    }
}

impl From<Vec<Value>> for Row {
    fn from(v: Vec<Value>) -> Row {
        Row(v)
    }
}

impl FromIterator<Value> for Row {
    fn from_iter<T: IntoIterator<Item = Value>>(iter: T) -> Row {
        Row(iter.into_iter().collect())
    }
}

impl fmt::Display for Row {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " | ")?;
            }
            write!(f, "{v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(vals: &[i64]) -> Row {
        vals.iter().map(|&i| Value::Int(i)).collect()
    }

    #[test]
    fn concat_and_project() {
        let a = row(&[1, 2]);
        let b = row(&[3]);
        let c = a.concat(&b);
        assert_eq!(c.len(), 3);
        assert_eq!(c[2], Value::Int(3));
        let p = c.project(&[2, 0]);
        assert_eq!(p.values(), &[Value::Int(3), Value::Int(1)]);
    }

    #[test]
    fn display_pipes_values() {
        let r = Row::new(vec![Value::Int(1), Value::text("ACGT"), Value::Null]);
        assert_eq!(r.to_string(), "1 | ACGT | NULL");
    }
}

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::{DataType, DbError, Result};

/// A single scalar value flowing through the engine.
///
/// `Text` and `Bytes` use [`Arc`] payloads so that rows can be cloned
/// cheaply as they move between operators — short-read sequences are copied
/// many times through a plan and the paper explicitly calls out the cost of
/// copying sequence data between the UDF sandbox and the query engine.
#[derive(Debug, Clone)]
pub enum Value {
    /// SQL NULL. Compares before every non-null value (SQL Server `ORDER BY`
    /// semantics) and equal to itself for grouping purposes.
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Text(Arc<str>),
    Bytes(Arc<[u8]>),
    /// 128-bit GUID, printed in the canonical 8-4-4-4-12 hex form.
    Guid(u128),
}

impl Value {
    /// Construct a text value from anything string-like.
    pub fn text(s: impl AsRef<str>) -> Value {
        Value::Text(Arc::from(s.as_ref()))
    }

    /// Construct a bytes value.
    pub fn bytes(b: impl AsRef<[u8]>) -> Value {
        Value::Bytes(Arc::from(b.as_ref()))
    }

    /// The data type of this value, `None` for NULL (NULL is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Bytes(_) => Some(DataType::Bytes),
            Value::Guid(_) => Some(DataType::Guid),
        }
    }

    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Extract an `i64`, coercing from `Bool`. Errors on other types.
    pub fn as_int(&self) -> Result<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Bool(b) => Ok(*b as i64),
            other => Err(DbError::Execution(format!(
                "expected BIGINT, got {}",
                other.type_name()
            ))),
        }
    }

    /// Extract an `f64`, coercing from `Int`.
    pub fn as_float(&self) -> Result<f64> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DbError::Execution(format!(
                "expected FLOAT, got {}",
                other.type_name()
            ))),
        }
    }

    pub fn as_bool(&self) -> Result<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            Value::Int(i) => Ok(*i != 0),
            other => Err(DbError::Execution(format!(
                "expected BIT, got {}",
                other.type_name()
            ))),
        }
    }

    pub fn as_text(&self) -> Result<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(DbError::Execution(format!(
                "expected VARCHAR, got {}",
                other.type_name()
            ))),
        }
    }

    pub fn as_bytes(&self) -> Result<&[u8]> {
        match self {
            Value::Bytes(b) => Ok(b),
            other => Err(DbError::Execution(format!(
                "expected VARBINARY, got {}",
                other.type_name()
            ))),
        }
    }

    pub fn as_guid(&self) -> Result<u128> {
        match self {
            Value::Guid(g) => Ok(*g),
            other => Err(DbError::Execution(format!(
                "expected UNIQUEIDENTIFIER, got {}",
                other.type_name()
            ))),
        }
    }

    /// Human-readable name of the value's type (`"NULL"` for NULL).
    pub fn type_name(&self) -> &'static str {
        match self.data_type() {
            None => "NULL",
            Some(dt) => dt.sql_name(),
        }
    }

    /// Whether this value can be stored in a column of type `dt`.
    /// NULL matches every type; `Int` is accepted by `Float` columns.
    pub fn matches_type(&self, dt: DataType) -> bool {
        match (self, dt) {
            (Value::Null, _) => true,
            (Value::Int(_), DataType::Float) => true,
            (v, dt) => v.data_type() == Some(dt),
        }
    }

    /// Approximate in-memory footprint in bytes, used by the planner's
    /// memory-grant accounting and the spill bookkeeping of external sort.
    pub fn size_bytes(&self) -> usize {
        match self {
            Value::Null => 1,
            Value::Bool(_) => 1,
            Value::Int(_) => 8,
            Value::Float(_) => 8,
            Value::Text(s) => s.len() + 4,
            Value::Bytes(b) => b.len() + 4,
            Value::Guid(_) => 16,
        }
    }

    /// Total ordering used by ORDER BY, merge join and B+-tree keys:
    /// NULL < Bool < Int/Float (numeric order, mixed) < Text < Bytes < Guid.
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        fn rank(v: &Value) -> u8 {
            match v {
                Null => 0,
                Bool(_) => 1,
                Int(_) | Float(_) => 2,
                Text(_) => 3,
                Bytes(_) => 4,
                Guid(_) => 5,
            }
        }
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.as_bytes().cmp(b.as_bytes()),
            (Bytes(a), Bytes(b)) => a.cmp(b),
            (Guid(a), Guid(b)) => a.cmp(b),
            (a, b) => rank(a).cmp(&rank(b)),
        }
    }

    /// SQL equality (`=`): NULL = anything is NULL (returned as `None`).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            None
        } else {
            Some(self.total_cmp(other) == Ordering::Equal)
        }
    }

    /// Format a GUID in canonical form.
    pub fn guid_string(g: u128) -> String {
        let b = g.to_be_bytes();
        format!(
            "{:02x}{:02x}{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}-{:02x}{:02x}{:02x}{:02x}{:02x}{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7], b[8], b[9], b[10], b[11], b[12], b[13], b[14], b[15]
        )
    }
}

/// Equality for grouping/hashing: NULLs group together, floats compare by
/// bit pattern of their `total_cmp` class (so `NaN == NaN` in GROUP BY,
/// matching SQL semantics of treating NULL/NaN as one group).
impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float must hash identically when numerically equal,
            // because total_cmp treats them as one numeric domain.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Bytes(b) => {
                4u8.hash(state);
                b.hash(state);
            }
            Value::Guid(g) => {
                5u8.hash(state);
                g.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Bool(b) => write!(f, "{}", if *b { 1 } else { 0 }),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Bytes(b) => write!(f, "0x{}", hex(b)),
            Value::Guid(g) => write!(f, "{}", Value::guid_string(*g)),
        }
    }
}

fn hex(b: &[u8]) -> String {
    // BLOB display is truncated: nobody wants a 500 MB FileStream hex dump
    // in query output.
    let shown = &b[..b.len().min(16)];
    let mut s = String::with_capacity(shown.len() * 2 + 3);
    for byte in shown {
        s.push_str(&format!("{byte:02x}"));
    }
    if b.len() > 16 {
        s.push_str("...");
    }
    s
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(Arc::from(v.as_str()))
    }
}
impl From<Vec<u8>> for Value {
    fn from(v: Vec<u8>) -> Self {
        Value::Bytes(Arc::from(v.as_slice()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        let mut vals = [Value::Int(3), Value::Null, Value::Int(-1)];
        vals.sort_by(|a, b| a.total_cmp(b));
        assert!(vals[0].is_null());
        assert_eq!(vals[1], Value::Int(-1));
    }

    #[test]
    fn mixed_numeric_comparison() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.0).total_cmp(&Value::Int(2)),
            Ordering::Greater
        );
    }

    #[test]
    fn sql_eq_null_semantics() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::text("a").sql_eq(&Value::text("b")), Some(false));
    }

    #[test]
    fn int_and_float_hash_alike_when_equal() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
        assert_eq!(Value::Int(7), Value::Float(7.0));
    }

    #[test]
    fn guid_formats_canonically() {
        let g = 0x00112233_4455_6677_8899_aabbccddeeffu128;
        assert_eq!(
            Value::guid_string(g),
            "00112233-4455-6677-8899-aabbccddeeff"
        );
    }

    #[test]
    fn coercions() {
        assert_eq!(Value::Bool(true).as_int().unwrap(), 1);
        assert_eq!(Value::Int(4).as_float().unwrap(), 4.0);
        assert!(Value::text("x").as_int().is_err());
        assert!(Value::Int(5).matches_type(DataType::Float));
        assert!(Value::Null.matches_type(DataType::Guid));
        assert!(!Value::text("x").matches_type(DataType::Int));
    }

    #[test]
    fn display_truncates_blobs() {
        let v = Value::bytes(vec![0xabu8; 64]);
        let s = v.to_string();
        assert!(s.starts_with("0xabab"));
        assert!(s.ends_with("..."));
    }
}

//! Fundamental value, schema and error types shared by every seqdb crate.
//!
//! seqdb is a reproduction of *Röhm & Blakeley, "Data Management for
//! High-Throughput Genomics" (CIDR 2009)*. This crate defines the scalar
//! type system of the engine (the analogue of SQL Server's scalar types in
//! the paper), rows, table schemas and the common error type.

mod datatype;
mod error;
mod row;
mod schema;
mod value;

pub use datatype::DataType;
pub use error::{DbError, Result};
pub use row::Row;
pub use schema::{Column, Schema, SchemaRef};
pub use value::Value;

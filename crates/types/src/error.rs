use std::fmt;

/// Convenience alias used across all seqdb crates.
pub type Result<T> = std::result::Result<T, DbError>;

/// The error type shared by every layer of seqdb.
///
/// Variants are grouped by the subsystem that raises them so that callers
/// (tests, the SQL shell, the benchmark harness) can report precise causes
/// without each crate defining its own error enum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DbError {
    /// Underlying I/O failure. The `std::io::Error` is stringified because
    /// `io::Error` is neither `Clone` nor `PartialEq`.
    Io(String),
    /// SQL text could not be tokenized or parsed.
    Parse(String),
    /// A statement referenced a missing table/column/function or violated
    /// schema rules (e.g. inserting a `Text` into an `Int` column).
    Schema(String),
    /// The planner could not produce a plan for a (parsed, bound) statement.
    Plan(String),
    /// Runtime failure during query execution (type mismatch discovered at
    /// run time, user-defined function error, arithmetic error, ...).
    Execution(String),
    /// Storage-layer invariant violation (page overflow, corrupt record,
    /// missing blob, ...).
    Storage(String),
    /// On-disk data failed an integrity check (page checksum mismatch, bad
    /// magic, torn WAL record, ...). Distinct from [`DbError::Storage`] so
    /// recovery code can treat "the bytes are wrong" differently from "the
    /// operation is wrong".
    Corruption(String),
    /// Primary-key or not-null constraint violation.
    Constraint(String),
    /// A named object (table, index, blob, function) does not exist.
    NotFound(String),
    /// Valid input requesting a feature seqdb does not implement.
    Unsupported(String),
    /// Malformed genomic input data (bad FASTQ record, invalid base, ...).
    InvalidData(String),
    /// A query exceeded its memory budget and the operator that hit the
    /// limit cannot degrade by spilling. The query fails; the process and
    /// every other query survive.
    ResourceExhausted(String),
    /// A query ran past its wall-clock timeout and was aborted at the next
    /// cooperative check.
    Timeout(String),
    /// A query was cancelled (by the user or by a sibling worker that
    /// already failed) and noticed at the next cooperative check.
    Cancelled(String),
    /// The admission controller could not grant the query a reservation
    /// from the global memory pool within its bounded wait: the server is
    /// saturated and the query was rejected *before* execution rather than
    /// oversubscribing memory.
    AdmissionTimeout(String),
    /// A user-defined function / table function / aggregate panicked. The
    /// panic was caught at the invocation boundary; only the invoking query
    /// fails. The payload is stringified because panic payloads are neither
    /// `Clone` nor `PartialEq`.
    UdxPanic { name: String, payload: String },
    /// `KILL <id>` named a statement that does not exist or already
    /// finished. Statement ids are never reused, so this is always a
    /// clean miss — the kill raced with completion or the id was wrong —
    /// never a hit on an unrelated newer statement. Distinct from
    /// [`DbError::NotFound`] so clients (and the wire server) can report
    /// "nothing to kill" without dropping the connection.
    NoSuchStatement(i64),
    /// The server refused new work because a hard capacity bound was
    /// reached (connection limit, admission queue full). The client is
    /// expected to back off and retry; nothing about the request itself
    /// was wrong.
    ServerBusy(String),
    /// The server is draining for shutdown: it finishes in-flight
    /// statements but rejects new ones. Like [`DbError::ServerBusy`] a
    /// retry against another (or restarted) server is the right response.
    ServerDraining(String),
    /// The wire protocol was violated (bad frame tag, oversized frame,
    /// truncated payload). The offending connection is closed; the server
    /// and every other connection survive.
    Protocol(String),
    /// The named object (table, or `filestream:<guid>` blob) holds
    /// corruption the scrubber could not repair and was fenced off on the
    /// persisted quarantine list. Only statements touching the object see
    /// this error; the rest of the database stays online. A successful
    /// repair or re-import clears the entry. `page` is one quarantined
    /// page id (0 for blobs).
    Quarantined { object: String, page: u64 },
    /// A write path ran out of disk space (injected ENOSPC from the fault
    /// schedule, or a real `ENOSPC` from the OS). Distinct from
    /// [`DbError::Io`] so callers can degrade deliberately — fail the one
    /// spilling statement, keep the server up — instead of treating it as
    /// a device fault.
    DiskFull(String),
    /// A backup set failed verification: a missing or garbled manifest, a
    /// page whose content no longer matches its manifest CRC, a blob whose
    /// bytes no longer hash to their recorded SHA-256, or a rotted WAL
    /// segment. `object` names the damaged piece (`backup.manifest`,
    /// `page 17`, `filestream:<guid>`, `seqdb.wal`, ...). Restore refuses
    /// to proceed rather than resurrecting bad data.
    BackupCorrupt { object: String },
}

impl DbError {
    /// Helper used by storage code to wrap `std::io::Error`.
    pub fn io(e: std::io::Error) -> Self {
        DbError::Io(e.to_string())
    }

    /// Wrap an `std::io::Error` from a *write* path: a real `ENOSPC`
    /// becomes the typed [`DbError::DiskFull`] so out-of-space degrades
    /// deliberately instead of surfacing as a generic I/O fault.
    pub fn io_write(e: std::io::Error) -> Self {
        // 28 == ENOSPC on every unix; io::ErrorKind::StorageFull is not
        // stable on the toolchains we support, so match the raw code.
        if e.raw_os_error() == Some(28) {
            DbError::DiskFull(e.to_string())
        } else {
            DbError::Io(e.to_string())
        }
    }
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::Io(m) => write!(f, "i/o error: {m}"),
            DbError::Parse(m) => write!(f, "parse error: {m}"),
            DbError::Schema(m) => write!(f, "schema error: {m}"),
            DbError::Plan(m) => write!(f, "plan error: {m}"),
            DbError::Execution(m) => write!(f, "execution error: {m}"),
            DbError::Storage(m) => write!(f, "storage error: {m}"),
            DbError::Corruption(m) => write!(f, "corruption detected: {m}"),
            DbError::Constraint(m) => write!(f, "constraint violation: {m}"),
            DbError::NotFound(m) => write!(f, "not found: {m}"),
            DbError::Unsupported(m) => write!(f, "unsupported: {m}"),
            DbError::InvalidData(m) => write!(f, "invalid data: {m}"),
            DbError::ResourceExhausted(m) => write!(f, "resource limit exceeded: {m}"),
            DbError::Timeout(m) => write!(f, "query timeout: {m}"),
            DbError::Cancelled(m) => write!(f, "query cancelled: {m}"),
            DbError::AdmissionTimeout(m) => write!(f, "admission timeout: {m}"),
            DbError::UdxPanic { name, payload } => {
                write!(f, "panic in user function {name}: {payload}")
            }
            DbError::NoSuchStatement(id) => {
                write!(
                    f,
                    "no such statement: {id} is not running (already finished or never existed)"
                )
            }
            DbError::ServerBusy(m) => write!(f, "server busy: {m}"),
            DbError::ServerDraining(m) => write!(f, "server draining: {m}"),
            DbError::Protocol(m) => write!(f, "protocol error: {m}"),
            DbError::Quarantined { object, page } => {
                write!(
                    f,
                    "object quarantined: {object} holds unrepaired corruption (page {page}); \
                     run CHECK ... REPAIR or re-import to restore it"
                )
            }
            DbError::DiskFull(m) => write!(f, "disk full: {m}"),
            DbError::BackupCorrupt { object } => {
                write!(
                    f,
                    "backup set corrupt: {object} failed verification; restore refused \
                     (take a fresh backup or restore from another set)"
                )
            }
        }
    }
}

impl std::error::Error for DbError {}

impl From<std::io::Error> for DbError {
    fn from(e: std::io::Error) -> Self {
        DbError::io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_subsystem_and_message() {
        let e = DbError::Parse("unexpected token".into());
        assert_eq!(e.to_string(), "parse error: unexpected token");
        let e = DbError::Constraint("duplicate key".into());
        assert!(e.to_string().contains("constraint violation"));
    }

    #[test]
    fn corruption_is_distinct_from_storage() {
        let e = DbError::Corruption("page 7 checksum mismatch".into());
        assert!(e.to_string().contains("corruption detected"));
        assert_ne!(e, DbError::Storage("page 7 checksum mismatch".into()));
    }

    #[test]
    fn governor_errors_display_their_cause() {
        let e = DbError::ResourceExhausted("query memory budget of 1024 bytes".into());
        assert!(e.to_string().contains("resource limit exceeded"));
        let e = DbError::Timeout("exceeded 50ms".into());
        assert!(e.to_string().contains("query timeout"));
        let e = DbError::Cancelled("cancelled by user".into());
        assert!(e.to_string().contains("query cancelled"));
        let e = DbError::AdmissionTimeout("pool saturated for 100ms".into());
        assert!(e.to_string().contains("admission timeout"));
    }

    #[test]
    fn udx_panic_names_the_function() {
        let e = DbError::UdxPanic {
            name: "BadUdf".into(),
            payload: "boom".into(),
        };
        let s = e.to_string();
        assert!(s.contains("BadUdf") && s.contains("boom"), "{s}");
        // The engine relies on these derives to report worker errors.
        let _ = e.clone();
        assert_eq!(
            e,
            DbError::UdxPanic {
                name: "BadUdf".into(),
                payload: "boom".into()
            }
        );
    }

    #[test]
    fn server_errors_display_their_cause() {
        let e = DbError::NoSuchStatement(42);
        assert!(e.to_string().contains("42"), "{e}");
        assert_ne!(e, DbError::NoSuchStatement(43));
        let e = DbError::ServerBusy("connection limit of 4 reached".into());
        assert!(e.to_string().contains("server busy"), "{e}");
        let e = DbError::ServerDraining("shutting down".into());
        assert!(e.to_string().contains("draining"), "{e}");
        let e = DbError::Protocol("frame of 99 MiB exceeds the 32 MiB cap".into());
        assert!(e.to_string().contains("protocol error"), "{e}");
    }

    #[test]
    fn integrity_errors_display_their_cause() {
        let e = DbError::Quarantined {
            object: "reads".into(),
            page: 7,
        };
        let s = e.to_string();
        assert!(
            s.contains("quarantined") && s.contains("reads") && s.contains('7'),
            "{s}"
        );
        assert_ne!(
            e,
            DbError::Quarantined {
                object: "reads".into(),
                page: 8
            }
        );
        let e = DbError::DiskFull("injected ENOSPC at operation 9".into());
        assert!(e.to_string().contains("disk full"), "{e}");
        let e = DbError::BackupCorrupt {
            object: "page 17".into(),
        };
        let s = e.to_string();
        assert!(
            s.contains("backup set corrupt") && s.contains("page 17"),
            "{s}"
        );
        assert_ne!(
            e,
            DbError::BackupCorrupt {
                object: "page 18".into()
            }
        );
    }

    #[test]
    fn io_write_maps_enospc_to_disk_full() {
        let e = DbError::io_write(std::io::Error::from_raw_os_error(28));
        assert!(matches!(e, DbError::DiskFull(_)), "{e:?}");
        let e = DbError::io_write(std::io::Error::new(std::io::ErrorKind::NotFound, "gone"));
        assert!(matches!(e, DbError::Io(_)), "{e:?}");
    }

    #[test]
    fn io_errors_convert() {
        let ioe = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: DbError = ioe.into();
        assert!(matches!(e, DbError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}

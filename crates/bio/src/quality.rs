//! Phred quality scores and their ASCII encodings.
//!
//! FASTQ quality lines are "the logarithmic-transformed error
//! probabilities from the image analysis phase ... shifted into the
//! visible ASCII character space" (paper §3, Figure 3). Two shifts are in
//! the wild: Sanger (+33) and the Illumina 1.3 pipeline (+64), which the
//! paper's `IL4_855` lanes use.

use seqdb_types::{DbError, Result};

/// A Phred-scaled quality score: `Q = -10 * log10(p_error)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Phred(pub u8);

/// Maximum representable score (ASCII printability limit with offset 33).
pub const MAX_PHRED: u8 = 93;

impl Phred {
    pub fn new(q: u8) -> Phred {
        Phred(q.min(MAX_PHRED))
    }

    /// The error probability this score encodes.
    pub fn error_prob(self) -> f64 {
        10f64.powf(-(self.0 as f64) / 10.0)
    }

    /// Score for an error probability (clamped to `[0, MAX_PHRED]`).
    pub fn from_error_prob(p: f64) -> Phred {
        if p <= 0.0 {
            return Phred(MAX_PHRED);
        }
        if p >= 1.0 {
            return Phred(0);
        }
        Phred(((-10.0 * p.log10()).round() as i64).clamp(0, MAX_PHRED as i64) as u8)
    }
}

/// Quality-string encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QualityEncoding {
    /// Offset 33 ("Sanger"/modern FASTQ).
    Sanger,
    /// Offset 64 (Illumina 1.3+ pipeline, the paper's data).
    Illumina13,
}

impl QualityEncoding {
    pub fn offset(self) -> u8 {
        match self {
            QualityEncoding::Sanger => 33,
            QualityEncoding::Illumina13 => 64,
        }
    }

    /// Highest score this encoding can represent in printable ASCII
    /// (scores above it are clamped on encode). Sanger: 93; Illumina
    /// 1.3: 62 — matching the real pipelines.
    pub fn max_quality(self) -> u8 {
        126 - self.offset()
    }

    /// Decode an ASCII quality line into scores.
    pub fn decode(self, line: &str) -> Result<Vec<Phred>> {
        let off = self.offset();
        line.bytes()
            .map(|b| {
                if b < off || b > 126 {
                    Err(DbError::InvalidData(format!(
                        "quality character {:?} out of range for {self:?}",
                        b as char
                    )))
                } else {
                    Ok(Phred(b - off))
                }
            })
            .collect()
    }

    /// Encode scores as an ASCII quality line (clamped to
    /// [`QualityEncoding::max_quality`]).
    pub fn encode(self, quals: &[Phred]) -> String {
        let off = self.offset();
        let cap = self.max_quality();
        quals.iter().map(|q| (off + q.0.min(cap)) as char).collect()
    }
}

/// Sum of scores (used by quality-weighted consensus and aligners).
pub fn total_quality(quals: &[Phred]) -> u64 {
    quals.iter().map(|q| q.0 as u64).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn probability_conversions() {
        assert!((Phred(10).error_prob() - 0.1).abs() < 1e-12);
        assert!((Phred(30).error_prob() - 0.001).abs() < 1e-12);
        assert_eq!(Phred::from_error_prob(0.1), Phred(10));
        assert_eq!(Phred::from_error_prob(0.0), Phred(MAX_PHRED));
        assert_eq!(Phred::from_error_prob(1.0), Phred(0));
    }

    #[test]
    fn sanger_and_illumina_shift() {
        // The paper's Figure 3 line ">>>>..." is Illumina-encoded: '>' is
        // ASCII 62, so Q = 62 - 64 would be negative in Illumina scale
        // pre-1.3 — our Illumina13 decoder rejects it, Sanger reads Q29.
        let q = QualityEncoding::Sanger.decode(">>>;").unwrap();
        assert_eq!(q[0], Phred(29));
        assert_eq!(q[3], Phred(26));
        assert!(QualityEncoding::Illumina13.decode(">>>").is_err());
        let enc = QualityEncoding::Illumina13.encode(&[Phred(2), Phred(30)]);
        assert_eq!(enc, "B~".replace('~', &((64u8 + 30) as char).to_string()));
    }

    #[test]
    fn total_quality_sums() {
        assert_eq!(total_quality(&[Phred(10), Phred(20), Phred(0)]), 30);
    }

    proptest! {
        #[test]
        fn encode_decode_roundtrip(quals in proptest::collection::vec(0u8..=MAX_PHRED, 0..80)) {
            for enc in [QualityEncoding::Sanger, QualityEncoding::Illumina13] {
                // Scores above the encoding's ceiling clamp on encode.
                let quals: Vec<Phred> = quals
                    .iter()
                    .map(|&q| Phred(q.min(enc.max_quality())))
                    .collect();
                let line = enc.encode(&quals);
                prop_assert!(line.is_ascii());
                prop_assert_eq!(enc.decode(&line).unwrap(), quals);
            }
        }

        #[test]
        fn from_error_prob_monotone(a in 1e-9f64..1.0, b in 1e-9f64..1.0) {
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            prop_assert!(Phred::from_error_prob(lo).0 >= Phred::from_error_prob(hi).0);
        }
    }
}

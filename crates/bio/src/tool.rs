//! The file-centric "external tool" — a MAQ-like command pipeline.
//!
//! §2.1 of the paper describes the state of the art it argues against:
//! "MAQ first transforms the output files from a sequencer and the
//! reference sequences into its own internal formats (intermediate
//! binary files); the output of its short-read alignment is another
//! proprietary binary file which then has to be converted into a human
//! readable form before it can be further processed."
//!
//! This module *is* that tool: a four-step pipeline over proprietary
//! binary intermediates (`.bsq` packed reads, `.bfa` packed reference,
//! `.bmap` binary alignments) ending in a text export. It exists so the
//! hybrid FileStream design has a real external program to host: the
//! pipeline's file handles can come from
//! `FileStreamStore::open_for_external_tool`, which is exactly the
//! paper's integration story.

use std::fs::File;
use std::io::{BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use seqdb_types::{DbError, Result};

use crate::align::{Aligner, AlignerConfig, Alignment, Strand};
use crate::dna::PackedSeq;
use crate::fastq::{ChunkedFastqParser, FastqRecord, IoChunkSource};
use crate::quality::{Phred, QualityEncoding};
use crate::reference::ReferenceGenome;

const BSQ_MAGIC: &[u8; 4] = b"SQB1";
const BFA_MAGIC: &[u8; 4] = b"SQF1";
const BMAP_MAGIC: &[u8; 4] = b"SQM1";

fn write_u32<W: Write>(w: &mut W, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes())?;
    Ok(())
}

fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn write_blob<W: Write>(w: &mut W, b: &[u8]) -> Result<()> {
    write_u32(w, b.len() as u32)?;
    w.write_all(b)?;
    Ok(())
}

fn read_blob<R: Read>(r: &mut R) -> Result<Vec<u8>> {
    let n = read_u32(r)? as usize;
    if n > 64 * 1024 * 1024 {
        return Err(DbError::InvalidData("oversized blob in binary file".into()));
    }
    let mut b = vec![0u8; n];
    r.read_exact(&mut b)?;
    Ok(b)
}

fn check_magic<R: Read>(r: &mut R, magic: &[u8; 4], what: &str) -> Result<()> {
    let mut m = [0u8; 4];
    r.read_exact(&mut m)?;
    if &m != magic {
        return Err(DbError::InvalidData(format!("not a {what} file")));
    }
    Ok(())
}

// ----------------------------------------------------------------------
// Step 1: fastq -> .bsq (packed binary reads)
// ----------------------------------------------------------------------

/// Convert FASTQ to the packed binary read format. Returns read count.
pub fn fastq_to_bsq(fastq: &Path, bsq: &Path, encoding: QualityEncoding) -> Result<u64> {
    let mut parser = ChunkedFastqParser::new(IoChunkSource(File::open(fastq)?));
    let mut w = BufWriter::new(File::create(bsq)?);
    w.write_all(BSQ_MAGIC)?;
    // Record count is patched in by a second header write; we stream, so
    // write a placeholder and fix it up at the end.
    write_u32(&mut w, 0)?;
    let mut n = 0u32;
    while let Some(rec) = parser.next_record(encoding)? {
        write_blob(&mut w, rec.name.as_bytes())?;
        let packed = PackedSeq::from_str(&rec.seq)?;
        write_blob(&mut w, &packed.to_bytes())?;
        let quals: Vec<u8> = rec.quals.iter().map(|q| q.0).collect();
        write_blob(&mut w, &quals)?;
        n += 1;
    }
    w.flush()?;
    drop(w);
    // Patch the count.
    use std::io::Seek;
    let mut f = std::fs::OpenOptions::new().write(true).open(bsq)?;
    f.seek(std::io::SeekFrom::Start(4))?;
    f.write_all(&n.to_le_bytes())?;
    Ok(n as u64)
}

/// Read a `.bsq` file back into records.
pub fn read_bsq(bsq: &Path) -> Result<Vec<FastqRecord>> {
    let mut r = BufReader::new(File::open(bsq)?);
    check_magic(&mut r, BSQ_MAGIC, "bsq")?;
    let n = read_u32(&mut r)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let name = String::from_utf8(read_blob(&mut r)?)
            .map_err(|_| DbError::InvalidData("non-utf8 read name in bsq".into()))?;
        let packed = PackedSeq::from_bytes(&read_blob(&mut r)?)?;
        let quals: Vec<Phred> = read_blob(&mut r)?.into_iter().map(Phred::new).collect();
        out.push(FastqRecord {
            name,
            seq: packed.to_string_seq(),
            quals,
        });
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Step 2: reference fasta -> .bfa (packed binary reference)
// ----------------------------------------------------------------------

/// Convert a reference FASTA to the packed binary format.
pub fn fasta_to_bfa(fasta: &Path, bfa: &Path) -> Result<()> {
    let genome = ReferenceGenome::from_fasta(BufReader::new(File::open(fasta)?))?;
    let mut w = BufWriter::new(File::create(bfa)?);
    w.write_all(BFA_MAGIC)?;
    write_u32(&mut w, genome.chromosomes.len() as u32)?;
    for c in &genome.chromosomes {
        write_blob(&mut w, c.name.as_bytes())?;
        let packed = PackedSeq::from_str(std::str::from_utf8(&c.seq).expect("ASCII"))?;
        write_blob(&mut w, &packed.to_bytes())?;
    }
    w.flush()?;
    Ok(())
}

/// Load a `.bfa` back into a reference genome.
pub fn read_bfa(bfa: &Path) -> Result<ReferenceGenome> {
    let mut r = BufReader::new(File::open(bfa)?);
    check_magic(&mut r, BFA_MAGIC, "bfa")?;
    let n = read_u32(&mut r)? as usize;
    let mut chromosomes = Vec::with_capacity(n);
    for _ in 0..n {
        let name = String::from_utf8(read_blob(&mut r)?)
            .map_err(|_| DbError::InvalidData("non-utf8 chromosome name".into()))?;
        let packed = PackedSeq::from_bytes(&read_blob(&mut r)?)?;
        chromosomes.push(crate::reference::Chromosome {
            name,
            seq: packed.to_string_seq().into_bytes(),
        });
    }
    Ok(ReferenceGenome { chromosomes })
}

// ----------------------------------------------------------------------
// Step 3: .bsq + .bfa -> .bmap (binary alignments)
// ----------------------------------------------------------------------

/// One record of the binary alignment format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BmapRecord {
    pub read_index: u32,
    pub alignment: Alignment,
}

/// Align a `.bsq` against a `.bfa`, writing `.bmap`. Returns the number
/// of aligned reads.
pub fn map_reads(bsq: &Path, bfa: &Path, bmap: &Path, config: AlignerConfig) -> Result<u64> {
    let reads = read_bsq(bsq)?;
    let genome = Arc::new(read_bfa(bfa)?);
    let aligner = Aligner::new(genome, config);
    let mut w = BufWriter::new(File::create(bmap)?);
    w.write_all(BMAP_MAGIC)?;
    write_u32(&mut w, 0)?;
    let mut n = 0u32;
    for (i, rec) in reads.iter().enumerate() {
        if let Some(a) = aligner.align(&rec.seq, &rec.quals) {
            write_u32(&mut w, i as u32)?;
            write_u32(&mut w, a.chrom)?;
            write_u32(&mut w, a.pos)?;
            w.write_all(&[
                matches!(a.strand, Strand::Reverse) as u8,
                a.mismatches,
                a.mapq,
            ])?;
            write_u32(&mut w, a.quality_score)?;
            n += 1;
        }
    }
    w.flush()?;
    drop(w);
    use std::io::Seek;
    let mut f = std::fs::OpenOptions::new().write(true).open(bmap)?;
    f.seek(std::io::SeekFrom::Start(4))?;
    f.write_all(&n.to_le_bytes())?;
    Ok(n as u64)
}

/// Read a `.bmap`.
pub fn read_bmap(bmap: &Path) -> Result<Vec<BmapRecord>> {
    let mut r = BufReader::new(File::open(bmap)?);
    check_magic(&mut r, BMAP_MAGIC, "bmap")?;
    let n = read_u32(&mut r)? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let read_index = read_u32(&mut r)?;
        let chrom = read_u32(&mut r)?;
        let pos = read_u32(&mut r)?;
        let mut flags = [0u8; 3];
        r.read_exact(&mut flags)?;
        let quality_score = read_u32(&mut r)?;
        out.push(BmapRecord {
            read_index,
            alignment: Alignment {
                chrom,
                pos,
                strand: if flags[0] != 0 {
                    Strand::Reverse
                } else {
                    Strand::Forward
                },
                mismatches: flags[1],
                mapq: flags[2],
                quality_score,
            },
        });
    }
    Ok(out)
}

// ----------------------------------------------------------------------
// Step 4: .bmap -> human-readable text ("mapview")
// ----------------------------------------------------------------------

/// Export alignments as the tab-separated text the paper complains about
/// ("the final output is a 'human readable' text file which actually
/// complicates the further processing").
pub fn mapview(bsq: &Path, bfa: &Path, bmap: &Path, txt: &Path) -> Result<u64> {
    let reads = read_bsq(bsq)?;
    let genome = read_bfa(bfa)?;
    let records = read_bmap(bmap)?;
    let mut w = BufWriter::new(File::create(txt)?);
    let mut n = 0;
    for rec in &records {
        let read = reads.get(rec.read_index as usize).ok_or_else(|| {
            DbError::InvalidData(format!("bmap references read {}", rec.read_index))
        })?;
        let chrom = genome
            .chromosomes
            .get(rec.alignment.chrom as usize)
            .ok_or_else(|| {
                DbError::InvalidData(format!("bmap references chrom {}", rec.alignment.chrom))
            })?;
        writeln!(
            w,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            read.name,
            chrom.name,
            rec.alignment.pos + 1, // 1-based, like real mapview
            rec.alignment.strand.symbol(),
            rec.alignment.mapq,
            rec.alignment.mismatches,
            read.seq,
        )?;
        n += 1;
    }
    w.flush()?;
    Ok(n)
}

/// Output of the full pipeline run.
#[derive(Debug)]
pub struct PipelineOutput {
    pub bsq: PathBuf,
    pub bfa: PathBuf,
    pub bmap: PathBuf,
    pub txt: PathBuf,
    pub reads_in: u64,
    pub reads_aligned: u64,
}

/// Run the whole file-centric pipeline: fastq → bsq → (with bfa) → bmap
/// → text. Every intermediate lands in `workdir`, like the zoo of files
/// a real MAQ run leaves behind.
pub fn run_pipeline(
    fastq: &Path,
    reference_fasta: &Path,
    workdir: &Path,
    encoding: QualityEncoding,
    config: AlignerConfig,
) -> Result<PipelineOutput> {
    std::fs::create_dir_all(workdir)?;
    let bsq = workdir.join("reads.bsq");
    let bfa = workdir.join("reference.bfa");
    let bmap = workdir.join("alignments.bmap");
    let txt = workdir.join("alignments.txt");
    let reads_in = fastq_to_bsq(fastq, &bsq, encoding)?;
    fasta_to_bfa(reference_fasta, &bfa)?;
    let reads_aligned = map_reads(&bsq, &bfa, &bmap, config)?;
    mapview(&bsq, &bfa, &bmap, &txt)?;
    Ok(PipelineOutput {
        bsq,
        bfa,
        bmap,
        txt,
        reads_in,
        reads_aligned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fastq::write_fastq;
    use crate::simulate::{LaneConfig, ReadSimulator};

    fn workdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("seqdb-tool-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn full_pipeline_end_to_end() {
        let dir = workdir("pipeline");
        let genome = ReferenceGenome::synthetic(21, 2, 40_000);
        let mut f = File::create(dir.join("ref.fa")).unwrap();
        genome.to_fasta(&mut f).unwrap();
        drop(f);

        let mut sim = ReadSimulator::new(LaneConfig::default(), 4);
        let reads: Vec<FastqRecord> = sim
            .lane(&genome, 150)
            .into_iter()
            .map(|r| r.record)
            .collect();
        let mut f = File::create(dir.join("lane.fastq")).unwrap();
        write_fastq(&mut f, reads.clone(), QualityEncoding::Sanger).unwrap();
        drop(f);

        let out = run_pipeline(
            &dir.join("lane.fastq"),
            &dir.join("ref.fa"),
            &dir,
            QualityEncoding::Sanger,
            AlignerConfig::default(),
        )
        .unwrap();
        assert_eq!(out.reads_in, 150);
        assert!(out.reads_aligned > 100, "{}", out.reads_aligned);
        // All four intermediates exist — the paper's "zoo of files".
        for p in [&out.bsq, &out.bfa, &out.bmap, &out.txt] {
            assert!(p.exists());
            assert!(std::fs::metadata(p).unwrap().len() > 0);
        }
        // The text export parses back line-per-alignment.
        let txt = std::fs::read_to_string(&out.txt).unwrap();
        assert_eq!(txt.lines().count() as u64, out.reads_aligned);
        assert!(txt.lines().next().unwrap().split('\t').count() == 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bsq_roundtrip_preserves_records() {
        let dir = workdir("bsq");
        let genome = ReferenceGenome::synthetic(5, 1, 5_000);
        let mut sim = ReadSimulator::new(LaneConfig::default(), 9);
        let reads: Vec<FastqRecord> = sim
            .lane(&genome, 20)
            .into_iter()
            .map(|r| r.record)
            .collect();
        let fq = dir.join("r.fastq");
        let mut f = File::create(&fq).unwrap();
        write_fastq(&mut f, reads.clone(), QualityEncoding::Illumina13).unwrap();
        drop(f);
        let bsq = dir.join("r.bsq");
        assert_eq!(
            fastq_to_bsq(&fq, &bsq, QualityEncoding::Illumina13).unwrap(),
            20
        );
        let back = read_bsq(&bsq).unwrap();
        assert_eq!(back, reads);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bfa_roundtrip() {
        let dir = workdir("bfa");
        let genome = ReferenceGenome::synthetic(2, 3, 9_000);
        let fa = dir.join("g.fa");
        let mut f = File::create(&fa).unwrap();
        genome.to_fasta(&mut f).unwrap();
        drop(f);
        let bfa = dir.join("g.bfa");
        fasta_to_bfa(&fa, &bfa).unwrap();
        let back = read_bfa(&bfa).unwrap();
        assert_eq!(back, genome);
        // Packed reference is smaller than the text FASTA.
        assert!(std::fs::metadata(&bfa).unwrap().len() < std::fs::metadata(&fa).unwrap().len() / 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn wrong_magic_is_rejected() {
        let dir = workdir("magic");
        let p = dir.join("x.bsq");
        std::fs::write(&p, b"NOPE....").unwrap();
        assert!(read_bsq(&p).is_err());
        assert!(read_bfa(&p).is_err());
        assert!(read_bmap(&p).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

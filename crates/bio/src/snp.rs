//! SNP (single-nucleotide polymorphism) calling — the final step of the
//! paper's 1000 Genomes tertiary analysis (§2.1.1: the consensus is
//! compared across genomes and "looks for variations between individual
//! genomes (SNPs)").
//!
//! Two halves:
//!
//! * [`plant_snps`] mutates a reference genome into an *individual
//!   donor* genome with known variants — the ground truth the simulator
//!   sequences from;
//! * [`call_snps`] compares a called consensus against the reference and
//!   reports confident differences.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::quality::Phred;
use crate::reference::ReferenceGenome;

/// A known (planted) variant.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlantedSnp {
    pub chrom: usize,
    pub pos: usize,
    pub ref_base: u8,
    pub alt_base: u8,
}

/// A variant called from a consensus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnpCall {
    pub chrom: usize,
    pub pos: usize,
    pub ref_base: u8,
    pub alt_base: u8,
    /// Consensus quality at the site.
    pub quality: Phred,
}

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Copy `reference` into a donor genome with SNPs planted at roughly
/// `rate` per base pair. Returns the donor and the ground-truth list
/// (sorted by chromosome, position).
pub fn plant_snps(
    reference: &ReferenceGenome,
    rate: f64,
    seed: u64,
) -> (ReferenceGenome, Vec<PlantedSnp>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut donor = reference.clone();
    let mut planted = Vec::new();
    for (ci, chrom) in donor.chromosomes.iter_mut().enumerate() {
        for pos in 0..chrom.seq.len() {
            if rng.gen_bool(rate.clamp(0.0, 0.2)) {
                let ref_base = chrom.seq[pos];
                let mut alt = BASES[rng.gen_range(0..4usize)];
                while alt == ref_base {
                    alt = BASES[rng.gen_range(0..4usize)];
                }
                chrom.seq[pos] = alt;
                planted.push(PlantedSnp {
                    chrom: ci,
                    pos,
                    ref_base,
                    alt_base: alt,
                });
            }
        }
    }
    (donor, planted)
}

/// Call SNPs by comparing a consensus fragment against the reference.
/// `start` is the reference offset of `consensus[0]` (consensus strings
/// begin at the first covered position). Sites are reported when the
/// consensus differs from the reference, both are proper bases, and the
/// consensus quality is at least `min_quality`.
pub fn call_snps(
    reference: &ReferenceGenome,
    chrom: usize,
    start: usize,
    consensus: &[u8],
    quals: &[Phred],
    min_quality: Phred,
) -> Vec<SnpCall> {
    let refseq = &reference.chromosomes[chrom].seq;
    let mut out = Vec::new();
    for (i, (&called, q)) in consensus.iter().zip(quals.iter()).enumerate() {
        let pos = start + i;
        if pos >= refseq.len() {
            break;
        }
        let ref_base = refseq[pos];
        if called == b'N' || ref_base == b'N' {
            continue;
        }
        if called != ref_base && *q >= min_quality {
            out.push(SnpCall {
                chrom,
                pos,
                ref_base,
                alt_base: called,
                quality: *q,
            });
        }
    }
    out
}

/// Precision/recall of a call set against planted ground truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SnpAccuracy {
    pub true_positives: usize,
    pub false_positives: usize,
    pub false_negatives: usize,
}

impl SnpAccuracy {
    pub fn precision(&self) -> f64 {
        let called = self.true_positives + self.false_positives;
        if called == 0 {
            1.0
        } else {
            self.true_positives as f64 / called as f64
        }
    }

    pub fn recall(&self) -> f64 {
        let truth = self.true_positives + self.false_negatives;
        if truth == 0 {
            1.0
        } else {
            self.true_positives as f64 / truth as f64
        }
    }
}

/// Score `calls` against `truth`, counting only truth sites within
/// `covered` (chrom, start, end) spans — uncovered SNPs are not
/// recallable and would distort the measurement.
pub fn score_calls(
    calls: &[SnpCall],
    truth: &[PlantedSnp],
    covered: &[(usize, usize, usize)],
) -> SnpAccuracy {
    let truth_set: std::collections::HashSet<(usize, usize, u8)> =
        truth.iter().map(|s| (s.chrom, s.pos, s.alt_base)).collect();
    let in_cover = |chrom: usize, pos: usize| {
        covered
            .iter()
            .any(|&(c, s, e)| c == chrom && pos >= s && pos < e)
    };
    let mut tp = 0;
    let mut fp = 0;
    for c in calls {
        if truth_set.contains(&(c.chrom, c.pos, c.alt_base)) {
            tp += 1;
        } else {
            fp += 1;
        }
    }
    let called_set: std::collections::HashSet<(usize, usize)> =
        calls.iter().map(|c| (c.chrom, c.pos)).collect();
    let mut fnn = 0;
    for t in truth {
        if in_cover(t.chrom, t.pos) && !called_set.contains(&(t.chrom, t.pos)) {
            fnn += 1;
        }
    }
    SnpAccuracy {
        true_positives: tp,
        false_positives: fp,
        false_negatives: fnn,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plant_snps_mutates_at_the_requested_rate() {
        let g = ReferenceGenome::synthetic(1, 3, 30_000);
        let (donor, planted) = plant_snps(&g, 0.001, 7);
        // ~30 expected; allow wide slack.
        assert!((5..150).contains(&planted.len()), "{}", planted.len());
        for s in &planted {
            assert_eq!(g.chromosomes[s.chrom].seq[s.pos], s.ref_base);
            assert_eq!(donor.chromosomes[s.chrom].seq[s.pos], s.alt_base);
            assert_ne!(s.ref_base, s.alt_base);
        }
        // Deterministic.
        let (_, p2) = plant_snps(&g, 0.001, 7);
        assert_eq!(planted, p2);
    }

    #[test]
    fn call_snps_finds_exact_differences() {
        let g = ReferenceGenome::synthetic(2, 1, 1_000);
        let refseq = &g.chromosomes[0].seq;
        // Consensus = reference fragment with one substitution.
        let start = 100;
        let mut cons = refseq[start..start + 50].to_vec();
        let old = cons[10];
        cons[10] = if old == b'A' { b'G' } else { b'A' };
        let mut quals = vec![Phred(40); 50];
        quals[20] = Phred(2); // a low-quality site that also differs...
        let mut cons2 = cons.clone();
        cons2[20] = if cons2[20] == b'C' { b'T' } else { b'C' };
        let calls = call_snps(&g, 0, start, &cons2, &quals, Phred(20));
        // Only the confident site is reported.
        assert_eq!(calls.len(), 1);
        assert_eq!(calls[0].pos, start + 10);
        assert_eq!(calls[0].ref_base, old);
    }

    #[test]
    fn n_positions_are_never_called() {
        let g = ReferenceGenome::synthetic(3, 1, 500);
        let cons = vec![b'N'; 50];
        let quals = vec![Phred(40); 50];
        assert!(call_snps(&g, 0, 0, &cons, &quals, Phred(0)).is_empty());
    }

    #[test]
    fn scoring_counts_tp_fp_fn() {
        let truth = vec![
            PlantedSnp {
                chrom: 0,
                pos: 10,
                ref_base: b'A',
                alt_base: b'C',
            },
            PlantedSnp {
                chrom: 0,
                pos: 20,
                ref_base: b'G',
                alt_base: b'T',
            },
            PlantedSnp {
                chrom: 0,
                pos: 999,
                ref_base: b'G',
                alt_base: b'T',
            }, // uncovered
        ];
        let calls = vec![
            SnpCall {
                chrom: 0,
                pos: 10,
                ref_base: b'A',
                alt_base: b'C',
                quality: Phred(40),
            }, // TP
            SnpCall {
                chrom: 0,
                pos: 50,
                ref_base: b'A',
                alt_base: b'G',
                quality: Phred(40),
            }, // FP
        ];
        let acc = score_calls(&calls, &truth, &[(0, 0, 100)]);
        assert_eq!(acc.true_positives, 1);
        assert_eq!(acc.false_positives, 1);
        assert_eq!(acc.false_negatives, 1); // pos 20 covered but missed
        assert!((acc.precision() - 0.5).abs() < 1e-9);
        assert!((acc.recall() - 0.5).abs() < 1e-9);
    }
}

//! Reference genomes: loading from FASTA and synthetic generation.
//!
//! The paper aligns against the Human reference genome ("the 25
//! chromosomes", §5.1.2). seqdb uses a scaled-down synthetic reference
//! with the same *shape*: multiple chromosomes of uneven lengths with
//! realistic base composition (including low-complexity repeats, which
//! give aligners and compressors honest work).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use seqdb_types::{DbError, Result};

use crate::fasta::{read_fasta, write_fasta, FastaRecord};

/// One chromosome: a name and its sequence (ASCII bases, uppercase).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chromosome {
    pub name: String,
    pub seq: Vec<u8>,
}

impl Chromosome {
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// A reference genome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceGenome {
    pub chromosomes: Vec<Chromosome>,
}

impl ReferenceGenome {
    /// Total length in base pairs.
    pub fn total_len(&self) -> usize {
        self.chromosomes.iter().map(Chromosome::len).sum()
    }

    pub fn chromosome(&self, name: &str) -> Option<&Chromosome> {
        self.chromosomes.iter().find(|c| c.name == name)
    }

    /// Load from FASTA.
    pub fn from_fasta<R: std::io::BufRead>(r: R) -> Result<ReferenceGenome> {
        let records = read_fasta(r)?;
        if records.is_empty() {
            return Err(DbError::InvalidData("empty reference FASTA".into()));
        }
        Ok(ReferenceGenome {
            chromosomes: records
                .into_iter()
                .map(|r| Chromosome {
                    name: r.id,
                    seq: r.seq.to_ascii_uppercase().into_bytes(),
                })
                .collect(),
        })
    }

    /// Write as FASTA (60-column wrapped).
    pub fn to_fasta<W: std::io::Write>(&self, w: &mut W) -> Result<()> {
        let records: Vec<FastaRecord> = self
            .chromosomes
            .iter()
            .map(|c| FastaRecord {
                id: c.name.clone(),
                description: String::new(),
                seq: String::from_utf8_lossy(&c.seq).into_owned(),
            })
            .collect();
        write_fasta(w, &records)
    }

    /// Generate a synthetic genome: `n_chroms` chromosomes whose lengths
    /// shrink like real karyotypes, with occasional repeat expansions.
    pub fn synthetic(seed: u64, n_chroms: usize, total_bp: usize) -> ReferenceGenome {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<f64> = (0..n_chroms)
            .map(|i| 1.0 / (1.0 + i as f64 * 0.35))
            .collect();
        let wsum: f64 = weights.iter().sum();
        let mut chromosomes = Vec::with_capacity(n_chroms);
        for (i, w) in weights.iter().enumerate() {
            let len = ((total_bp as f64) * w / wsum).round().max(200.0) as usize;
            chromosomes.push(Chromosome {
                name: format!("chr{}", i + 1),
                seq: random_sequence(&mut rng, len),
            });
        }
        ReferenceGenome { chromosomes }
    }
}

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Random sequence with ~8% of the bases coming from short tandem
/// repeats (keeps alignment non-trivial and compression honest).
fn random_sequence(rng: &mut StdRng, len: usize) -> Vec<u8> {
    let mut seq = Vec::with_capacity(len);
    while seq.len() < len {
        if rng.gen_bool(0.02) {
            // Repeat expansion: a 2-6mer repeated 5-20 times.
            let unit_len = rng.gen_range(2..=6);
            let unit: Vec<u8> = (0..unit_len)
                .map(|_| BASES[rng.gen_range(0..4usize)])
                .collect();
            let times = rng.gen_range(5..=20);
            for _ in 0..times {
                seq.extend_from_slice(&unit);
                if seq.len() >= len {
                    break;
                }
            }
        } else {
            seq.push(BASES[rng.gen_range(0..4usize)]);
        }
    }
    seq.truncate(len);
    seq
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_has_requested_shape() {
        let g = ReferenceGenome::synthetic(42, 5, 100_000);
        assert_eq!(g.chromosomes.len(), 5);
        let total = g.total_len();
        assert!((90_000..=110_000).contains(&total), "{total}");
        // Karyotype-like: chr1 is the longest.
        assert!(g.chromosomes[0].len() > g.chromosomes[4].len());
        // Deterministic per seed.
        assert_eq!(ReferenceGenome::synthetic(42, 5, 100_000), g);
        assert_ne!(ReferenceGenome::synthetic(43, 5, 100_000), g);
        // Only ACGT.
        assert!(g.chromosomes[0].seq.iter().all(|b| BASES.contains(b)));
    }

    #[test]
    fn fasta_roundtrip() {
        let g = ReferenceGenome::synthetic(7, 3, 10_000);
        let mut buf = Vec::new();
        g.to_fasta(&mut buf).unwrap();
        let back = ReferenceGenome::from_fasta(&buf[..]).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn lookup_by_name() {
        let g = ReferenceGenome::synthetic(1, 3, 3_000);
        assert!(g.chromosome("chr2").is_some());
        assert!(g.chromosome("chrX").is_none());
    }

    #[test]
    fn empty_fasta_is_an_error() {
        assert!(ReferenceGenome::from_fasta("".as_bytes()).is_err());
    }
}

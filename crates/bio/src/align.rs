//! MAQ-like short-read alignment (the paper's secondary data analysis,
//! §2.1 phase 2).
//!
//! Seed-and-extend against a hashed k-mer index of the reference, with
//! MAQ's scoring idea: among candidate placements within the mismatch
//! budget, prefer the one with the smallest *sum of quality scores at
//! mismatched bases*, and derive a mapping quality from the gap to the
//! second-best placement. Both strands are tried (reads come off either
//! strand of the flowcell fragment).

use std::collections::HashMap;
use std::sync::Arc;

use crate::quality::Phred;
use crate::reference::ReferenceGenome;

/// Alignment strand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strand {
    Forward,
    Reverse,
}

impl Strand {
    pub fn symbol(self) -> char {
        match self {
            Strand::Forward => '+',
            Strand::Reverse => '-',
        }
    }
}

/// One read-to-reference placement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alignment {
    /// Index into the reference's chromosome list.
    pub chrom: u32,
    /// 0-based position of the read's first base on the forward strand.
    pub pos: u32,
    pub strand: Strand,
    pub mismatches: u8,
    /// Sum of Phred scores at mismatched positions (MAQ's placement
    /// score; lower is better).
    pub quality_score: u32,
    /// Mapping quality: confidence that this placement is the right one.
    pub mapq: u8,
}

/// Aligner configuration.
#[derive(Debug, Clone)]
pub struct AlignerConfig {
    /// Seed length in bases (hashed exactly).
    pub seed_len: usize,
    /// Maximum mismatches tolerated over the full read.
    pub max_mismatches: u8,
    /// Seeds whose hit lists exceed this are skipped (repeat masking).
    pub max_hits_per_seed: usize,
}

impl Default for AlignerConfig {
    fn default() -> AlignerConfig {
        AlignerConfig {
            seed_len: 12,
            max_mismatches: 2,
            max_hits_per_seed: 128,
        }
    }
}

/// Hashed exact-match seed index over the reference.
struct SeedIndex {
    seed_len: usize,
    /// 2-bit packed seed -> (chrom, pos) hit list.
    map: HashMap<u32, Vec<(u32, u32)>>,
}

fn pack_seed(seq: &[u8]) -> Option<u32> {
    let mut key = 0u32;
    for &b in seq {
        let code = match b {
            b'A' => 0,
            b'C' => 1,
            b'G' => 2,
            b'T' => 3,
            _ => return None,
        };
        key = (key << 2) | code;
    }
    Some(key)
}

impl SeedIndex {
    fn build(reference: &ReferenceGenome, seed_len: usize) -> SeedIndex {
        assert!(seed_len <= 16, "seeds are packed into 32 bits");
        let mut map: HashMap<u32, Vec<(u32, u32)>> = HashMap::new();
        for (ci, chrom) in reference.chromosomes.iter().enumerate() {
            if chrom.len() < seed_len {
                continue;
            }
            for pos in 0..=(chrom.len() - seed_len) {
                if let Some(key) = pack_seed(&chrom.seq[pos..pos + seed_len]) {
                    map.entry(key).or_default().push((ci as u32, pos as u32));
                }
            }
        }
        SeedIndex { seed_len, map }
    }

    fn hits(&self, seed: &[u8]) -> Option<&[(u32, u32)]> {
        debug_assert_eq!(seed.len(), self.seed_len);
        pack_seed(seed).and_then(|k| self.map.get(&k).map(|v| v.as_slice()))
    }
}

/// The aligner: owns the reference and its seed index.
pub struct Aligner {
    pub config: AlignerConfig,
    reference: Arc<ReferenceGenome>,
    index: SeedIndex,
}

struct Candidate {
    chrom: u32,
    pos: u32,
    strand: Strand,
    mismatches: u8,
    quality_score: u32,
}

impl Aligner {
    /// Build the index (one-time cost, like MAQ's reference conversion).
    pub fn new(reference: Arc<ReferenceGenome>, config: AlignerConfig) -> Aligner {
        let index = SeedIndex::build(&reference, config.seed_len);
        Aligner {
            config,
            reference,
            index,
        }
    }

    pub fn reference(&self) -> &Arc<ReferenceGenome> {
        &self.reference
    }

    /// Align one read; `None` when no placement fits the mismatch budget.
    pub fn align(&self, seq: &str, quals: &[Phred]) -> Option<Alignment> {
        let fwd = seq.as_bytes();
        let rev: Vec<u8> = fwd
            .iter()
            .rev()
            .map(|b| match b {
                b'A' => b'T',
                b'T' => b'A',
                b'C' => b'G',
                b'G' => b'C',
                other => *other,
            })
            .collect();
        let rev_quals: Vec<Phred> = quals.iter().rev().copied().collect();

        let mut best: Option<Candidate> = None;
        let mut second_score: Option<u32> = None;
        let mut best_dup = false;

        let mut consider = |cand: Candidate| match &best {
            None => best = Some(cand),
            Some(b) => {
                let better =
                    (cand.mismatches, cand.quality_score) < (b.mismatches, b.quality_score);
                let equal =
                    (cand.mismatches, cand.quality_score) == (b.mismatches, b.quality_score);
                let same_place =
                    cand.chrom == b.chrom && cand.pos == b.pos && cand.strand == b.strand;
                if same_place {
                    return;
                }
                if better {
                    second_score = Some(b.quality_score);
                    best_dup = false;
                    best = Some(cand);
                } else {
                    if equal {
                        best_dup = true;
                    }
                    second_score = Some(
                        second_score.map_or(cand.quality_score, |s| s.min(cand.quality_score)),
                    );
                }
            }
        };

        for (strand, bases, qv) in [
            (Strand::Forward, fwd, quals),
            (Strand::Reverse, rev.as_slice(), rev_quals.as_slice()),
        ] {
            self.scan_strand(bases, qv, strand, &mut consider);
        }

        let b = best?;
        let mapq = if best_dup {
            0
        } else {
            match second_score {
                // Unique within the seeded candidate set.
                None => 60,
                Some(s) => ((s.saturating_sub(b.quality_score)).min(60)) as u8,
            }
        };
        Some(Alignment {
            chrom: b.chrom,
            pos: b.pos,
            strand: b.strand,
            mismatches: b.mismatches,
            quality_score: b.quality_score,
            mapq,
        })
    }

    fn scan_strand(
        &self,
        bases: &[u8],
        quals: &[Phred],
        strand: Strand,
        consider: &mut impl FnMut(Candidate),
    ) {
        let k = self.config.seed_len;
        if bases.len() < k {
            return;
        }
        // Non-overlapping seed offsets across the read. With
        // `max_mismatches + 1` seeds, the pigeonhole principle guarantees
        // at least one error-free seed for any read within the mismatch
        // budget (MAQ's spaced-seed idea).
        let wanted = self.config.max_mismatches as usize + 1;
        let mut offsets: Vec<usize> = (0..wanted)
            .map(|i| i * k)
            .filter(|off| off + k <= bases.len())
            .collect();
        if offsets.len() < wanted && bases.len() >= k {
            // Tail seed for short reads.
            let tail = bases.len() - k;
            if !offsets.contains(&tail) {
                offsets.push(tail);
            }
        }
        let mut seen = std::collections::HashSet::new();
        for &off in &offsets {
            let Some(hits) = self.index.hits(&bases[off..off + k]) else {
                continue;
            };
            if hits.len() > self.config.max_hits_per_seed {
                continue; // repetitive seed
            }
            for &(chrom, hit_pos) in hits {
                let Some(start) = (hit_pos as usize).checked_sub(off) else {
                    continue;
                };
                let refseq = &self.reference.chromosomes[chrom as usize].seq;
                if start + bases.len() > refseq.len() {
                    continue;
                }
                if !seen.insert((chrom, start as u32)) {
                    continue;
                }
                if let Some((mm, score)) =
                    self.extend(bases, quals, &refseq[start..start + bases.len()])
                {
                    consider(Candidate {
                        chrom,
                        pos: start as u32,
                        strand,
                        mismatches: mm,
                        quality_score: score,
                    });
                }
            }
        }
    }

    /// Ungapped comparison with early exit past the mismatch budget.
    fn extend(&self, bases: &[u8], quals: &[Phred], window: &[u8]) -> Option<(u8, u32)> {
        let mut mismatches = 0u8;
        let mut score = 0u32;
        for i in 0..bases.len() {
            if bases[i] != window[i] {
                mismatches += 1;
                if mismatches > self.config.max_mismatches {
                    return None;
                }
                score += quals[i].0 as u32;
            }
        }
        Some((mismatches, score))
    }

    /// Align a batch, returning `(read_index, alignment)` for each
    /// aligned read.
    pub fn align_batch<'a>(
        &self,
        reads: impl IntoIterator<Item = (&'a str, &'a [Phred])>,
    ) -> Vec<(usize, Alignment)> {
        reads
            .into_iter()
            .enumerate()
            .filter_map(|(i, (s, q))| self.align(s, q).map(|a| (i, a)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{LaneConfig, ReadSimulator, SimStrand};

    fn setup() -> (Arc<ReferenceGenome>, Aligner) {
        let genome = Arc::new(ReferenceGenome::synthetic(3, 3, 60_000));
        let aligner = Aligner::new(genome.clone(), AlignerConfig::default());
        (genome, aligner)
    }

    #[test]
    fn perfect_read_aligns_at_its_origin() {
        let (genome, aligner) = setup();
        let chrom = &genome.chromosomes[1];
        let pos = 1234;
        let seq = String::from_utf8(chrom.seq[pos..pos + 36].to_vec()).unwrap();
        let quals = vec![Phred(35); 36];
        let a = aligner.align(&seq, &quals).unwrap();
        assert_eq!(a.chrom, 1);
        assert_eq!(a.pos as usize, pos);
        assert_eq!(a.strand, Strand::Forward);
        assert_eq!(a.mismatches, 0);
    }

    #[test]
    fn reverse_strand_reads_are_found() {
        let (genome, aligner) = setup();
        let chrom = &genome.chromosomes[0];
        let pos = 5000;
        let fwd = &chrom.seq[pos..pos + 36];
        let rc: String = fwd
            .iter()
            .rev()
            .map(|b| match b {
                b'A' => 'T',
                b'T' => 'A',
                b'C' => 'G',
                b'G' => 'C',
                _ => 'N',
            })
            .collect();
        let a = aligner.align(&rc, &[Phred(30); 36]).unwrap();
        assert_eq!(a.pos as usize, pos);
        assert_eq!(a.strand, Strand::Reverse);
        assert_eq!(a.mismatches, 0);
    }

    #[test]
    fn mismatch_budget_is_enforced() {
        let (genome, aligner) = setup();
        let chrom = &genome.chromosomes[2];
        let pos = 800;
        let mut seq = chrom.seq[pos..pos + 36].to_vec();
        // Two mismatches outside the first seed: still aligns.
        seq[20] = if seq[20] == b'A' { b'C' } else { b'A' };
        seq[30] = if seq[30] == b'G' { b'T' } else { b'G' };
        let s = String::from_utf8(seq.clone()).unwrap();
        let a = aligner.align(&s, &[Phred(30); 36]).unwrap();
        assert_eq!(a.pos as usize, pos);
        assert_eq!(a.mismatches, 2);
        assert_eq!(a.quality_score, 60);
        // A third mismatch breaks the budget (if no other placement).
        seq[25] = if seq[25] == b'A' { b'C' } else { b'A' };
        let s = String::from_utf8(seq).unwrap();
        let a = aligner.align(&s, &[Phred(30); 36]);
        if let Some(a) = a {
            assert!(a.mismatches <= 2, "found an alternative placement");
        }
    }

    #[test]
    fn most_simulated_reads_align_to_their_origin() {
        let (genome, aligner) = setup();
        let mut sim = ReadSimulator::new(
            LaneConfig {
                extra_error: 0.0005,
                ..LaneConfig::default()
            },
            77,
        );
        let reads = sim.lane(&genome, 300);
        let mut aligned = 0;
        let mut confident = 0;
        let mut confident_correct = 0;
        for r in &reads {
            if let Some(a) = aligner.align(&r.record.seq, &r.record.quals) {
                aligned += 1;
                if a.mapq == 0 {
                    // Ambiguous placement (repeat region): correctly
                    // flagged, not counted against accuracy.
                    continue;
                }
                confident += 1;
                let strand_ok = matches!(
                    (a.strand, r.strand),
                    (Strand::Forward, SimStrand::Forward) | (Strand::Reverse, SimStrand::Reverse)
                );
                if a.chrom as usize == r.true_chrom && a.pos as usize == r.true_pos && strand_ok {
                    confident_correct += 1;
                }
            }
        }
        assert!(aligned >= 250, "alignment rate too low: {aligned}/300");
        assert!(
            confident >= 200,
            "too few confident placements: {confident}"
        );
        assert!(
            confident_correct * 100 >= confident * 98,
            "confident accuracy too low: {confident_correct}/{confident}"
        );
    }

    #[test]
    fn repetitive_reads_get_mapq_zero() {
        // Build a genome with an exact 100bp duplication.
        let mut genome = ReferenceGenome::synthetic(9, 1, 20_000);
        let dup: Vec<u8> = genome.chromosomes[0].seq[300..400].to_vec();
        genome.chromosomes[0].seq[10_000..10_100].copy_from_slice(&dup);
        let aligner = Aligner::new(Arc::new(genome), AlignerConfig::default());
        let seq = String::from_utf8(dup[..36].to_vec()).unwrap();
        let a = aligner.align(&seq, &[Phred(30); 36]).unwrap();
        assert_eq!(a.mapq, 0, "ambiguous placement must have mapq 0");
    }

    #[test]
    fn unalignable_read_returns_none() {
        let (_genome, aligner) = setup();
        // A read of Ns has no valid seed.
        assert!(aligner.align(&"N".repeat(36), &[Phred(2); 36]).is_none());
    }
}

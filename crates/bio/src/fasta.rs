//! FASTA I/O.
//!
//! The paper (§3) singles FASTA out as an example of display-oriented
//! formats: "the common FASTA file format for gene or protein sequences
//! contains line-wrapped sequences to 60 base pairs per line for better
//! readability". The writer reproduces that wrapping; the reader accepts
//! any wrapping.

use std::io::{BufRead, Write};

use seqdb_types::{DbError, Result};

/// Line width used by the writer (the conventional 60 bp).
pub const LINE_WIDTH: usize = 60;

/// One FASTA record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastaRecord {
    /// Identifier (first whitespace-delimited token after `>`).
    pub id: String,
    /// Remainder of the header line.
    pub description: String,
    /// The sequence with line wrapping removed.
    pub seq: String,
}

/// Read all records from a FASTA stream.
pub fn read_fasta<R: BufRead>(r: R) -> Result<Vec<FastaRecord>> {
    let mut out: Vec<FastaRecord> = Vec::new();
    for line in r.lines() {
        let line = line?;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(header) = line.strip_prefix('>') {
            let (id, desc) = match header.split_once(char::is_whitespace) {
                Some((i, d)) => (i.to_string(), d.trim().to_string()),
                None => (header.to_string(), String::new()),
            };
            if id.is_empty() {
                return Err(DbError::InvalidData("FASTA record with empty id".into()));
            }
            out.push(FastaRecord {
                id,
                description: desc,
                seq: String::new(),
            });
        } else {
            let Some(current) = out.last_mut() else {
                return Err(DbError::InvalidData(
                    "FASTA sequence data before any '>' header".into(),
                ));
            };
            current.seq.push_str(line.trim());
        }
    }
    Ok(out)
}

/// Write records with 60-column wrapping.
pub fn write_fasta<W: Write>(w: &mut W, records: &[FastaRecord]) -> Result<()> {
    for r in records {
        if r.description.is_empty() {
            writeln!(w, ">{}", r.id)?;
        } else {
            writeln!(w, ">{} {}", r.id, r.description)?;
        }
        let bytes = r.seq.as_bytes();
        for chunk in bytes.chunks(LINE_WIDTH) {
            w.write_all(chunk)?;
            w.write_all(b"\n")?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_with_wrapping() {
        let recs = vec![
            FastaRecord {
                id: "chr1".into(),
                description: "synthetic chromosome 1".into(),
                seq: "ACGT".repeat(40), // 160 bp -> 3 lines
            },
            FastaRecord {
                id: "chr2".into(),
                description: String::new(),
                seq: "GATTACA".into(),
            },
        ];
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs).unwrap();
        let text = String::from_utf8(buf.clone()).unwrap();
        // 60-column wrapping is visible in the output.
        assert!(text.lines().any(|l| l.len() == 60));
        let back = read_fasta(&buf[..]).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn reads_arbitrary_wrapping_and_blank_lines() {
        let text = ">id desc here\nACG\n\nT\nACGT\n>second\nGG\n";
        let recs = read_fasta(text.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[0].id, "id");
        assert_eq!(recs[0].description, "desc here");
        assert_eq!(recs[0].seq, "ACGTACGT");
        assert_eq!(recs[1].seq, "GG");
    }

    #[test]
    fn data_before_header_is_an_error() {
        assert!(read_fasta("ACGT\n>x\n".as_bytes()).is_err());
        assert!(read_fasta(">\nACGT\n".as_bytes()).is_err());
    }
}

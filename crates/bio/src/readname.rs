//! Illumina-style read names.
//!
//! The paper (§5.1.1): "the name of an individual short read entry in a
//! FASTQ file is a string that combines the name of the sequencer machine
//! with the flowcell id, the lane and tile numbers on the flowcell, and
//! the x and y coordinates on the tile" — e.g. `IL4_855:1:1:954:659`.
//! Materializing these textual composite keys in every table is what
//! makes the 1:1 relational import *larger* than the source files
//! (Tables 1–2); the normalized schema replaces them with synthetic ids.

use std::fmt;

use seqdb_types::{DbError, Result};

/// A parsed read name: `machine_flowcell:lane:tile:x:y`.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ReadName {
    pub machine: String,
    pub flowcell: u32,
    pub lane: u32,
    pub tile: u32,
    pub x: u32,
    pub y: u32,
}

impl ReadName {
    pub fn new(machine: &str, flowcell: u32, lane: u32, tile: u32, x: u32, y: u32) -> ReadName {
        ReadName {
            machine: machine.to_string(),
            flowcell,
            lane,
            tile,
            x,
            y,
        }
    }

    /// Parse `IL4_855:1:1:954:659`.
    pub fn parse(s: &str) -> Result<ReadName> {
        let err = || DbError::InvalidData(format!("malformed read name '{s}'"));
        let mut parts = s.split(':');
        let head = parts.next().ok_or_else(err)?;
        let (machine, flowcell) = head.rsplit_once('_').ok_or_else(err)?;
        let flowcell: u32 = flowcell.parse().map_err(|_| err())?;
        let mut nums = [0u32; 4];
        for slot in nums.iter_mut() {
            *slot = parts.next().ok_or_else(err)?.parse().map_err(|_| err())?;
        }
        if parts.next().is_some() {
            return Err(err());
        }
        Ok(ReadName {
            machine: machine.to_string(),
            flowcell,
            lane: nums[0],
            tile: nums[1],
            x: nums[2],
            y: nums[3],
        })
    }
}

impl fmt::Display for ReadName {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}_{}:{}:{}:{}:{}",
            self.machine, self.flowcell, self.lane, self.tile, self.x, self.y
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_papers_example() {
        let n = ReadName::parse("IL4_855:1:1:954:659").unwrap();
        assert_eq!(n.machine, "IL4");
        assert_eq!(n.flowcell, 855);
        assert_eq!(n.lane, 1);
        assert_eq!(n.tile, 1);
        assert_eq!(n.x, 954);
        assert_eq!(n.y, 659);
        assert_eq!(n.to_string(), "IL4_855:1:1:954:659");
    }

    #[test]
    fn machine_names_with_underscores() {
        let n = ReadName::parse("HWI_EAS_99:2:33:10:20").unwrap();
        assert_eq!(n.machine, "HWI_EAS");
        assert_eq!(n.flowcell, 99);
    }

    #[test]
    fn rejects_garbage() {
        for bad in [
            "",
            "IL4:1:1:1:1",
            "IL4_855:1:1:954",
            "IL4_855:1:1:954:659:7",
            "IL4_x:1:1:1:1",
        ] {
            assert!(ReadName::parse(bad).is_err(), "{bad}");
        }
    }
}

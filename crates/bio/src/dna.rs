//! DNA alphabet and bit-packed sequence representations.
//!
//! [`PackedSeq`] is the "domain-specific short-read data type" the paper
//! proposes in §5.1.2/§6.1: 2 bits per base for N-free sequences (a
//! quarter of the text size), falling back to 4 bits per base when the
//! sequence contains ambiguous `N` calls.

use seqdb_types::{DbError, Result};

/// A single nucleotide (with `N` for no-calls).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Base {
    A = 0,
    C = 1,
    G = 2,
    T = 3,
    N = 4,
}

impl Base {
    pub fn from_char(c: char) -> Result<Base> {
        Ok(match c.to_ascii_uppercase() {
            'A' => Base::A,
            'C' => Base::C,
            'G' => Base::G,
            'T' => Base::T,
            'N' | '.' => Base::N,
            other => {
                return Err(DbError::InvalidData(format!(
                    "invalid nucleotide '{other}'"
                )))
            }
        })
    }

    pub fn to_char(self) -> char {
        match self {
            Base::A => 'A',
            Base::C => 'C',
            Base::G => 'G',
            Base::T => 'T',
            Base::N => 'N',
        }
    }

    /// Watson-Crick complement (N stays N).
    pub fn complement(self) -> Base {
        match self {
            Base::A => Base::T,
            Base::T => Base::A,
            Base::C => Base::G,
            Base::G => Base::C,
            Base::N => Base::N,
        }
    }

    fn from_code4(code: u8) -> Base {
        match code {
            0 => Base::A,
            1 => Base::C,
            2 => Base::G,
            3 => Base::T,
            _ => Base::N,
        }
    }
}

/// Parse an ASCII sequence into bases.
pub fn parse_bases(s: &str) -> Result<Vec<Base>> {
    s.chars().map(Base::from_char).collect()
}

/// Render bases as an ASCII string.
pub fn bases_to_string(b: &[Base]) -> String {
    b.iter().map(|x| x.to_char()).collect()
}

/// Reverse complement of an ASCII sequence (utility for aligners).
pub fn reverse_complement_str(s: &str) -> Result<String> {
    let bases = parse_bases(s)?;
    Ok(bases
        .iter()
        .rev()
        .map(|b| b.complement().to_char())
        .collect())
}

/// A bit-packed DNA sequence.
///
/// Packing is chosen per sequence: 2 bits/base when N-free (the ~4×
/// reduction of §5.1.2), 4 bits/base otherwise.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PackedSeq {
    /// Number of bases.
    len: u32,
    /// True = 2-bit packing (no Ns).
    two_bit: bool,
    data: Vec<u8>,
}

impl PackedSeq {
    // Not `std::str::FromStr`: callers shouldn't need a trait import for
    // the primary constructor.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(s: &str) -> Result<PackedSeq> {
        let bases = parse_bases(s)?;
        Ok(Self::from_bases(&bases))
    }

    pub fn from_bases(bases: &[Base]) -> PackedSeq {
        let two_bit = !bases.contains(&Base::N);
        let data = if two_bit {
            let mut data = vec![0u8; bases.len().div_ceil(4)];
            for (i, b) in bases.iter().enumerate() {
                data[i / 4] |= (*b as u8) << ((i % 4) * 2);
            }
            data
        } else {
            let mut data = vec![0u8; bases.len().div_ceil(2)];
            for (i, b) in bases.iter().enumerate() {
                data[i / 2] |= (*b as u8) << ((i % 2) * 4);
            }
            data
        };
        PackedSeq {
            len: bases.len() as u32,
            two_bit,
            data,
        }
    }

    pub fn len(&self) -> usize {
        self.len as usize
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the sequence uses the compact 2-bit encoding.
    pub fn is_two_bit(&self) -> bool {
        self.two_bit
    }

    /// Packed payload size in bytes.
    pub fn packed_bytes(&self) -> usize {
        self.data.len()
    }

    pub fn get(&self, i: usize) -> Base {
        debug_assert!(i < self.len());
        if self.two_bit {
            let code = (self.data[i / 4] >> ((i % 4) * 2)) & 0b11;
            Base::from_code4(code)
        } else {
            let code = (self.data[i / 2] >> ((i % 2) * 4)) & 0b1111;
            Base::from_code4(code)
        }
    }

    pub fn iter(&self) -> impl Iterator<Item = Base> + '_ {
        (0..self.len()).map(move |i| self.get(i))
    }

    pub fn to_string_seq(&self) -> String {
        self.iter().map(|b| b.to_char()).collect()
    }

    pub fn reverse_complement(&self) -> PackedSeq {
        let bases: Vec<Base> = self.iter().map(|b| b.complement()).collect();
        let rev: Vec<Base> = bases.into_iter().rev().collect();
        PackedSeq::from_bases(&rev)
    }

    /// Serialize: `len u32 | two_bit u8 | payload`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(5 + self.data.len());
        out.extend_from_slice(&self.len.to_le_bytes());
        out.push(self.two_bit as u8);
        out.extend_from_slice(&self.data);
        out
    }

    pub fn from_bytes(buf: &[u8]) -> Result<PackedSeq> {
        let err = || DbError::InvalidData("corrupt packed sequence".into());
        if buf.len() < 5 {
            return Err(err());
        }
        let len = u32::from_le_bytes(buf[..4].try_into().unwrap());
        let two_bit = buf[4] != 0;
        let expected = if two_bit {
            (len as usize).div_ceil(4)
        } else {
            (len as usize).div_ceil(2)
        };
        let data = buf.get(5..5 + expected).ok_or_else(err)?.to_vec();
        Ok(PackedSeq { len, two_bit, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_with_and_without_n() {
        for s in ["ACGT", "ACGTN", "", "GATTACA", "NNNN"] {
            let p = PackedSeq::from_str(s).unwrap();
            assert_eq!(p.to_string_seq(), s);
            assert_eq!(p.len(), s.len());
        }
    }

    #[test]
    fn two_bit_is_quarter_size() {
        // The §5.1.2 claim: bit-encoding ≈ 1/4 of the text size.
        let s = "ACGT".repeat(9); // 36bp read
        let p = PackedSeq::from_str(&s).unwrap();
        assert!(p.is_two_bit());
        assert_eq!(p.packed_bytes(), 9);
        let with_n = format!("{}N", &s[..35]);
        let p = PackedSeq::from_str(&with_n).unwrap();
        assert!(!p.is_two_bit());
        assert_eq!(p.packed_bytes(), 18);
    }

    #[test]
    fn reverse_complement() {
        let p = PackedSeq::from_str("AACGTN").unwrap();
        assert_eq!(p.reverse_complement().to_string_seq(), "NACGTT");
        assert_eq!(reverse_complement_str("GATTACA").unwrap(), "TGTAATC");
    }

    #[test]
    fn invalid_characters_rejected() {
        assert!(PackedSeq::from_str("ACGU").is_err());
        assert!(Base::from_char('x').is_err());
        assert_eq!(Base::from_char('a').unwrap(), Base::A);
    }

    #[test]
    fn serialization_roundtrip_and_corruption() {
        let p = PackedSeq::from_str("ACGTNACGT").unwrap();
        let b = p.to_bytes();
        assert_eq!(PackedSeq::from_bytes(&b).unwrap(), p);
        assert!(PackedSeq::from_bytes(&b[..3]).is_err());
        assert!(PackedSeq::from_bytes(&b[..b.len() - 1]).is_err());
    }

    proptest! {
        #[test]
        fn packing_roundtrips(s in "[ACGTN]{0,100}") {
            let p = PackedSeq::from_str(&s).unwrap();
            prop_assert_eq!(p.to_string_seq(), s.clone());
            let b = p.to_bytes();
            prop_assert_eq!(PackedSeq::from_bytes(&b).unwrap(), p);
        }

        #[test]
        fn revcomp_is_involution(s in "[ACGTN]{0,60}") {
            let p = PackedSeq::from_str(&s).unwrap();
            prop_assert_eq!(p.reverse_complement().reverse_complement(), p);
        }
    }
}

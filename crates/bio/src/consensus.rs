//! Consensus calling (the paper's tertiary analysis, §4.2.3 / Figure 6).
//!
//! Two algorithmically-identical implementations with different
//! *execution shapes*, matching the two plans §5.3.3 compares:
//!
//! * [`PileupConsensus`] — materialize the full per-position pileup
//!   (the `PivotAlignment` + GROUP BY plan: conceptually clean, blocking,
//!   "huge intermediate result");
//! * [`SlidingWindowConsensus`] — stream alignments in ascending start
//!   order and emit called bases as soon as no later alignment can reach
//!   them (the optimized `AssembleConsensus` UDA the paper proposes),
//!   holding only a read-length-sized window.
//!
//! Both call each base as the quality-weighted majority, with the call's
//! quality being the margin between the best and second-best base.

use seqdb_types::{DbError, Result};

use crate::quality::Phred;

/// Index a base for pileup accumulators; `None` for N (not counted).
fn base_index(b: u8) -> Option<usize> {
    match b {
        b'A' => Some(0),
        b'C' => Some(1),
        b'G' => Some(2),
        b'T' => Some(3),
        _ => None,
    }
}

const BASE_CHARS: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Quality-weighted call over one position's accumulated evidence.
/// Returns `(base, call_quality)`; positions without evidence are `N`.
pub fn call_base(quality_sums: &[u32; 4], coverage: u32) -> (u8, Phred) {
    if coverage == 0 {
        return (b'N', Phred(0));
    }
    let mut best = 0usize;
    for i in 1..4 {
        if quality_sums[i] > quality_sums[best] {
            best = i;
        }
    }
    let second = (0..4)
        .filter(|&i| i != best)
        .map(|i| quality_sums[i])
        .max()
        .unwrap_or(0);
    if quality_sums[best] == 0 {
        return (b'N', Phred(0));
    }
    let margin = quality_sums[best] - second;
    (BASE_CHARS[best], Phred::new(margin.min(93) as u8))
}

/// The result for one chromosome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConsensusSequence {
    pub seq: Vec<u8>,
    pub quals: Vec<Phred>,
}

impl ConsensusSequence {
    /// Fraction of called (non-N) positions.
    pub fn called_fraction(&self) -> f64 {
        if self.seq.is_empty() {
            return 0.0;
        }
        let called = self.seq.iter().filter(|&&b| b != b'N').count();
        called as f64 / self.seq.len() as f64
    }
}

// ----------------------------------------------------------------------
// Blocking pileup implementation.
// ----------------------------------------------------------------------

/// Full-pileup consensus for one chromosome: accumulates every aligned
/// base before calling anything. Memory: 20 bytes per reference
/// position — the "huge intermediate result" made concrete.
pub struct PileupConsensus {
    sums: Vec<[u32; 4]>,
    coverage: Vec<u32>,
}

impl PileupConsensus {
    pub fn new(chrom_len: usize) -> PileupConsensus {
        PileupConsensus {
            sums: vec![[0; 4]; chrom_len],
            coverage: vec![0; chrom_len],
        }
    }

    /// Accumulate one aligned read (`pos` = 0-based start).
    pub fn add(&mut self, pos: usize, seq: &[u8], quals: &[Phred]) -> Result<()> {
        if pos + seq.len() > self.sums.len() {
            return Err(DbError::InvalidData(format!(
                "alignment at {pos}+{} exceeds chromosome length {}",
                seq.len(),
                self.sums.len()
            )));
        }
        for (i, (&b, q)) in seq.iter().zip(quals.iter()).enumerate() {
            if let Some(bi) = base_index(b) {
                self.sums[pos + i][bi] += q.0 as u32;
                self.coverage[pos + i] += 1;
            }
        }
        Ok(())
    }

    /// Approximate bytes held by the accumulated pileup.
    pub fn intermediate_bytes(&self) -> usize {
        self.sums.len() * (std::mem::size_of::<[u32; 4]>() + 4)
    }

    pub fn finish(self) -> ConsensusSequence {
        let mut seq = Vec::with_capacity(self.sums.len());
        let mut quals = Vec::with_capacity(self.sums.len());
        for (s, &c) in self.sums.iter().zip(self.coverage.iter()) {
            let (b, q) = call_base(s, c);
            seq.push(b);
            quals.push(q);
        }
        ConsensusSequence { seq, quals }
    }
}

// ----------------------------------------------------------------------
// Streaming sliding-window implementation.
// ----------------------------------------------------------------------

/// Streaming consensus: alignments must arrive in ascending start
/// position. Holds only a window of positions that future alignments
/// could still touch; earlier positions are called and emitted eagerly.
pub struct SlidingWindowConsensus {
    chrom_len: usize,
    /// Absolute position of `window[0]`.
    window_start: usize,
    window: std::collections::VecDeque<([u32; 4], u32)>,
    out: ConsensusSequence,
    last_start: usize,
    /// High-water mark of the window length (the memory story for E2).
    pub max_window: usize,
}

impl SlidingWindowConsensus {
    pub fn new(chrom_len: usize) -> SlidingWindowConsensus {
        SlidingWindowConsensus {
            chrom_len,
            window_start: 0,
            window: std::collections::VecDeque::new(),
            out: ConsensusSequence {
                seq: Vec::with_capacity(chrom_len),
                quals: Vec::with_capacity(chrom_len),
            },
            last_start: 0,
            max_window: 0,
        }
    }

    /// Feed one alignment (ascending `pos` order required).
    pub fn add(&mut self, pos: usize, seq: &[u8], quals: &[Phred]) -> Result<()> {
        if pos < self.last_start {
            return Err(DbError::InvalidData(format!(
                "sliding-window consensus requires ordered input: {pos} after {}",
                self.last_start
            )));
        }
        if pos + seq.len() > self.chrom_len {
            return Err(DbError::InvalidData(format!(
                "alignment at {pos}+{} exceeds chromosome length {}",
                seq.len(),
                self.chrom_len
            )));
        }
        self.last_start = pos;
        // Everything strictly before `pos` can never be touched again.
        self.flush_below(pos);
        // Grow the window to cover this read.
        let need_end = pos + seq.len();
        while self.window_start + self.window.len() < need_end {
            self.window.push_back(([0; 4], 0));
        }
        self.max_window = self.max_window.max(self.window.len());
        for (i, (&b, q)) in seq.iter().zip(quals.iter()).enumerate() {
            if let Some(bi) = base_index(b) {
                let cell = &mut self.window[pos + i - self.window_start];
                cell.0[bi] += q.0 as u32;
                cell.1 += 1;
            }
        }
        Ok(())
    }

    fn flush_below(&mut self, pos: usize) {
        // Emit uncovered gap positions as N and called positions as
        // their consensus, up to `pos`.
        while self.window_start < pos {
            match self.window.pop_front() {
                Some((sums, cov)) => {
                    let (b, q) = call_base(&sums, cov);
                    self.out.seq.push(b);
                    self.out.quals.push(q);
                }
                None => {
                    self.out.seq.push(b'N');
                    self.out.quals.push(Phred(0));
                }
            }
            self.window_start += 1;
        }
    }

    /// Flush the tail and return the full-length consensus.
    pub fn finish(mut self) -> ConsensusSequence {
        self.flush_below(self.chrom_len);
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn q(v: u8, n: usize) -> Vec<Phred> {
        vec![Phred(v); n]
    }

    #[test]
    fn call_base_majority_and_margin() {
        let (b, qv) = call_base(&[90, 10, 0, 0], 4);
        assert_eq!(b, b'A');
        assert_eq!(qv, Phred(80));
        let (b, qv) = call_base(&[0, 0, 0, 0], 0);
        assert_eq!(b, b'N');
        assert_eq!(qv, Phred(0));
    }

    #[test]
    fn overlapping_alignments_vote_by_quality() {
        let mut p = PileupConsensus::new(10);
        // Two high-quality reads say ACGT at 0; one low-quality says TTTT.
        p.add(0, b"ACGT", &q(30, 4)).unwrap();
        p.add(0, b"ACGT", &q(30, 4)).unwrap();
        p.add(0, b"TTTT", &q(5, 4)).unwrap();
        let c = p.finish();
        assert_eq!(&c.seq[..4], b"ACGT");
        assert_eq!(&c.seq[4..], b"NNNNNN");
        assert!(c.quals[0] > Phred(0));
        assert!((c.called_fraction() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn sliding_window_equals_pileup() {
        // Deterministic pseudo-random overlapping alignments.
        let chrom_len = 500;
        let mut state = 12345u64;
        let mut rand = move |m: usize| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 33) as usize) % m
        };
        let mut alignments: Vec<(usize, Vec<u8>, Vec<Phred>)> = (0..200)
            .map(|_| {
                let pos = rand(chrom_len - 40);
                let len = 20 + rand(20);
                let seq: Vec<u8> = (0..len).map(|_| b"ACGT"[rand(4)]).collect();
                let quals: Vec<Phred> = (0..len).map(|_| Phred(rand(40) as u8 + 2)).collect();
                (pos, seq, quals)
            })
            .collect();
        alignments.sort_by_key(|(p, _, _)| *p);

        let mut pile = PileupConsensus::new(chrom_len);
        let mut slide = SlidingWindowConsensus::new(chrom_len);
        for (pos, seq, quals) in &alignments {
            pile.add(*pos, seq, quals).unwrap();
            slide.add(*pos, seq, quals).unwrap();
        }
        let a = pile.finish();
        let window_peak = slide.max_window;
        let b = slide.finish();
        assert_eq!(a, b);
        // The whole point: the window stays read-sized, not chromosome-sized.
        assert!(
            window_peak < 120,
            "window grew to {window_peak}, expected O(read length)"
        );
    }

    #[test]
    fn sliding_window_rejects_unordered_input() {
        let mut s = SlidingWindowConsensus::new(100);
        s.add(50, b"ACGT", &q(30, 4)).unwrap();
        assert!(s.add(10, b"ACGT", &q(30, 4)).is_err());
    }

    #[test]
    fn out_of_range_alignment_rejected() {
        let mut p = PileupConsensus::new(10);
        assert!(p.add(8, b"ACGT", &q(30, 4)).is_err());
        let mut s = SlidingWindowConsensus::new(10);
        assert!(s.add(8, b"ACGT", &q(30, 4)).is_err());
    }

    #[test]
    fn n_bases_do_not_vote() {
        let mut p = PileupConsensus::new(4);
        p.add(0, b"NNNN", &q(30, 4)).unwrap();
        p.add(0, b"ACGT", &q(10, 4)).unwrap();
        let c = p.finish();
        assert_eq!(&c.seq, b"ACGT");
    }

    #[test]
    fn gap_positions_are_n_in_streaming_mode() {
        let mut s = SlidingWindowConsensus::new(20);
        s.add(2, b"AAAA", &q(30, 4)).unwrap();
        s.add(10, b"CCCC", &q(30, 4)).unwrap();
        let c = s.finish();
        assert_eq!(&c.seq[..2], b"NN");
        assert_eq!(&c.seq[2..6], b"AAAA");
        assert_eq!(&c.seq[6..10], b"NNNN");
        assert_eq!(&c.seq[10..14], b"CCCC");
        assert_eq!(&c.seq[14..], b"NNNNNN");
    }
}

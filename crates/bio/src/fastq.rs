//! FASTQ parsing and writing.
//!
//! Two reader implementations mirror the two access paths the paper
//! benchmarks in §5.2:
//!
//! * [`SimpleFastqReader`] — line-at-a-time with per-record allocation
//!   (the "StreamReader" stored-procedure rung);
//! * [`ChunkedFastqParser`] — the §4.1 buffer-paging parser: reads the
//!   input in large chunks, parses entries out of an internal byte
//!   buffer, and when an entry straddles the chunk boundary memmoves the
//!   incomplete tail to the front of the buffer before fetching the next
//!   chunk (the `ReadChunk`/`ParseShortReadEntry` pseudocode, verbatim).
//!
//! The chunked parser separates *cursor advancement* ([`ChunkedFastqParser::next_ref`],
//! zero-copy — the TVF `MoveNext()`) from *record conversion*
//! ([`FastqEntryRef::to_record`] — the TVF `FillRow()`), because the
//! paper measures those costs separately.

use std::io::Read;

use seqdb_types::{DbError, Result};

use crate::quality::{Phred, QualityEncoding};

/// One owned FASTQ record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FastqRecord {
    /// Read name without the leading `@`.
    pub name: String,
    /// Base calls as ASCII.
    pub seq: String,
    /// Per-base qualities.
    pub quals: Vec<Phred>,
}

impl FastqRecord {
    pub fn len(&self) -> usize {
        self.seq.len()
    }

    pub fn is_empty(&self) -> bool {
        self.seq.is_empty()
    }
}

/// Serialize records in FASTQ format.
pub fn write_fastq<W: std::io::Write>(
    w: &mut W,
    records: impl IntoIterator<Item = FastqRecord>,
    encoding: QualityEncoding,
) -> Result<()> {
    for r in records {
        write_fastq_record(w, &r, encoding)?;
    }
    Ok(())
}

pub fn write_fastq_record<W: std::io::Write>(
    w: &mut W,
    r: &FastqRecord,
    encoding: QualityEncoding,
) -> Result<()> {
    if r.seq.len() != r.quals.len() {
        return Err(DbError::InvalidData(format!(
            "read {}: {} bases but {} qualities",
            r.name,
            r.seq.len(),
            r.quals.len()
        )));
    }
    writeln!(w, "@{}", r.name)?;
    writeln!(w, "{}", r.seq)?;
    writeln!(w, "+")?;
    writeln!(w, "{}", encoding.encode(&r.quals))?;
    Ok(())
}

// ----------------------------------------------------------------------
// Line-at-a-time reader (the allocating baseline).
// ----------------------------------------------------------------------

/// FASTQ reader that goes through `BufRead::read_line`, allocating per
/// record. Correct but deliberately naive (§5.2's 21-second rung).
pub struct SimpleFastqReader<R: std::io::BufRead> {
    reader: R,
    encoding: QualityEncoding,
    line: String,
}

impl<R: std::io::BufRead> SimpleFastqReader<R> {
    pub fn new(reader: R, encoding: QualityEncoding) -> Self {
        SimpleFastqReader {
            reader,
            encoding,
            line: String::new(),
        }
    }

    fn read_line(&mut self) -> Result<Option<String>> {
        self.line.clear();
        let n = self.reader.read_line(&mut self.line)?;
        if n == 0 {
            return Ok(None);
        }
        Ok(Some(self.line.trim_end_matches(['\n', '\r']).to_string()))
    }

    pub fn next_record(&mut self) -> Result<Option<FastqRecord>> {
        let Some(header) = self.read_line()? else {
            return Ok(None);
        };
        if header.is_empty() {
            // Tolerate a trailing blank line.
            return self.next_record();
        }
        let name = header
            .strip_prefix('@')
            .ok_or_else(|| DbError::InvalidData(format!("expected '@', got '{header}'")))?
            .to_string();
        let seq = self
            .read_line()?
            .ok_or_else(|| DbError::InvalidData(format!("read {name}: missing sequence")))?;
        let plus = self
            .read_line()?
            .ok_or_else(|| DbError::InvalidData(format!("read {name}: missing '+' line")))?;
        if !plus.starts_with('+') {
            return Err(DbError::InvalidData(format!(
                "read {name}: expected '+', got '{plus}'"
            )));
        }
        let qual_line = self
            .read_line()?
            .ok_or_else(|| DbError::InvalidData(format!("read {name}: missing qualities")))?;
        let quals = self.encoding.decode(&qual_line)?;
        if quals.len() != seq.len() {
            return Err(DbError::InvalidData(format!(
                "read {name}: {} bases but {} qualities",
                seq.len(),
                quals.len()
            )));
        }
        Ok(Some(FastqRecord { name, seq, quals }))
    }

    /// Drain all records.
    pub fn read_all(&mut self) -> Result<Vec<FastqRecord>> {
        let mut out = Vec::new();
        while let Some(r) = self.next_record()? {
            out.push(r);
        }
        Ok(out)
    }
}

// ----------------------------------------------------------------------
// Chunked buffer-paging parser (§4.1).
// ----------------------------------------------------------------------

/// Sequential chunk supplier — the `GetBytes` + `SequentialAccess`
/// contract of a FileStream (implemented for any `io::Read` here and for
/// FileStream readers in seqdb-core).
pub trait ChunkSource {
    /// Fill as much of `buf` as possible; 0 = end of data.
    fn read_chunk(&mut self, buf: &mut [u8]) -> Result<usize>;
}

/// Adapter making any `io::Read` a chunk source.
pub struct IoChunkSource<R: Read>(pub R);

impl<R: Read> ChunkSource for IoChunkSource<R> {
    fn read_chunk(&mut self, buf: &mut [u8]) -> Result<usize> {
        let mut n = 0;
        // Fill the chunk fully where possible (short reads at EOF only),
        // matching FileStream GetBytes semantics.
        while n < buf.len() {
            let r = self.0.read(&mut buf[n..])?;
            if r == 0 {
                break;
            }
            n += r;
        }
        Ok(n)
    }
}

/// Borrowed view of one FASTQ entry inside the parser's buffer.
#[derive(Debug, PartialEq, Eq)]
pub struct FastqEntryRef<'a> {
    pub name: &'a [u8],
    pub seq: &'a [u8],
    pub qual: &'a [u8],
}

impl FastqEntryRef<'_> {
    /// The `FillRow` step: convert the borrowed entry into an owned
    /// record (allocations + quality decoding happen here, and only
    /// here).
    pub fn to_record(&self, encoding: QualityEncoding) -> Result<FastqRecord> {
        let name = std::str::from_utf8(self.name)
            .map_err(|_| DbError::InvalidData("non-utf8 read name".into()))?
            .to_string();
        let seq = std::str::from_utf8(self.seq)
            .map_err(|_| DbError::InvalidData("non-utf8 sequence".into()))?
            .to_string();
        let qual_line = std::str::from_utf8(self.qual)
            .map_err(|_| DbError::InvalidData("non-utf8 qualities".into()))?;
        let quals = encoding.decode(qual_line)?;
        if quals.len() != seq.len() {
            return Err(DbError::InvalidData(format!(
                "read {name}: {} bases but {} qualities",
                seq.len(),
                quals.len()
            )));
        }
        Ok(FastqRecord { name, seq, quals })
    }
}

/// Byte ranges of one parsed entry within the buffer.
struct EntryBounds {
    name: (usize, usize),
    seq: (usize, usize),
    qual: (usize, usize),
    consumed: usize,
}

/// Default chunk size; the paper found chunked access ~3× faster than
/// line-at-a-time streaming.
pub const DEFAULT_CHUNK: usize = 64 * 1024;

/// The §4.1 chunked FASTQ parser.
pub struct ChunkedFastqParser<S: ChunkSource> {
    source: S,
    buffer: Vec<u8>,
    /// Valid bytes in `buffer`.
    bytes_read: usize,
    /// Parse cursor within the valid region.
    buffer_pos: usize,
    /// Bytes carried over from the previous chunk (the paging tail).
    buffer_offset: usize,
    eof: bool,
    /// Records parsed so far (diagnostics).
    pub records_parsed: u64,
    /// Chunks fetched so far (diagnostics; shows ~size/chunk I/O calls).
    pub chunks_read: u64,
}

impl<S: ChunkSource> ChunkedFastqParser<S> {
    pub fn new(source: S) -> Self {
        Self::with_chunk_size(source, DEFAULT_CHUNK)
    }

    pub fn with_chunk_size(source: S, chunk: usize) -> Self {
        ChunkedFastqParser {
            source,
            buffer: vec![0u8; chunk.max(256)],
            bytes_read: 0,
            buffer_pos: 0,
            buffer_offset: 0,
            eof: false,
            records_parsed: 0,
            chunks_read: 0,
        }
    }

    /// The paper's `ReadChunk()`: fill the buffer after any carried-over
    /// tail bytes.
    fn read_chunk(&mut self) -> Result<usize> {
        let len = self.buffer.len() - self.buffer_offset;
        let read = self
            .source
            .read_chunk(&mut self.buffer[self.buffer_offset..][..len])?;
        self.chunks_read += 1;
        self.buffer_pos = 0;
        let total = if read > 0 || self.buffer_offset > 0 {
            let t = read + self.buffer_offset;
            self.buffer_offset = 0;
            t
        } else {
            0
        };
        if read == 0 {
            self.eof = true;
        }
        Ok(total)
    }

    /// The paper's `MoveNext()`: advance to the next entry, returning its
    /// bounds, handling the buffer-wrap paging.
    fn move_next(&mut self) -> Result<Option<EntryBounds>> {
        if self.bytes_read == 0 && !self.eof {
            self.bytes_read = self.read_chunk()?;
        }
        while self.bytes_read > 0 {
            if self.buffer_pos >= self.bytes_read {
                if self.eof {
                    return Ok(None);
                }
                self.bytes_read = self.read_chunk()?;
                continue;
            }
            match parse_entry(&self.buffer[..self.bytes_read], self.buffer_pos)? {
                Some(bounds) => {
                    self.buffer_pos = bounds.consumed;
                    self.records_parsed += 1;
                    return Ok(Some(bounds));
                }
                None => {
                    // Incomplete entry at the end of the chunk.
                    if self.eof {
                        // Trailing whitespace is fine; a partial record is not.
                        let tail = &self.buffer[self.buffer_pos..self.bytes_read];
                        if tail.iter().all(|b| b.is_ascii_whitespace()) {
                            return Ok(None);
                        }
                        return Err(DbError::InvalidData(
                            "truncated FASTQ entry at end of input".into(),
                        ));
                    }
                    // The paging algorithm: move the incomplete entry to
                    // the start of the buffer and refill behind it.
                    let tail_len = self.bytes_read - self.buffer_pos;
                    if tail_len >= self.buffer.len() {
                        // Entry bigger than the buffer: grow it.
                        self.buffer.resize(self.buffer.len() * 2, 0);
                    }
                    self.buffer.copy_within(self.buffer_pos..self.bytes_read, 0);
                    self.buffer_offset = tail_len;
                    self.bytes_read = self.read_chunk()?;
                }
            }
        }
        Ok(None)
    }

    /// Next entry as borrowed slices (no conversion cost).
    pub fn next_ref(&mut self) -> Result<Option<FastqEntryRef<'_>>> {
        match self.move_next()? {
            None => Ok(None),
            Some(b) => Ok(Some(FastqEntryRef {
                name: &self.buffer[b.name.0..b.name.1],
                seq: &self.buffer[b.seq.0..b.seq.1],
                qual: &self.buffer[b.qual.0..b.qual.1],
            })),
        }
    }

    /// Next entry converted to an owned record (`MoveNext` + `FillRow`).
    pub fn next_record(&mut self, encoding: QualityEncoding) -> Result<Option<FastqRecord>> {
        match self.move_next()? {
            None => Ok(None),
            Some(b) => {
                let e = FastqEntryRef {
                    name: &self.buffer[b.name.0..b.name.1],
                    seq: &self.buffer[b.seq.0..b.seq.1],
                    qual: &self.buffer[b.qual.0..b.qual.1],
                };
                Ok(Some(e.to_record(encoding)?))
            }
        }
    }

    /// Count entries without any conversion — the `SELECT COUNT(*)`
    /// shape of the §5.2 experiment.
    pub fn count_remaining(&mut self) -> Result<u64> {
        let mut n = 0;
        while self.move_next()?.is_some() {
            n += 1;
        }
        Ok(n)
    }
}

/// The paper's `ParseShortReadEntry`: parse one 4-line entry starting at
/// `pos`. `Ok(None)` = the entry continues past the end of the buffer.
fn parse_entry(buf: &[u8], mut pos: usize) -> Result<Option<EntryBounds>> {
    // Skip blank lines between entries.
    while pos < buf.len() && (buf[pos] == b'\n' || buf[pos] == b'\r') {
        pos += 1;
    }
    if pos >= buf.len() {
        return Ok(None);
    }
    if buf[pos] != b'@' {
        return Err(DbError::InvalidData(format!(
            "expected '@' at FASTQ entry start, got {:?}",
            buf[pos] as char
        )));
    }
    let line = |start: usize| -> Option<(usize, usize, usize)> {
        // (content_start, content_end, next_line_start)
        let nl = buf[start..].iter().position(|&b| b == b'\n')?;
        let mut end = start + nl;
        let next = end + 1;
        if end > start && buf[end - 1] == b'\r' {
            end -= 1;
        }
        Some((start, end, next))
    };
    let Some((h_start, h_end, p1)) = line(pos) else {
        return Ok(None);
    };
    let Some((s_start, s_end, p2)) = line(p1) else {
        return Ok(None);
    };
    let Some((plus_start, plus_end, p3)) = line(p2) else {
        return Ok(None);
    };
    let Some((q_start, q_end, p4)) = line(p3) else {
        // The final line may lack a trailing newline only at EOF — the
        // caller retries with more data first, and accepts the tail at
        // EOF via the whitespace check; be strict here and require the
        // newline unless the qual line would complete the buffer exactly.
        return Ok(None);
    };
    if plus_start >= plus_end || buf[plus_start] != b'+' {
        return Err(DbError::InvalidData(
            "malformed FASTQ entry: missing '+' separator".into(),
        ));
    }
    Ok(Some(EntryBounds {
        name: (h_start + 1, h_end),
        seq: (s_start, s_end),
        qual: (q_start, q_end),
        consumed: p4,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::quality::QualityEncoding as QE;

    fn sample(n: usize) -> (String, Vec<FastqRecord>) {
        let mut text = String::new();
        let mut recs = Vec::new();
        for i in 0..n {
            let seq = if i % 7 == 0 {
                "ACGTNACGTNAC"
            } else {
                "GATTACAGATTA"
            };
            let quals: Vec<Phred> = (0..seq.len())
                .map(|j| Phred((30 - j as u8).min(40)))
                .collect();
            let r = FastqRecord {
                name: format!("IL4_855:1:{}:{}:{}", i / 100 + 1, i, i * 2),
                seq: seq.to_string(),
                quals,
            };
            let mut buf = Vec::new();
            write_fastq_record(&mut buf, &r, QE::Sanger).unwrap();
            text.push_str(std::str::from_utf8(&buf).unwrap());
            recs.push(r);
        }
        (text, recs)
    }

    #[test]
    fn simple_reader_roundtrip() {
        let (text, recs) = sample(25);
        let mut r = SimpleFastqReader::new(text.as_bytes(), QE::Sanger);
        let got = r.read_all().unwrap();
        assert_eq!(got, recs);
    }

    #[test]
    fn chunked_parser_matches_simple_reader_at_awkward_chunk_sizes() {
        let (text, recs) = sample(40);
        // Chunk sizes chosen to hit every boundary condition, including
        // chunks smaller than one entry (forces paging + buffer growth).
        for chunk in [256, 257, 300, 1024, 64 * 1024] {
            let src = IoChunkSource(text.as_bytes());
            let mut p = ChunkedFastqParser::with_chunk_size(src, chunk);
            let mut got = Vec::new();
            while let Some(r) = p.next_record(QE::Sanger).unwrap() {
                got.push(r);
            }
            assert_eq!(got, recs, "chunk={chunk}");
            assert_eq!(p.records_parsed, 40);
        }
    }

    #[test]
    fn paging_moves_partial_entries_across_chunks() {
        let (text, _) = sample(10);
        // A chunk size that is guaranteed to split entries.
        let src = IoChunkSource(text.as_bytes());
        let mut p = ChunkedFastqParser::with_chunk_size(src, 256);
        let n = p.count_remaining().unwrap();
        assert_eq!(n, 10);
        assert!(p.chunks_read >= 2, "must have paged across chunks");
    }

    #[test]
    fn count_without_conversion() {
        let (text, _) = sample(100);
        let mut p = ChunkedFastqParser::new(IoChunkSource(text.as_bytes()));
        assert_eq!(p.count_remaining().unwrap(), 100);
    }

    #[test]
    fn truncated_entry_is_an_error() {
        let text = "@r1\nACGT\n+\nIIII\n@r2\nACG";
        let mut p = ChunkedFastqParser::new(IoChunkSource(text.as_bytes()));
        assert!(p.next_ref().unwrap().is_some());
        assert!(p.next_ref().is_err());
    }

    #[test]
    fn malformed_entries_error_in_both_readers() {
        let text = "ACGT\n+\nIIII\n";
        let mut s = SimpleFastqReader::new(text.as_bytes(), QE::Sanger);
        assert!(s.next_record().is_err());
        let mut p = ChunkedFastqParser::new(IoChunkSource(text.as_bytes()));
        assert!(p.next_ref().is_err());

        let bad_plus = "@r\nACGT\nIIII\nIIII\n";
        let mut p = ChunkedFastqParser::new(IoChunkSource(bad_plus.as_bytes()));
        assert!(p.next_ref().is_err());
    }

    #[test]
    fn quality_length_mismatch_detected_at_fill_row() {
        let text = "@r\nACGT\n+\nIII\n";
        let mut p = ChunkedFastqParser::new(IoChunkSource(text.as_bytes()));
        // move_next succeeds (bounds only)...
        let e = p.next_ref().unwrap().unwrap();
        // ...the FillRow conversion catches the mismatch.
        assert!(e.to_record(QE::Sanger).is_err());
    }

    #[test]
    fn crlf_line_endings() {
        let text = "@r1\r\nACGT\r\n+\r\nIIII\r\n";
        let mut p = ChunkedFastqParser::new(IoChunkSource(text.as_bytes()));
        let r = p.next_record(QE::Sanger).unwrap().unwrap();
        assert_eq!(r.seq, "ACGT");
        assert_eq!(r.name, "r1");
    }

    #[test]
    fn entry_without_trailing_newline_at_eof() {
        let text = "@r1\nACGT\n+\nIIII";
        let mut p = ChunkedFastqParser::new(IoChunkSource(text.as_bytes()));
        // Strict: the final qual line has no newline; the parser reports
        // a truncated entry rather than silently guessing.
        assert!(p.next_ref().is_err());
    }
}

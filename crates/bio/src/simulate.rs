//! Sequencing simulators — the stand-in for real Illumina lane data.
//!
//! Two generators match the paper's two scenarios:
//!
//! * [`ReadSimulator`] — re-sequencing (1000 Genomes, §2.1.1): reads are
//!   sampled uniformly from the whole reference, so almost every read is
//!   unique (Table 2's workload property). Positional quality decay and
//!   a per-base error model give the quality strings realistic shape.
//! * [`DgeSimulator`] — digital gene expression (§2.1.2): a Zipf
//!   distribution over genes produces tags that repeat heavily ("only a
//!   fraction of the genome is active in a cell and tags are repeating"),
//!   which is what makes GROUP BY binning and dictionary compression
//!   effective in Table 1 and §5.3.2.
//!
//! Read names follow the flowcell model of §2.1: each lane has ~300
//! tiles, reads get tile and x/y coordinates, and names render as
//! `machine_flowcell:lane:tile:x:y`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fastq::FastqRecord;
use crate::quality::Phred;
use crate::readname::ReadName;
use crate::reference::ReferenceGenome;

const BASES: [u8; 4] = [b'A', b'C', b'G', b'T'];

/// Strand a read was sampled from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimStrand {
    Forward,
    Reverse,
}

/// A simulated read plus its ground truth (for aligner validation).
#[derive(Debug, Clone)]
pub struct SimulatedRead {
    pub record: FastqRecord,
    pub true_chrom: usize,
    pub true_pos: usize,
    pub strand: SimStrand,
}

/// Configuration shared by both simulators.
#[derive(Debug, Clone)]
pub struct LaneConfig {
    pub machine: String,
    pub flowcell: u32,
    pub lane: u32,
    pub read_len: usize,
    /// Phred quality at the first cycle.
    pub base_quality: u8,
    /// Quality lost per cycle (Illumina reads degrade along the read).
    pub quality_decay: f64,
    /// Extra error probability on top of the quality-implied one.
    pub extra_error: f64,
}

impl Default for LaneConfig {
    fn default() -> LaneConfig {
        LaneConfig {
            machine: "IL4".into(),
            flowcell: 855,
            lane: 1,
            read_len: 36,
            base_quality: 35,
            quality_decay: 0.45,
            extra_error: 0.001,
        }
    }
}

impl LaneConfig {
    /// Generate the read name for the `i`-th read of the lane: tiles of
    /// ~300 per lane, pseudo-random coordinates.
    fn name_for(&self, i: u64, rng: &mut StdRng) -> ReadName {
        ReadName::new(
            &self.machine,
            self.flowcell,
            self.lane,
            (i / 20_000 % 300 + 1) as u32,
            rng.gen_range(0..2048),
            rng.gen_range(0..2048),
        )
    }

    /// Quality profile for one read: decaying with cycle + jitter.
    fn qualities(&self, rng: &mut StdRng) -> Vec<Phred> {
        (0..self.read_len)
            .map(|cycle| {
                let q = self.base_quality as f64 - self.quality_decay * cycle as f64
                    + rng.gen_range(-2.0f64..2.0);
                Phred::new(q.max(2.0) as u8)
            })
            .collect()
    }
}

/// Apply the error model to a sampled fragment.
fn corrupt(fragment: &mut [u8], quals: &[Phred], extra_error: f64, rng: &mut StdRng) {
    for (i, base) in fragment.iter_mut().enumerate() {
        let p = quals[i].error_prob() + extra_error;
        if rng.gen_bool(p.min(0.5)) {
            if quals[i].0 <= 5 && rng.gen_bool(0.3) {
                *base = b'N'; // no-call at very low quality
            } else {
                // Substitute with a different base.
                let mut b = BASES[rng.gen_range(0..4usize)];
                while b == *base {
                    b = BASES[rng.gen_range(0..4usize)];
                }
                *base = b;
            }
        }
    }
}

fn reverse_complement_ascii(seq: &[u8]) -> Vec<u8> {
    seq.iter()
        .rev()
        .map(|b| match b {
            b'A' => b'T',
            b'T' => b'A',
            b'C' => b'G',
            b'G' => b'C',
            other => *other,
        })
        .collect()
}

/// Re-sequencing simulator: uniform sampling over the reference.
pub struct ReadSimulator {
    pub config: LaneConfig,
    rng: StdRng,
    counter: u64,
}

impl ReadSimulator {
    pub fn new(config: LaneConfig, seed: u64) -> ReadSimulator {
        ReadSimulator {
            config,
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// Sample one read from the reference.
    pub fn next_read(&mut self, reference: &ReferenceGenome) -> SimulatedRead {
        let rl = self.config.read_len;
        // Chromosome weighted by length.
        let total: usize = reference
            .chromosomes
            .iter()
            .map(|c| c.len().saturating_sub(rl))
            .sum::<usize>()
            .max(1);
        let mut target = self.rng.gen_range(0..total);
        let mut chrom_idx = 0;
        for (i, c) in reference.chromosomes.iter().enumerate() {
            let span = c.len().saturating_sub(rl);
            if target < span {
                chrom_idx = i;
                break;
            }
            target -= span;
        }
        let chrom = &reference.chromosomes[chrom_idx];
        let pos = target.min(chrom.len().saturating_sub(rl));
        let mut fragment = chrom.seq[pos..pos + rl].to_vec();
        let strand = if self.rng.gen_bool(0.5) {
            fragment = reverse_complement_ascii(&fragment);
            SimStrand::Reverse
        } else {
            SimStrand::Forward
        };
        let quals = self.config.qualities(&mut self.rng);
        corrupt(
            &mut fragment,
            &quals,
            self.config.extra_error,
            &mut self.rng,
        );
        let name = self.config.name_for(self.counter, &mut self.rng);
        self.counter += 1;
        SimulatedRead {
            record: FastqRecord {
                name: name.to_string(),
                seq: String::from_utf8(fragment).expect("ASCII bases"),
                quals,
            },
            true_chrom: chrom_idx,
            true_pos: pos,
            strand,
        }
    }

    /// Sample a whole lane.
    pub fn lane(&mut self, reference: &ReferenceGenome, n_reads: usize) -> Vec<SimulatedRead> {
        (0..n_reads).map(|_| self.next_read(reference)).collect()
    }
}

/// A simulated gene/transcript for the DGE scenario.
#[derive(Debug, Clone)]
pub struct SimGene {
    pub gene_id: u32,
    pub chrom: usize,
    pub start: usize,
    pub len: usize,
    /// The gene's characteristic tag (fixed offset near the 3' end).
    pub tag: String,
    /// Relative expression weight (Zipf).
    pub weight: f64,
}

/// Digital gene expression simulator.
pub struct DgeSimulator {
    pub config: LaneConfig,
    pub genes: Vec<SimGene>,
    cumulative: Vec<f64>,
    rng: StdRng,
    counter: u64,
    /// Ground-truth tag emission counts per gene.
    pub true_counts: Vec<u64>,
}

impl DgeSimulator {
    /// Pick `n_genes` gene loci on the reference and assign Zipf
    /// expression weights with exponent `zipf_s` (~1.0 is typical).
    pub fn new(
        config: LaneConfig,
        reference: &ReferenceGenome,
        n_genes: usize,
        zipf_s: f64,
        seed: u64,
    ) -> DgeSimulator {
        let mut rng = StdRng::seed_from_u64(seed);
        let tag_len = config.read_len;
        let mut genes = Vec::with_capacity(n_genes);
        for g in 0..n_genes {
            // Place the gene on a random chromosome with room for it.
            let (chrom, start, len) = loop {
                let ci = rng.gen_range(0..reference.chromosomes.len());
                let c = &reference.chromosomes[ci];
                let glen = rng.gen_range(500usize..2000).min(c.len() / 2);
                if c.len() > glen + tag_len + 10 {
                    let start = rng.gen_range(0..c.len() - glen - tag_len);
                    break (ci, start, glen);
                }
            };
            // Tag = the CATG-anchored fragment near the 3' end (here: a
            // fixed offset before the gene end, like SAGE/DGE tags).
            let c = &reference.chromosomes[chrom];
            let tag_start = start + len - tag_len;
            let tag = String::from_utf8(c.seq[tag_start..tag_start + tag_len].to_vec())
                .expect("ASCII bases");
            genes.push(SimGene {
                gene_id: g as u32 + 1,
                chrom,
                start,
                len,
                tag,
                weight: 1.0 / ((g + 1) as f64).powf(zipf_s),
            });
        }
        let mut cumulative = Vec::with_capacity(n_genes);
        let mut acc = 0.0;
        for g in &genes {
            acc += g.weight;
            cumulative.push(acc);
        }
        DgeSimulator {
            config,
            true_counts: vec![0; genes.len()],
            genes,
            cumulative,
            rng,
            counter: 0,
        }
    }

    fn sample_gene(&mut self) -> usize {
        let total = *self.cumulative.last().expect("at least one gene");
        let x = self.rng.gen_range(0.0..total);
        self.cumulative
            .partition_point(|&c| c < x)
            .min(self.genes.len() - 1)
    }

    /// Emit one tag read.
    pub fn next_tag(&mut self) -> FastqRecord {
        let gi = self.sample_gene();
        self.true_counts[gi] += 1;
        let mut fragment = self.genes[gi].tag.clone().into_bytes();
        let quals = self.config.qualities(&mut self.rng);
        corrupt(
            &mut fragment,
            &quals,
            self.config.extra_error,
            &mut self.rng,
        );
        let name = self.config.name_for(self.counter, &mut self.rng);
        self.counter += 1;
        FastqRecord {
            name: name.to_string(),
            seq: String::from_utf8(fragment).expect("ASCII bases"),
            quals,
        }
    }

    /// Emit a whole lane of tags.
    pub fn lane(&mut self, n_tags: usize) -> Vec<FastqRecord> {
        (0..n_tags).map(|_| self.next_tag()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn genome() -> ReferenceGenome {
        ReferenceGenome::synthetic(11, 4, 80_000)
    }

    #[test]
    fn resequencing_reads_match_reference_modulo_errors() {
        let g = genome();
        let mut sim = ReadSimulator::new(LaneConfig::default(), 5);
        let reads = sim.lane(&g, 200);
        assert_eq!(reads.len(), 200);
        let mut exact = 0;
        for r in &reads {
            assert_eq!(r.record.seq.len(), 36);
            assert_eq!(r.record.quals.len(), 36);
            let chrom = &g.chromosomes[r.true_chrom];
            let truth = &chrom.seq[r.true_pos..r.true_pos + 36];
            let read_fwd = match r.strand {
                SimStrand::Forward => r.record.seq.clone().into_bytes(),
                SimStrand::Reverse => reverse_complement_ascii(r.record.seq.as_bytes()),
            };
            let mismatches = truth
                .iter()
                .zip(read_fwd.iter())
                .filter(|(a, b)| a != b)
                .count();
            assert!(mismatches <= 12, "error model out of control: {mismatches}");
            if mismatches == 0 {
                exact += 1;
            }
        }
        assert!(exact > 100, "most reads should be error-light: {exact}");
    }

    #[test]
    fn resequencing_reads_are_mostly_unique() {
        // Table 2's workload property.
        let g = genome();
        let mut sim = ReadSimulator::new(LaneConfig::default(), 6);
        let reads = sim.lane(&g, 2000);
        let distinct: std::collections::HashSet<&str> =
            reads.iter().map(|r| r.record.seq.as_str()).collect();
        assert!(
            distinct.len() as f64 > 0.9 * reads.len() as f64,
            "{} of {}",
            distinct.len(),
            reads.len()
        );
    }

    #[test]
    fn dge_tags_repeat_heavily_with_zipf_shape() {
        // Table 1 / §5.3.2 workload property.
        let g = genome();
        let mut sim = DgeSimulator::new(LaneConfig::default(), &g, 50, 1.0, 9);
        let tags = sim.lane(5000);
        let mut counts: std::collections::HashMap<&str, u64> = std::collections::HashMap::new();
        for t in &tags {
            *counts.entry(t.seq.as_str()).or_default() += 1;
        }
        assert!(
            counts.len() < 1000,
            "tags must repeat: {} distinct of 5000",
            counts.len()
        );
        // The most frequent tag dominates (Zipf head).
        let max = counts.values().max().copied().unwrap();
        assert!(max > 500, "Zipf head too flat: {max}");
        // Ground truth accounting adds up.
        assert_eq!(sim.true_counts.iter().sum::<u64>(), 5000);
    }

    #[test]
    fn read_names_follow_the_flowcell_model() {
        let g = genome();
        let mut sim = ReadSimulator::new(LaneConfig::default(), 1);
        let r = sim.next_read(&g);
        let name = crate::readname::ReadName::parse(&r.record.name).unwrap();
        assert_eq!(name.machine, "IL4");
        assert_eq!(name.flowcell, 855);
        assert_eq!(name.lane, 1);
        assert!(name.tile >= 1 && name.tile <= 300);
    }

    #[test]
    fn simulators_are_deterministic_per_seed() {
        let g = genome();
        let a = ReadSimulator::new(LaneConfig::default(), 42).lane(&g, 10);
        let b = ReadSimulator::new(LaneConfig::default(), 42).lane(&g, 10);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.record, y.record);
        }
    }
}

//! seqdb genomics substrate.
//!
//! Everything the paper's experiments need from the bioinformatics world,
//! built from scratch:
//!
//! * DNA alphabets and bit-packed sequences ([`dna`]) — including the
//!   2-bit packing the paper proposes as a domain-specific sequence type
//!   ("a bit-encoding of the sequences could reduce the size to just
//!   about a quarter", §5.1.2);
//! * Phred quality scores and their ASCII codecs ([`quality`]);
//! * Illumina-style read names (`machine:flowcell:lane:tile:x:y`,
//!   [`readname`]) whose materialization as textual composite keys causes
//!   the 1:1-import blow-up of Tables 1–2;
//! * FASTQ and FASTA I/O ([`fastq`], [`fasta`]), including the chunked
//!   buffer-paging parser of §4.1;
//! * synthetic reference genomes and read simulators ([`reference`],
//!   [`simulate`]) standing in for the Sanger Institute lane data;
//! * a MAQ-like seed-and-extend short-read aligner ([`align`]) usable
//!   in-process or as a file-centric external tool with proprietary
//!   binary intermediates ([`tool`]);
//! * quality-weighted consensus calling ([`consensus`]), both as a
//!   blocking pileup and as the sliding-window streaming algorithm the
//!   paper proposes for its `AssembleConsensus` aggregate.

pub mod align;
pub mod consensus;
pub mod dna;
pub mod fasta;
pub mod fastq;
pub mod quality;
pub mod readname;
pub mod reference;
pub mod simulate;
pub mod snp;
pub mod tool;

pub use align::{Aligner, Alignment, Strand};
pub use dna::{Base, PackedSeq};
pub use fastq::FastqRecord;
pub use quality::Phred;
pub use readname::ReadName;
pub use reference::ReferenceGenome;

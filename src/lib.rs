//! # seqdb — Data Management for High-Throughput Genomics
//!
//! A from-scratch Rust reproduction of *Röhm & Blakeley, "Data Management
//! for High-Throughput Genomics" (CIDR 2009)*: an extensible relational
//! engine (FileStream BLOBs, row/page compression, UDF/TVF/UDA
//! extensibility, parallel plans) plus the paper's genomic data platform
//! and every experiment from its evaluation section.
//!
//! This facade crate re-exports the workspace crates under stable paths:
//!
//! * [`types`] — values, rows, schemas, errors
//! * [`storage`] — pages, heap files, B+-trees, compression, FileStream
//! * [`engine`] — iterator-model query processor and UDX contracts
//! * [`sql`] — T-SQL-subset parser and binder
//! * [`server`] — SQL wire server (length-prefixed protocol) and client
//! * [`bio`] — genomics substrate (FASTQ, simulation, alignment, consensus)
//! * [`core`] — the paper's platform: schemas, physical designs, queries
//!
//! ## Quick start
//!
//! ```
//! use seqdb::engine::Database;
//! use seqdb::sql::DatabaseSqlExt;
//!
//! let db = Database::in_memory();
//! db.execute_sql("CREATE TABLE t (id INT NOT NULL, seq VARCHAR(64))").unwrap();
//! db.execute_sql("INSERT INTO t VALUES (1, 'ACGT'), (2, 'GGTA')").unwrap();
//! let rows = db.query_sql("SELECT COUNT(*) FROM t").unwrap();
//! assert_eq!(rows.rows[0][0], seqdb::types::Value::Int(2));
//! ```

pub use seqdb_bio as bio;
pub use seqdb_core as core;
pub use seqdb_engine as engine;
pub use seqdb_server as server;
pub use seqdb_sql as sql;
pub use seqdb_storage as storage;
pub use seqdb_types as types;

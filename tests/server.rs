//! End-to-end tests for the wire server: query roundtrips, per-session
//! `SET` isolation, the typed overload rejections, idle timeouts,
//! auto-`KILL` on client disconnect (through every spill path), seeded
//! network fault injection, slow-reader backpressure and graceful
//! drain. Everything a deployment would hit before lunch.

use std::sync::Arc;
use std::time::{Duration, Instant};

use seqdb::engine::{Database, ExecContext, TableFunction, TvfCursor};
use seqdb::server::protocol::read_frame;
use seqdb::server::{Client, Server, ServerConfig};
use seqdb::sql::DatabaseSqlExt;
use seqdb::storage::{FaultClock, FaultPlan, PAGE_SIZE};
use seqdb::types::{Column, DataType, DbError, Result, Row, Schema, Value};

/// `NUMBERS(n)` emits 0..n — with a huge `n`, an effectively endless
/// stream for the disconnect-mid-statement tests.
struct Numbers;

struct NumbersCursor {
    next: i64,
    limit: i64,
}

impl TvfCursor for NumbersCursor {
    fn move_next(&mut self) -> Result<bool> {
        self.next += 1;
        Ok(self.next <= self.limit)
    }
    fn fill_row(&mut self) -> Result<Row> {
        Ok(Row::new(vec![Value::Int(self.next - 1)]))
    }
}

impl TableFunction for Numbers {
    fn name(&self) -> &str {
        "NUMBERS"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![Column::new("n", DataType::Int)]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        Ok(Box::new(NumbersCursor {
            next: 0,
            limit: args[0].as_int()?,
        }))
    }
}

/// 12k distinct ids: over the parallel threshold, and far more groups
/// than a tight budget holds resident, so tiny budgets must spill.
fn setup_db() -> Arc<Database> {
    let db = Database::in_memory();
    db.catalog().register_table_fn(Arc::new(Numbers));
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, grp INT, v INT)")
        .unwrap();
    let rows: Vec<Row> = (0..12_000i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 10), Value::Int(i)]))
        .collect();
    db.insert_rows("t", &rows).unwrap();
    db
}

fn quick_cfg() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    }
}

fn start(db: &Arc<Database>, cfg: ServerConfig) -> Server {
    Server::start(db.clone(), "127.0.0.1:0", cfg).unwrap()
}

/// The CI fault seed, so the `server-robustness` matrix exercises
/// different short-read cut points per job.
fn fault_seed() -> u64 {
    std::env::var("SEQDB_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

// ----------------------------------------------------------------------
// Roundtrips, DMVs over the wire, typed statement errors
// ----------------------------------------------------------------------

#[test]
fn wire_roundtrip_dmvs_and_typed_errors() {
    let db = setup_db();
    let server = start(&db, quick_cfg());
    let mut c = Client::connect(server.addr()).unwrap();

    // DML and a result set with every step typed end to end.
    let r = c.query("INSERT INTO t VALUES (90001, 1, 7)").unwrap();
    assert_eq!(r.affected, 1);
    let r = c.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(12_001));
    assert_eq!(r.schema.columns().len(), 1);

    // A result wider than one frame (ROWS_PER_FRAME = 512) arrives
    // complete and ordered.
    let r = c.query("SELECT id FROM t ORDER BY id").unwrap();
    assert_eq!(r.rows.len(), 12_001);
    assert_eq!(r.rows[0][0], Value::Int(0));
    assert_eq!(r.rows[12_000][0], Value::Int(90_001));

    // Parse errors come back typed; the connection survives them.
    let err = c.query("SELEKT garbage FROM nowhere").unwrap_err();
    assert!(matches!(err, DbError::Parse(_)), "{err}");
    let err = c.query("SELECT nope FROM missing_table").unwrap_err();
    assert!(
        matches!(err, DbError::NotFound(_) | DbError::Schema(_)),
        "{err}"
    );
    assert!(c.query("SELECT COUNT(*) FROM t").is_ok());

    // DM_EXEC_CONNECTIONS sees this connection, executing, with a peer.
    let mut probe = Client::connect(server.addr()).unwrap();
    let r = probe
        .query("SELECT connection_id, peer_addr, session_id, state, idle_ms FROM DM_EXEC_CONNECTIONS()")
        .unwrap();
    assert_eq!(r.rows.len(), 2, "both live connections visible");
    let states: Vec<String> = r
        .rows
        .iter()
        .map(|row| row[3].as_text().unwrap().to_string())
        .collect();
    assert!(
        states.iter().any(|s| s == "executing"),
        "the probing connection itself is executing: {states:?}"
    );
    assert!(r
        .rows
        .iter()
        .all(|row| row[1].as_text().unwrap().contains("127.0.0.1")));

    // ...and the gauge agrees.
    let r = probe
        .query("SELECT counter_name, value FROM DM_OS_PERFORMANCE_COUNTERS()")
        .unwrap();
    let gauge = r
        .rows
        .iter()
        .find(|row| row[0].as_text().unwrap() == "active_connections")
        .expect("active_connections gauge missing");
    assert_eq!(gauge[1], Value::Int(2));

    let report = server.drain().unwrap();
    assert_eq!(report.killed, 0);
    assert_eq!(db.connections().active_count(), 0);
}

// ----------------------------------------------------------------------
// Per-connection SET state
// ----------------------------------------------------------------------

#[test]
fn set_state_is_per_connection() {
    let db = setup_db();
    let server = start(&db, quick_cfg());
    let mut a = Client::connect(server.addr()).unwrap();
    let mut b = Client::connect(server.addr()).unwrap();

    a.query("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();

    // Behavioural proof: the same aggregate spills on `a`'s tight
    // budget and not on `b`'s unlimited one.
    db.temp().reset_counters();
    let rb = b.query("SELECT id, COUNT(*) FROM t GROUP BY id").unwrap();
    assert_eq!(rb.rows.len(), 12_000);
    assert_eq!(db.temp().spill_count(), 0, "unlimited session spilled");
    let ra = a.query("SELECT id, COUNT(*) FROM t GROUP BY id").unwrap();
    assert_eq!(ra.rows.len(), 12_000);
    assert!(db.temp().spill_count() > 0, "governed session must spill");
    assert_eq!(db.temp().live_files().unwrap(), 0, "leaked temp files");

    server.drain().unwrap();
}

// ----------------------------------------------------------------------
// Typed overload rejection at the connection cap
// ----------------------------------------------------------------------

#[test]
fn connection_cap_rejects_typed_and_recovers() {
    let db = setup_db();
    let server = start(
        &db,
        ServerConfig {
            max_connections: 2,
            ..quick_cfg()
        },
    );

    let mut c1 = Client::connect(server.addr()).unwrap();
    let mut c2 = Client::connect(server.addr()).unwrap();
    // A completed query proves each connection is fully registered
    // (registration happens on the connection thread, not in accept).
    c1.query("SELECT COUNT(*) FROM t").unwrap();
    c2.query("SELECT COUNT(*) FROM t").unwrap();

    // The third connection gets a typed refusal, not a silent close.
    let mut c3 = Client::connect(server.addr()).unwrap();
    c3.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let err = c3.query("SELECT COUNT(*) FROM t").unwrap_err();
    assert!(matches!(err, DbError::ServerBusy(_)), "{err}");

    // Freeing a slot lets a new connection in (the close is noticed at
    // the next poll, so retry briefly).
    drop(c1);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let mut c4 = Client::connect(server.addr()).unwrap();
        c4.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        match c4.query("SELECT COUNT(*) FROM t") {
            Ok(r) => {
                assert_eq!(r.rows[0][0], Value::Int(12_000));
                break;
            }
            Err(DbError::ServerBusy(_)) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(e) => panic!("slot never freed: {e}"),
        }
    }
    server.drain().unwrap();
}

// ----------------------------------------------------------------------
// Opt-in client retry absorbs busy refusals with backoff + reconnect
// ----------------------------------------------------------------------

#[test]
fn client_retry_absorbs_connection_cap_refusals() {
    let db = setup_db();
    let server = start(
        &db,
        ServerConfig {
            max_connections: 1,
            ..quick_cfg()
        },
    );

    let mut c1 = Client::connect(server.addr()).unwrap();
    c1.query("SELECT COUNT(*) FROM t").unwrap();

    // While c1 holds the only slot, a retrying client keeps backing off
    // and reconnecting; once the slot frees it gets through without
    // the caller ever seeing ServerBusy.
    let mut c2 = Client::connect(server.addr()).unwrap();
    c2.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    c2.set_retry_attempts(30);
    let release = std::thread::spawn(move || {
        std::thread::sleep(Duration::from_millis(120));
        drop(c1);
    });
    let r = c2.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(12_000));
    assert!(
        c2.retries_performed() > 0,
        "query succeeded without any refusal to absorb"
    );
    release.join().unwrap();
    server.drain().unwrap();
}

#[test]
fn client_without_retry_still_sees_typed_busy() {
    let db = setup_db();
    let server = start(
        &db,
        ServerConfig {
            max_connections: 1,
            ..quick_cfg()
        },
    );
    let mut c1 = Client::connect(server.addr()).unwrap();
    c1.query("SELECT COUNT(*) FROM t").unwrap();

    let mut c2 = Client::connect(server.addr()).unwrap();
    c2.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let err = c2.query("SELECT COUNT(*) FROM t").unwrap_err();
    assert!(matches!(err, DbError::ServerBusy(_)), "{err}");
    assert_eq!(c2.retries_performed(), 0);
    server.drain().unwrap();
}

// ----------------------------------------------------------------------
// KILL of a nonexistent statement: typed error, connection survives
// ----------------------------------------------------------------------

#[test]
fn kill_of_missing_statement_is_typed_and_keeps_the_connection() {
    let db = setup_db();
    let server = start(&db, quick_cfg());
    let mut c = Client::connect(server.addr()).unwrap();

    let err = c.query("KILL 424242").unwrap_err();
    assert!(matches!(err, DbError::NoSuchStatement(424242)), "{err}");

    // The protocol error did not cost us the connection.
    let r = c.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(12_000));
    server.drain().unwrap();
}

// ----------------------------------------------------------------------
// Idle timeout: typed close after the deadline
// ----------------------------------------------------------------------

#[test]
fn idle_connection_is_closed_with_a_typed_timeout_frame() {
    let db = setup_db();
    let server = start(
        &db,
        ServerConfig {
            idle_timeout: Duration::from_millis(150),
            ..quick_cfg()
        },
    );
    let c = Client::connect(server.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(5))).unwrap();

    // Without sending anything, the courtesy frame arrives after the
    // idle deadline, then EOF.
    let mut stream = c.stream();
    let payload = read_frame(&mut stream)
        .unwrap()
        .expect("typed frame before close");
    let err = seqdb::server::protocol::decode_error(&payload).unwrap();
    assert!(matches!(err, DbError::Timeout(_)), "{err}");
    assert_eq!(read_frame(&mut stream).unwrap(), None, "then clean EOF");

    // The reaped connection deregistered.
    let deadline = Instant::now() + Duration::from_secs(5);
    while db.connections().active_count() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(db.connections().active_count(), 0);
    server.drain().unwrap();
}

// ----------------------------------------------------------------------
// Disconnect mid-statement: auto-KILL through every spill path
// ----------------------------------------------------------------------

/// Drop the client while its statement is actively spilling, then
/// assert from a *second connection* (per the DMV contract) that the
/// statement died and nothing leaked: zero live temp files, zero
/// admission bytes, pins back to baseline.
fn disconnect_during(sql: &str) {
    let db = setup_db();
    db.set_admission_pool_kb(Some(256));
    let pins_before = db.pool().pinned_frames();
    let server = start(&db, quick_cfg());

    let mut probe = Client::connect(server.addr()).unwrap();
    let mut victim = Client::connect(server.addr()).unwrap();
    victim.query("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();

    // Fire the statement from a thread; it will never finish on its
    // own, so the thread ends when the server kills it and closes. A
    // cloned handle stays behind so the main thread can sever the
    // socket while the query is in flight.
    let sock = victim.stream().try_clone().unwrap();
    let sql_owned = sql.to_string();
    let runner = std::thread::spawn(move || victim.query(&sql_owned));

    // Watch DM_EXEC_REQUESTS from the probe until the victim is
    // actually spilling — the disconnect must land mid-spill.
    let deadline = Instant::now() + Duration::from_secs(30);
    let victim_sid = loop {
        assert!(Instant::now() < deadline, "victim never started spilling");
        let r = probe
            .query("SELECT session_id, wait_state FROM DM_EXEC_REQUESTS()")
            .unwrap();
        let spilling = r
            .rows
            .iter()
            .find(|row| row[1].as_text().unwrap() == "spilling");
        match spilling {
            Some(row) => break row[0].as_int().unwrap(),
            None => std::thread::sleep(Duration::from_millis(5)),
        }
    };

    // Sever the client abruptly. The server's liveness poll sees EOF,
    // kills the session, and waits for the statement to unwind; the
    // runner's pending read then fails, never having seen a result.
    sock.shutdown(std::net::Shutdown::Both).unwrap();
    assert!(runner.join().unwrap().is_err(), "no result after the cut");

    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        assert!(Instant::now() < deadline, "killed statement never drained");
        let r = probe
            .query("SELECT session_id FROM DM_EXEC_REQUESTS()")
            .unwrap();
        if !r.rows.iter().any(|row| row[0] == Value::Int(victim_sid)) {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    // Leak gauges, read over the wire from the second connection.
    let r = probe
        .query("SELECT counter_name, value FROM DM_OS_PERFORMANCE_COUNTERS()")
        .unwrap();
    let gauge = |name: &str| -> i64 {
        r.rows
            .iter()
            .find(|row| row[0].as_text().unwrap() == name)
            .unwrap_or_else(|| panic!("{name} gauge missing"))[1]
            .as_int()
            .unwrap()
    };
    assert_eq!(gauge("tempspace_live_files"), 0, "leaked spill files");
    assert_eq!(gauge("admission_reserved_bytes"), 0, "leaked admission");
    assert_eq!(
        gauge("bufferpool_pinned_frames"),
        pins_before as i64,
        "leaked buffer pins"
    );

    // The victim's connection fully deregistered (probe remains).
    let deadline = Instant::now() + Duration::from_secs(5);
    while db.connections().active_count() > 1 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(db.connections().active_count(), 1);
    server.drain().unwrap();
}

#[test]
fn disconnect_during_spilling_sort_leaks_nothing() {
    disconnect_during("SELECT n FROM t CROSS APPLY NUMBERS(1000000000) ORDER BY n DESC");
}

#[test]
fn disconnect_during_spilling_hash_aggregate_leaks_nothing() {
    disconnect_during("SELECT n, COUNT(*) FROM t CROSS APPLY NUMBERS(1000000000) GROUP BY n");
}

#[test]
fn disconnect_during_spilling_grace_join_leaks_nothing() {
    disconnect_during("SELECT COUNT(*) FROM t a JOIN NUMBERS(1000000000) n ON (a.id = n.n)");
}

// ----------------------------------------------------------------------
// Seeded network faults
// ----------------------------------------------------------------------

#[test]
fn short_reads_partial_writes_and_stalls_never_corrupt_results() {
    let db = setup_db();
    let clock = FaultClock::new(FaultPlan {
        seed: fault_seed(),
        net_short_read_every: Some(3),
        net_partial_write_every: Some(2),
        net_stall_every: Some(7),
        net_stall_ms: 2,
        ..FaultPlan::none()
    });
    let server = start(
        &db,
        ServerConfig {
            fault: Some(clock),
            ..quick_cfg()
        },
    );
    let mut c = Client::connect(server.addr()).unwrap();

    // Dozens of statements over a stream whose reads and writes are
    // constantly chopped up and delayed: framing must hold exactly.
    for i in 0..20 {
        let r = c.query("SELECT COUNT(*) FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(12_000), "iteration {i}");
        let r = c.query("SELECT id FROM t ORDER BY id").unwrap();
        assert_eq!(r.rows.len(), 12_000, "iteration {i}");
        assert_eq!(r.rows[7][0], Value::Int(7), "iteration {i}");
    }
    let report = server.drain().unwrap();
    assert_eq!(report.killed, 0);
}

#[test]
fn abrupt_reset_mid_statement_kills_it_and_the_server_survives() {
    let db = setup_db();
    db.set_admission_pool_kb(Some(256));
    let pins_before = db.pool().pinned_frames();
    // Exactly two network ops — the request header and payload reads —
    // then the reset point is behind us: the server must treat the
    // connection as doomed *while the statement runs* and kill it.
    let clock = FaultClock::new(FaultPlan {
        seed: fault_seed(),
        net_reset_after_ops: Some(2),
        ..FaultPlan::none()
    });
    let server = start(
        &db,
        ServerConfig {
            fault: Some(clock.clone()),
            ..quick_cfg()
        },
    );

    let mut c = Client::connect(server.addr()).unwrap();
    c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let start_t = Instant::now();
    let err = c
        .query("SELECT n, COUNT(*) FROM NUMBERS(1000000000) GROUP BY n")
        .unwrap_err();
    // The server kills the statement and closes without a response —
    // from the client that is a transport failure, not a typed error.
    assert!(
        matches!(err, DbError::Io(_) | DbError::Protocol(_)),
        "{err}"
    );
    assert!(
        start_t.elapsed() < Duration::from_secs(20),
        "doomed statement not killed promptly: {:?}",
        start_t.elapsed()
    );
    assert!(
        clock.net_reset_pending(),
        "the reset point must have passed"
    );

    // Nothing leaked, and the server still serves fresh connections
    // (the fault schedule is spent, so this one runs clean).
    let deadline = Instant::now() + Duration::from_secs(10);
    while db.statements().running_count() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    assert_eq!(db.statements().running_count(), 0);
    assert_eq!(db.temp().live_files().unwrap(), 0, "leaked spill files");
    assert_eq!(db.admission().reserved(), 0, "leaked admission bytes");
    assert_eq!(db.pool().pinned_frames(), pins_before, "leaked pins");
    server.drain().unwrap();
}

// ----------------------------------------------------------------------
// Slow-reader backpressure
// ----------------------------------------------------------------------

#[test]
fn slow_reader_hits_the_write_timeout_not_unbounded_buffering() {
    let db = setup_db();
    let server = start(
        &db,
        ServerConfig {
            write_timeout: Duration::from_millis(300),
            ..quick_cfg()
        },
    );

    // Ask for ~45 MB of rows and never read a byte: once the socket
    // buffers fill, the server's write must time out and the
    // connection must be dropped — memory stays bounded by the socket
    // buffer, not the result size.
    let c = Client::connect(server.addr()).unwrap();
    use seqdb::server::protocol::{encode_query, write_frame};
    let mut w = c.stream();
    write_frame(&mut w, &encode_query("SELECT n FROM NUMBERS(4000000)")).unwrap();

    let deadline = Instant::now() + Duration::from_secs(30);
    while db.connections().active_count() > 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(
        db.connections().active_count(),
        0,
        "wedged reader never reaped"
    );
    drop(c);

    // The statement itself completed before the write stalled; nothing
    // leaked and new clients are served.
    assert_eq!(db.temp().live_files().unwrap(), 0);
    let mut c2 = Client::connect(server.addr()).unwrap();
    let r = c2.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(12_000));
    server.drain().unwrap();
}

// ----------------------------------------------------------------------
// Graceful drain under load
// ----------------------------------------------------------------------

#[test]
fn drain_finishes_short_statements_kills_stragglers_and_checkpoints() {
    let db = setup_db();
    let server = start(
        &db,
        ServerConfig {
            drain_deadline: Duration::from_secs(1),
            ..quick_cfg()
        },
    );
    let addr = server.addr();

    // Background load: three clients looping short statements...
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let mut loopers = Vec::new();
    for _ in 0..3 {
        let stop = stop.clone();
        loopers.push(std::thread::spawn(move || {
            let Ok(mut c) = Client::connect(addr) else {
                return 0usize;
            };
            let _ = c.set_read_timeout(Some(Duration::from_secs(10)));
            let mut done = 0usize;
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                match c.query("SELECT COUNT(*) FROM t") {
                    Ok(_) => done += 1,
                    Err(_) => break, // drain refusal or close: expected
                }
            }
            done
        }));
    }
    // ...plus one statement that cannot finish inside the deadline.
    let straggler = std::thread::spawn(move || {
        let Ok(mut c) = Client::connect(addr) else {
            return None;
        };
        let _ = c.set_read_timeout(Some(Duration::from_secs(30)));
        let _ = c.query("SET QUERY_MEMORY_LIMIT_KB = 8");
        Some(c.query("SELECT n, COUNT(*) FROM t CROSS APPLY NUMBERS(1000000000) GROUP BY n"))
    });

    // Let the load get going, with the straggler definitely in flight.
    let deadline = Instant::now() + Duration::from_secs(10);
    while db.statements().running_count() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(150));

    let report = server.drain().unwrap();
    stop.store(true, std::sync::atomic::Ordering::Relaxed);

    assert!(report.killed >= 1, "the endless statement had to be killed");
    assert!(
        report.elapsed < Duration::from_secs(8),
        "drain blew through its deadline: {:?}",
        report.elapsed
    );

    // The straggler observed a kill or a close, not a result.
    match straggler.join().unwrap() {
        Some(Ok(_)) => panic!("endless statement cannot have finished"),
        Some(Err(e)) => assert!(
            matches!(
                e,
                DbError::Cancelled(_)
                    | DbError::Io(_)
                    | DbError::Protocol(_)
                    | DbError::ServerDraining(_)
            ),
            "{e}"
        ),
        None => {} // never connected: acceptable under races
    }
    for l in loopers {
        let _ = l.join();
    }

    // Post-drain invariants: empty engine, no leaks, no listener.
    assert_eq!(db.statements().running_count(), 0);
    assert_eq!(db.connections().active_count(), 0);
    assert_eq!(db.temp().live_files().unwrap(), 0);
    assert_eq!(db.admission().reserved(), 0);
    assert!(
        Client::connect_timeout(&addr, Duration::from_millis(500)).is_err(),
        "listener must be gone after drain"
    );
}

// ----------------------------------------------------------------------
// Queued admission over the wire
// ----------------------------------------------------------------------

#[test]
fn queued_admission_holds_a_wire_statement_then_runs_it() {
    let db = setup_db();
    // Pool fits exactly one 64 KiB statement; excess statements queue.
    db.set_admission_pool_kb(Some(64));
    db.set_admission_wait_ms(20_000);
    db.set_admission_queue_slots(4);
    let server = start(&db, quick_cfg());
    let addr = server.addr();

    // A direct engine session holds the whole pool...
    let holder = db.create_session();
    holder.set_query_memory_limit_kb(Some(64));
    let guard = holder.begin_statement("hold the pool").unwrap();
    assert_eq!(db.admission().reserved(), 64 * 1024);

    // ...so the wire statement queues at the gate instead of failing.
    let queued = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        c.query("SET QUERY_MEMORY_LIMIT_KB = 64").unwrap();
        c.query("SELECT id, COUNT(*) FROM t GROUP BY id")
    });

    // The waiter shows up in the queue-depth gauge and as `queued` in
    // DM_EXEC_REQUESTS while it blocks.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        assert!(Instant::now() < deadline, "statement never queued");
        if db.admission().queue_depth() == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let queued_visible = db
        .statements()
        .snapshot()
        .iter()
        .any(|s| s.wait_state() == "queued");
    assert!(queued_visible, "queued statement missing from DMV");

    // Releasing the pool admits the waiter; it completes exactly.
    drop(guard);
    let r = queued.join().unwrap().expect("queued statement must run");
    assert_eq!(r.rows.len(), 12_000);
    assert_eq!(db.admission().queue_depth(), 0);
    server.drain().unwrap();
}

// ----------------------------------------------------------------------
// Periodic background scrub thread
// ----------------------------------------------------------------------

/// With `scrub_interval` set, the server's `seqdb-scrub` thread finds
/// and repairs planted corruption without any `CHECK` being issued,
/// and the drain joins the thread cleanly.
#[test]
fn periodic_scrub_thread_repairs_rot_in_the_background() {
    let db = setup_db();
    db.checkpoint().unwrap();
    // Corrupt one heap page at rest while the good frame stays cached.
    let t = db.catalog().table("t").unwrap();
    let victim = t.heap.pages_snapshot()[0];
    let store = db.pool().store().clone();
    let mut buf = vec![0u8; PAGE_SIZE];
    store.read_page(victim, &mut buf).unwrap();
    buf[100] ^= 0x40;
    store.write_page(victim, &buf).unwrap();

    let server = start(
        &db,
        ServerConfig {
            poll_interval: Duration::from_millis(5),
            scrub_interval: Some(Duration::from_millis(20)),
            ..ServerConfig::default()
        },
    );
    let deadline = Instant::now() + Duration::from_secs(10);
    while db.scrub_state().status().pages_repaired == 0 {
        assert!(
            Instant::now() < deadline,
            "background scrub never repaired the page"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    let mut c = Client::connect(server.addr()).unwrap();
    let r = c.query("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(12_000));
    assert!(db.quarantine().is_empty(), "nothing should be fenced");
    server.drain().unwrap();
}

//! SQL-level integration suite: broader coverage of the T-SQL subset
//! through the public facade, including edge cases and error paths.

use seqdb::engine::Database;
use seqdb::sql::DatabaseSqlExt;
use seqdb::types::{DbError, Value};

fn db() -> std::sync::Arc<Database> {
    Database::in_memory()
}

#[test]
fn joins_three_ways_agree() {
    let db = db();
    db.execute_sql_script(
        "CREATE TABLE l (k INT PRIMARY KEY, v INT);
         CREATE TABLE r (k INT PRIMARY KEY, w INT);",
    )
    .unwrap();
    for i in 0..500i64 {
        db.execute_sql(&format!("INSERT INTO l VALUES ({i}, {})", i * 2))
            .unwrap();
        if i % 3 == 0 {
            db.execute_sql(&format!("INSERT INTO r VALUES ({i}, {})", i * 5))
                .unwrap();
        }
    }
    // Merge join (both indexed) — verify the planner picked it.
    let plan = db
        .explain_sql("SELECT v, w FROM l JOIN r ON l.k = r.k")
        .unwrap();
    assert!(plan.contains("Merge Join"), "{plan}");
    let res = db
        .query_sql("SELECT COUNT(*), SUM(v), SUM(w) FROM l JOIN r ON l.k = r.k")
        .unwrap();
    assert_eq!(res.rows[0][0], Value::Int(167));
    // Hash join via a subquery (no index on the derived side).
    let res2 = db
        .query_sql(
            "SELECT COUNT(*), SUM(v), SUM(w)
             FROM (SELECT k AS k2, v FROM l) x JOIN r ON x.k2 = r.k",
        )
        .unwrap();
    assert_eq!(res.rows[0].values(), res2.rows[0].values());
}

#[test]
fn group_by_multiple_columns_and_aliases() {
    let db = db();
    db.execute_sql_script(
        "CREATE TABLE t (a INT, b INT, v INT);
         INSERT INTO t VALUES (1,1,10),(1,2,20),(1,1,30),(2,1,40);",
    )
    .unwrap();
    let r = db
        .query_sql(
            "SELECT a, b, SUM(v) AS total, COUNT(*) AS n
             FROM t GROUP BY a, b ORDER BY a, b",
        )
        .unwrap();
    assert_eq!(r.schema.index_of("total"), Some(2));
    assert_eq!(r.rows.len(), 3);
    assert_eq!(r.rows[0].values()[2], Value::Int(40)); // (1,1)
    assert_eq!(r.rows[1].values()[2], Value::Int(20)); // (1,2)
    assert_eq!(r.rows[2].values()[2], Value::Int(40)); // (2,1)
}

#[test]
fn order_by_aliases_and_aggregates() {
    let db = db();
    db.execute_sql_script(
        "CREATE TABLE t (g INT, v INT);
         INSERT INTO t VALUES (1,5),(2,50),(3,20),(1,5);",
    )
    .unwrap();
    // ORDER BY an aggregate that is not in the select list.
    let r = db
        .query_sql("SELECT g FROM t GROUP BY g ORDER BY SUM(v) DESC")
        .unwrap();
    let gs: Vec<i64> = r.rows.iter().map(|x| x[0].as_int().unwrap()).collect();
    assert_eq!(gs, vec![2, 3, 1]);
    // ORDER BY the alias.
    let r = db
        .query_sql("SELECT g, SUM(v) AS s FROM t GROUP BY g ORDER BY s")
        .unwrap();
    let ss: Vec<i64> = r.rows.iter().map(|x| x[1].as_int().unwrap()).collect();
    assert_eq!(ss, vec![10, 20, 50]);
}

#[test]
fn string_functions_and_casts() {
    let db = db();
    db.execute_sql("CREATE TABLE s (x VARCHAR(64))").unwrap();
    db.execute_sql("INSERT INTO s VALUES ('gattaca')").unwrap();
    let r = db
        .query_sql(
            "SELECT UPPER(x), LEN(x), SUBSTRING(x, 2, 3),
                    REPLACE(x, 'atta', '-'), CAST('42' AS INT),
                    CAST(LEN(x) AS VARCHAR(8)) + '!'
             FROM s",
        )
        .unwrap();
    let row = &r.rows[0];
    assert_eq!(row[0], Value::text("GATTACA"));
    assert_eq!(row[1], Value::Int(7));
    assert_eq!(row[2], Value::text("att"));
    assert_eq!(row[3], Value::text("g-ca"));
    assert_eq!(row[4], Value::Int(42));
    assert_eq!(row[5], Value::text("7!"));
}

#[test]
fn null_semantics_through_sql() {
    let db = db();
    db.execute_sql_script(
        "CREATE TABLE n (x INT, y INT);
         INSERT INTO n VALUES (1, 10), (2, NULL), (NULL, 30);",
    )
    .unwrap();
    // WHERE drops NULL comparisons.
    let r = db.query_sql("SELECT COUNT(*) FROM n WHERE x > 0").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2));
    // IS NULL / IS NOT NULL.
    let r = db
        .query_sql("SELECT COUNT(*) FROM n WHERE x IS NULL")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    // Aggregates skip NULLs; COUNT(*) does not.
    let r = db
        .query_sql("SELECT COUNT(*), COUNT(y), SUM(y), AVG(y) FROM n")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3));
    assert_eq!(r.rows[0][1], Value::Int(2));
    assert_eq!(r.rows[0][2], Value::Int(40));
    assert_eq!(r.rows[0][3], Value::Float(20.0));
    // ISNULL fallback.
    let r = db
        .query_sql("SELECT SUM(ISNULL(y, 0) + ISNULL(x, 0)) FROM n")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(43));
}

#[test]
fn top_without_order_limits_and_with_order_ranks() {
    let db = db();
    db.execute_sql("CREATE TABLE t (x INT)").unwrap();
    for i in 0..100 {
        db.execute_sql(&format!("INSERT INTO t VALUES ({i})"))
            .unwrap();
    }
    let r = db.query_sql("SELECT TOP 7 x FROM t").unwrap();
    assert_eq!(r.rows.len(), 7);
    let r = db
        .query_sql("SELECT TOP 3 x FROM t ORDER BY x DESC")
        .unwrap();
    let xs: Vec<i64> = r.rows.iter().map(|x| x[0].as_int().unwrap()).collect();
    assert_eq!(xs, vec![99, 98, 97]);
}

#[test]
fn create_index_accelerates_ordered_scans() {
    let db = db();
    db.execute_sql("CREATE TABLE t (a INT, b INT)").unwrap();
    for i in 0..200 {
        db.execute_sql(&format!("INSERT INTO t VALUES ({}, {i})", 200 - i))
            .unwrap();
    }
    db.execute_sql("CREATE INDEX ix_a ON t (a)").unwrap();
    // The index exists and is used for a merge join against itself via
    // another indexed table.
    db.execute_sql("CREATE TABLE u (a INT PRIMARY KEY)")
        .unwrap();
    for i in 1..=200 {
        db.execute_sql(&format!("INSERT INTO u VALUES ({i})"))
            .unwrap();
    }
    let plan = db
        .explain_sql("SELECT b FROM t JOIN u ON t.a = u.a")
        .unwrap();
    assert!(plan.contains("Merge Join"), "{plan}");
    let r = db
        .query_sql("SELECT COUNT(*) FROM t JOIN u ON t.a = u.a")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(200));
}

#[test]
fn drop_table_removes_it() {
    let db = db();
    db.execute_sql("CREATE TABLE gone (x INT)").unwrap();
    db.execute_sql("DROP TABLE gone").unwrap();
    assert!(matches!(
        db.query_sql("SELECT * FROM gone"),
        Err(DbError::NotFound(_))
    ));
    assert!(matches!(
        db.execute_sql("DROP TABLE gone"),
        Err(DbError::NotFound(_))
    ));
}

#[test]
fn compression_settings_are_transparent_to_queries() {
    let db = db();
    for (name, comp) in [("tn", "NONE"), ("tr", "ROW"), ("tp", "PAGE")] {
        db.execute_sql(&format!(
            "CREATE TABLE {name} (id INT PRIMARY KEY, seq VARCHAR(64)) WITH (DATA_COMPRESSION = {comp})"
        ))
        .unwrap();
        for i in 0..2000i64 {
            db.execute_sql(&format!(
                "INSERT INTO {name} VALUES ({i}, 'CATGGAATTC_{}')",
                i % 5
            ))
            .unwrap();
        }
    }
    let mut results = Vec::new();
    for name in ["tn", "tr", "tp"] {
        let r = db
            .query_sql(&format!(
                "SELECT seq, COUNT(*) FROM {name} GROUP BY seq ORDER BY seq"
            ))
            .unwrap();
        results.push(
            r.rows
                .iter()
                .map(|x| (x[0].as_text().unwrap().to_string(), x[1].as_int().unwrap()))
                .collect::<Vec<_>>(),
        );
    }
    assert_eq!(results[0], results[1]);
    assert_eq!(results[1], results[2]);
    // And the page-compressed table uses fewer pages.
    let tn = db.catalog().table("tn").unwrap().heap.allocated_bytes();
    let tp = db.catalog().table("tp").unwrap().heap.allocated_bytes();
    assert!(tp < tn, "page {tp} !< none {tn}");
}

#[test]
fn error_paths_are_descriptive() {
    let db = db();
    db.execute_sql("CREATE TABLE t (x INT NOT NULL)").unwrap();
    let e = db.execute_sql("INSERT INTO t VALUES (NULL)").unwrap_err();
    assert!(matches!(e, DbError::Constraint(_)), "{e}");
    let e = db.execute_sql("INSERT INTO t VALUES ('text')").unwrap_err();
    assert!(matches!(e, DbError::Schema(_)), "{e}");
    let e = db
        .query_sql("SELECT x FROM t GROUP BY x ORDER BY y")
        .unwrap_err();
    assert!(e.to_string().contains("y"), "{e}");
    let e = db.query_sql("SELECT MAX(x), x FROM t").unwrap_err();
    assert!(matches!(e, DbError::Plan(_)), "{e}");
}

#[test]
fn explain_of_serial_and_parallel_aggregate() {
    let db = db();
    db.execute_sql("CREATE TABLE big (g INT, v INT)").unwrap();
    // Stay under the parallel threshold: serial hash aggregate.
    db.execute_sql("INSERT INTO big VALUES (1, 1)").unwrap();
    let serial = db
        .explain_sql("SELECT g, COUNT(*) FROM big GROUP BY g")
        .unwrap();
    assert!(serial.contains("Hash Match (Aggregate)"), "{serial}");
    assert!(!serial.contains("Gather Streams"), "{serial}");
    // Lower the threshold: the same query plans parallel.
    let mut cfg = db.config();
    cfg.parallel_threshold = 1;
    cfg.max_dop = 4;
    db.set_config(cfg);
    let parallel = db
        .explain_sql("SELECT g, COUNT(*) FROM big GROUP BY g")
        .unwrap();
    assert!(parallel.contains("Gather Streams"), "{parallel}");
}

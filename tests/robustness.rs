//! Failure injection and model-based property tests across crates.

use std::ops::Bound;
use std::sync::Arc;

use proptest::prelude::*;

use seqdb::engine::Database;
use seqdb::sql::DatabaseSqlExt;
use seqdb::storage::fault::FaultInjectingWalBackend;
use seqdb::storage::page::{PageId, PageType};
use seqdb::storage::wal::MemWalBackend;
use seqdb::storage::{
    BTree, BufferPool, Compression, FaultClock, FaultInjectingPageStore, FaultPlan, HeapFile,
    MemPager, Page, PageStore, WriteAheadLog, PAGE_SIZE,
};
use seqdb::types::{Column, DataType, DbError, Row, Schema, Value};

// ----------------------------------------------------------------------
// Failure injection
// ----------------------------------------------------------------------

#[test]
fn corrupt_page_magic_is_an_error_not_a_panic() {
    // Garbage fails the checksum before the magic is even looked at.
    let raw = vec![0xAAu8; PAGE_SIZE].into_boxed_slice();
    assert!(matches!(Page::from_bytes(raw), Err(DbError::Corruption(_))));
    // A sealed page with a bad magic is caught by the magic check itself.
    let mut forged = vec![0xAAu8; PAGE_SIZE];
    Page::seal_buf(&mut forged);
    assert!(matches!(
        Page::from_bytes(forged.into_boxed_slice()),
        Err(DbError::Corruption(_))
    ));
    let short = vec![0u8; 100].into_boxed_slice();
    assert!(Page::from_bytes(short).is_err());
}

#[test]
fn deleted_blob_surfaces_as_not_found_in_sql() {
    let db = Database::in_memory();
    seqdb::core::udx::register_udx(&db, None);
    seqdb::core::schema::create_filestream_schema(&db, "").unwrap();
    let fq = b"@r1\nACGT\n+\nIIII\n";
    let guid = db.filestream().insert(fq).unwrap();
    db.catalog()
        .table("ShortReadFiles")
        .unwrap()
        .insert(&seqdb::types::Row::new(vec![
            Value::Guid(guid),
            Value::Int(1),
            Value::Int(1),
            Value::Guid(guid),
        ]))
        .unwrap();
    // Works before deletion...
    let r = db
        .query_sql("SELECT COUNT(*) FROM ListShortReads(1, 1, 'FastQ')")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    // ...then the blob vanishes behind the database's back.
    db.filestream().delete(guid).unwrap();
    let err = db
        .query_sql("SELECT COUNT(*) FROM ListShortReads(1, 1, 'FastQ')")
        .unwrap_err();
    assert!(matches!(err, DbError::NotFound(_)), "{err}");
}

#[test]
fn malformed_blob_content_fails_cleanly() {
    let db = Database::in_memory();
    seqdb::core::udx::register_udx(&db, None);
    seqdb::core::schema::create_filestream_schema(&db, "").unwrap();
    // Not FASTQ at all.
    let guid = db.filestream().insert(b"this is not fastq").unwrap();
    db.catalog()
        .table("ShortReadFiles")
        .unwrap()
        .insert(&seqdb::types::Row::new(vec![
            Value::Guid(guid),
            Value::Int(2),
            Value::Int(1),
            Value::Guid(guid),
        ]))
        .unwrap();
    let err = db
        .query_sql("SELECT COUNT(*) FROM ListShortReads(2, 1, 'FastQ')")
        .unwrap_err();
    assert!(matches!(err, DbError::InvalidData(_)), "{err}");
}

#[test]
fn udf_errors_propagate_through_queries() {
    let db = Database::in_memory();
    db.execute_sql_script(
        "CREATE TABLE t (x INT);
         INSERT INTO t VALUES (1), (0);",
    )
    .unwrap();
    // Division by zero in the projection of the second row.
    let err = db.query_sql("SELECT 10 / x FROM t").unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
}

// ----------------------------------------------------------------------
// Crash recovery
//
// A deterministic checkpointing workload runs on top of fault-injecting
// devices (page store + WAL backend sharing one FaultClock). The inner
// MemPager / MemWalBackend play the durable medium: whatever survived the
// simulated power loss. "Reboot" means replaying the WAL into the raw
// disks with no faults and re-opening the structures, exactly like
// `Database::open` does.
// ----------------------------------------------------------------------

/// Page id of the "catalog" heap the crash workload bootstraps first.
const META_PAGE: PageId = 0;

fn crash_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new("k", DataType::Int).not_null(),
        Column::new("v", DataType::Int).not_null(),
    ]))
}

fn meta_schema() -> Arc<Schema> {
    Arc::new(Schema::new(vec![
        Column::new("heap_first", DataType::Int).not_null(),
        Column::new("tree_root", DataType::Int).not_null(),
    ]))
}

/// Deterministic value for a key, so recovered rows can be checked
/// without carrying the whole dataset around.
fn val_for(seed: u64, k: u16) -> u8 {
    let mut x = seed ^ (k as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    (x >> 16) as u8
}

struct CrashRun {
    /// Keys covered by the last checkpoint that reported success.
    acked: Vec<u16>,
    /// Every key whose insert reported success (durable or not).
    attempted: Vec<u16>,
    /// Syncs the device performed over the whole run.
    syncs: u64,
}

/// Insert `batches * batch_len` rows into a heap plus a B+-tree index,
/// checkpointing after every batch, until the work finishes or the device
/// crashes. The index root is recorded in a meta heap *before* each
/// checkpoint so it is covered by the same WAL commit batch — the same
/// way a real catalog page would be.
fn run_crash_workload(
    data_disk: Arc<MemPager>,
    wal_disk: Arc<MemWalBackend>,
    seed: u64,
    batches: u16,
    batch_len: u16,
    crash_after: Option<u64>,
) -> CrashRun {
    let clock = FaultClock::new(FaultPlan {
        seed,
        crash_after_syncs: crash_after,
        ..FaultPlan::none()
    });
    let store: Arc<dyn PageStore> =
        Arc::new(FaultInjectingPageStore::new(data_disk, clock.clone()));
    let wal = Arc::new(WriteAheadLog::new(Box::new(FaultInjectingWalBackend::new(
        wal_disk,
        clock.clone(),
    ))));
    // Capacity is larger than the workload's page count: dirty pages only
    // reach the disk through checkpoints, never through evictions, so the
    // durable state is always some checkpoint prefix of the workload.
    let pool = BufferPool::with_wal(store, 256, wal);

    let mut out = CrashRun {
        acked: Vec::new(),
        attempted: Vec::new(),
        syncs: 0,
    };
    let _ = (|| -> Result<(), DbError> {
        let meta = HeapFile::create(pool.clone(), meta_schema(), Compression::None)?;
        assert_eq!(meta.first_page(), META_PAGE);
        let heap = HeapFile::create(pool.clone(), crash_schema(), Compression::None)?;
        let tree = BTree::create(pool.clone())?;
        let mut pending: Vec<u16> = Vec::new();
        for b in 0..batches {
            for i in 0..batch_len {
                let k = b * batch_len + i;
                let v = val_for(seed, k);
                heap.insert(&Row::new(vec![Value::Int(k as i64), Value::Int(v as i64)]))?;
                tree.insert(&k.to_be_bytes(), &[v])?;
                out.attempted.push(k);
                pending.push(k);
            }
            meta.insert(&Row::new(vec![
                Value::Int(heap.first_page() as i64),
                Value::Int(tree.root_page() as i64),
            ]))?;
            pool.checkpoint()?;
            out.acked.append(&mut pending);
        }
        Ok(())
    })();
    out.syncs = clock.sync_count();
    out
}

/// Reboot after (a possible) power loss: replay the WAL into the raw
/// disks, re-open everything, and check every invariant we can.
fn verify_crash_recovery(
    data_disk: Arc<MemPager>,
    wal_disk: Arc<MemWalBackend>,
    seed: u64,
    run: &CrashRun,
) {
    let wal = Arc::new(WriteAheadLog::new(Box::new(wal_disk)));
    wal.recover_into(data_disk.as_ref()).unwrap();

    // A database that never got a checkpoint to disk has nothing to
    // recover — its meta page is still unwritten. Nothing may have been
    // acked in that case.
    let no_checkpoint = data_disk.num_pages() == 0 || {
        let mut buf = vec![0u8; PAGE_SIZE];
        data_disk.read_page(META_PAGE, &mut buf).unwrap();
        buf.iter().all(|&b| b == 0)
    };
    if no_checkpoint {
        assert!(
            run.acked.is_empty(),
            "a checkpoint was acked but nothing is durable"
        );
        return;
    }

    let pool = BufferPool::with_wal(data_disk, 256, wal);
    let meta = HeapFile::open(pool.clone(), meta_schema(), Compression::None, META_PAGE).unwrap();
    let last = meta.scan().map(|r| r.unwrap().1).last().unwrap();
    let heap_first = last[0].as_int().unwrap() as PageId;
    let tree_root = last[1].as_int().unwrap() as PageId;

    // Every recovered heap page must pass its checksum and decode, and
    // every row must hold the value that was originally written.
    let heap = HeapFile::open(pool.clone(), crash_schema(), Compression::None, heap_first).unwrap();
    let mut recovered = std::collections::BTreeMap::new();
    for r in heap.scan() {
        let (_, row) = r.unwrap();
        let k = row[0].as_int().unwrap() as u16;
        let v = row[1].as_int().unwrap() as u8;
        assert_eq!(v, val_for(seed, k), "row for key {k} has a wrong value");
        assert!(recovered.insert(k, v).is_none(), "key {k} recovered twice");
    }

    // Durability: everything acked by a successful checkpoint survived...
    for k in &run.acked {
        assert!(
            recovered.contains_key(k),
            "acked key {k} lost after recovery"
        );
    }
    // ...and nothing appears that was never inserted.
    let attempted: std::collections::BTreeSet<u16> = run.attempted.iter().copied().collect();
    for k in recovered.keys() {
        assert!(attempted.contains(k), "phantom key {k} after recovery");
    }

    // The index recovered to the same checkpoint as the heap: same keys,
    // same values, in order.
    let tree = BTree::open(pool, tree_root).unwrap();
    let scanned: Vec<(u16, u8)> = tree
        .range(Bound::Unbounded, Bound::Unbounded)
        .unwrap()
        .map(|e| {
            let (k, v) = e.unwrap();
            (u16::from_be_bytes(k.try_into().unwrap()), v[0])
        })
        .collect();
    let expect: Vec<(u16, u8)> = recovered.into_iter().collect();
    assert_eq!(scanned, expect, "index and heap disagree after recovery");
}

#[test]
fn crash_recovery_at_every_sync_point() {
    const SEED: u64 = 0xC1D2_2009;
    // A fault-free run to learn the sync schedule (and sanity-check the
    // harness end to end).
    let total_syncs = {
        let data = Arc::new(MemPager::new());
        let wal = Arc::new(MemWalBackend::new());
        let run = run_crash_workload(data.clone(), wal.clone(), SEED, 6, 9, None);
        assert_eq!(run.acked.len(), 54, "fault-free run must ack everything");
        verify_crash_recovery(data, wal, SEED, &run);
        run.syncs
    };
    assert!(
        total_syncs >= 12,
        "expected at least two syncs per checkpoint, saw {total_syncs}"
    );
    // Now pull the power at every single sync point of that schedule.
    for k in 0..total_syncs {
        let data = Arc::new(MemPager::new());
        let wal = Arc::new(MemWalBackend::new());
        let run = run_crash_workload(data.clone(), wal.clone(), SEED, 6, 9, Some(k));
        assert!(
            run.acked.len() < run.attempted.len() || run.attempted.len() == 54,
            "crash at sync {k} produced an impossible ack pattern"
        );
        verify_crash_recovery(data, wal, SEED, &run);
    }
}

/// Double crash: the machine dies again *during* WAL replay, at every
/// workload crash point. The half-applied replay (each replayed page
/// independently lands whole, torn, or not at all) must be fully
/// converged by the second, clean replay — recovery is idempotent
/// because the log is only truncated after the data store syncs.
#[test]
fn crash_during_wal_replay_second_replay_converges() {
    const SEED: u64 = 0xD0B2_2026;
    let total_syncs = {
        let data = Arc::new(MemPager::new());
        let wal = Arc::new(MemWalBackend::new());
        let run = run_crash_workload(data.clone(), wal.clone(), SEED, 6, 9, None);
        verify_crash_recovery(data, wal, SEED, &run);
        run.syncs
    };
    for k in 0..total_syncs {
        let data = Arc::new(MemPager::new());
        let wal_disk = Arc::new(MemWalBackend::new());
        let run = run_crash_workload(data.clone(), wal_disk.clone(), SEED, 6, 9, Some(k));

        // First recovery attempt: the replay target crashes on its own
        // sync, so the replayed pages are scattered — some whole, some
        // torn, some lost — and the log is left un-truncated.
        let replay_clock = FaultClock::new(FaultPlan {
            seed: SEED ^ k,
            crash_after_syncs: Some(0),
            ..FaultPlan::none()
        });
        let faulty_target = FaultInjectingPageStore::new(data.clone(), replay_clock);
        let wal = WriteAheadLog::new(Box::new(wal_disk.clone()));
        match wal.recover_into(&faulty_target) {
            Ok(n) => assert_eq!(n, 0, "a non-empty replay must hit the crashed sync"),
            Err(e) => assert!(e.to_string().contains("injected crash"), "{e}"),
        }

        // Second reboot: the clean replay rewrites every logged page, so
        // whatever the interrupted replay tore is healed and all the
        // usual recovery invariants hold.
        verify_crash_recovery(data, wal_disk, SEED, &run);
    }
}

// ----------------------------------------------------------------------
// Model-based property tests
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u16, u8),
    Delete(u16),
    Get(u16),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (any::<u16>(), any::<u8>()).prop_map(|(k, v)| TreeOp::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| TreeOp::Delete(k % 512)),
        any::<u16>().prop_map(|k| TreeOp::Get(k % 512)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Flipping any single byte anywhere in a sealed page image — header,
    /// record data, free space or the checksum field itself — must surface
    /// as `DbError::Corruption` when the page is read back.
    #[test]
    fn any_single_byte_flip_is_detected(
        pos in 0usize..PAGE_SIZE,
        flip in 1u8..=255u8,
        records in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64),
            0..8,
        ),
    ) {
        let mut page = Page::new(PageType::Heap);
        for rec in &records {
            page.insert(rec);
        }
        page.set_next_page(42);
        let good = page.to_bytes();
        prop_assert!(Page::from_bytes(good.clone()).is_ok());
        let mut bad = good;
        bad[pos] ^= flip;
        prop_assert!(matches!(
            Page::from_bytes(bad),
            Err(DbError::Corruption(_))
        ));
    }

    /// Crash at a random sync point of a randomized workload: whatever a
    /// checkpoint acked must be durable; heap and index must agree.
    #[test]
    fn committed_data_survives_random_crash_points(
        seed in any::<u64>(),
        crash_after in 0u64..16,
        batches in 2u16..7,
        batch_len in 1u16..12,
    ) {
        let data = Arc::new(MemPager::new());
        let wal = Arc::new(MemWalBackend::new());
        let run = run_crash_workload(
            data.clone(), wal.clone(), seed, batches, batch_len, Some(crash_after),
        );
        verify_crash_recovery(data, wal, seed, &run);
    }

    #[test]
    fn btree_matches_std_btreemap(ops in proptest::collection::vec(tree_op(), 1..300)) {
        let pool = BufferPool::new(Arc::new(MemPager::new()), 128);
        let tree = BTree::create(pool).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    let old = tree.insert(&k.to_be_bytes(), &[v]).unwrap();
                    let model_old = model.insert(k, v);
                    prop_assert_eq!(old.map(|o| o[0]), model_old);
                }
                TreeOp::Delete(k) => {
                    let got = tree.delete(&k.to_be_bytes()).unwrap();
                    let model_got = model.remove(&k);
                    prop_assert_eq!(got.map(|o| o[0]), model_got);
                }
                TreeOp::Get(k) => {
                    let got = tree.get(&k.to_be_bytes()).unwrap();
                    prop_assert_eq!(got.map(|o| o[0]), model.get(&k).copied());
                }
            }
        }
        // Final full ordered scan matches the model.
        let scanned: Vec<(u16, u8)> = tree
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .map(|e| {
                let (k, v) = e.unwrap();
                (u16::from_be_bytes(k.try_into().unwrap()), v[0])
            })
            .collect();
        let expect: Vec<(u16, u8)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
    }

    #[test]
    fn sql_roundtrip_across_compression_modes(
        rows in proptest::collection::vec(
            (0i64..100_000, "[ACGTN]{1,64}", any::<bool>()),
            1..60,
        )
    ) {
        // De-duplicate keys (primary key).
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<_> = rows
            .into_iter()
            .filter(|(k, _, _)| seen.insert(*k))
            .collect();
        for comp in ["NONE", "ROW", "PAGE"] {
            let db = Database::in_memory();
            db.execute_sql(&format!(
                "CREATE TABLE t (id INT PRIMARY KEY, seq VARCHAR(64), flag INT)
                 WITH (DATA_COMPRESSION = {comp})"
            ))
            .unwrap();
            for (id, seq, flag) in &rows {
                db.execute_sql(&format!(
                    "INSERT INTO t VALUES ({id}, '{seq}', {})",
                    *flag as i64
                ))
                .unwrap();
            }
            let r = db.query_sql("SELECT id, seq, flag FROM t ORDER BY id").unwrap();
            prop_assert_eq!(r.rows.len(), rows.len());
            let mut sorted = rows.clone();
            sorted.sort_by_key(|(k, _, _)| *k);
            for (row, (id, seq, flag)) in r.rows.iter().zip(&sorted) {
                prop_assert_eq!(&row[0], &Value::Int(*id));
                prop_assert_eq!(&row[1], &Value::text(seq.as_str()));
                prop_assert_eq!(&row[2], &Value::Int(*flag as i64));
            }
        }
    }

    #[test]
    fn group_by_matches_handrolled_aggregation(
        rows in proptest::collection::vec((0i64..8, -100i64..100), 0..120)
    ) {
        let db = Database::in_memory();
        db.execute_sql("CREATE TABLE t (g INT, v INT)").unwrap();
        for (g, v) in &rows {
            db.execute_sql(&format!("INSERT INTO t VALUES ({g}, {v})")).unwrap();
        }
        let r = db
            .query_sql("SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t GROUP BY g ORDER BY g")
            .unwrap();
        let mut model: std::collections::BTreeMap<i64, (i64, i64, i64, i64)> =
            std::collections::BTreeMap::new();
        for (g, v) in &rows {
            let e = model.entry(*g).or_insert((0, 0, i64::MAX, i64::MIN));
            e.0 += 1;
            e.1 += v;
            e.2 = e.2.min(*v);
            e.3 = e.3.max(*v);
        }
        prop_assert_eq!(r.rows.len(), model.len());
        for (row, (g, (n, s, mn, mx))) in r.rows.iter().zip(model) {
            prop_assert_eq!(&row[0], &Value::Int(g));
            prop_assert_eq!(&row[1], &Value::Int(n));
            prop_assert_eq!(&row[2], &Value::Int(s));
            prop_assert_eq!(&row[3], &Value::Int(mn));
            prop_assert_eq!(&row[4], &Value::Int(mx));
        }
    }

    #[test]
    fn order_by_is_a_permutation_and_sorted(
        vals in proptest::collection::vec(-1000i64..1000, 0..200)
    ) {
        let db = Database::in_memory();
        db.execute_sql("CREATE TABLE t (v INT)").unwrap();
        for v in &vals {
            db.execute_sql(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let r = db.query_sql("SELECT v FROM t ORDER BY v DESC").unwrap();
        let got: Vec<i64> = r.rows.iter().map(|x| x[0].as_int().unwrap()).collect();
        let mut expect = vals.clone();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(got, expect);
    }
}

// ----------------------------------------------------------------------
// Seeded fault injection on the import path
// ----------------------------------------------------------------------

/// Seed for the fault schedules below. CI runs the suite across a matrix
/// of seeds via `SEQDB_FAULT_SEED`; locally it defaults to 1.
fn fault_seed() -> u64 {
    std::env::var("SEQDB_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// The FASTQ bulk-import either completes (transient faults absorbed by
/// the FileStream write-retry path) or fails cleanly — never a torn blob,
/// an orphan blob without its catalog row, or a catalog row without its
/// blob. Every fault period is checked under the seed-shifted schedule.
#[test]
fn fastq_import_under_faults_completes_or_fails_cleanly() {
    let seed = fault_seed();
    let dir = std::env::temp_dir().join(format!("seqdb-import-faults-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let fastq = dir.join("lane.fastq");
    let mut payload = Vec::new();
    for i in 0..200u32 {
        payload.extend_from_slice(format!("@r{i}\nACGTACGTACGT\n+\nIIIIIIIIIIII\n").as_bytes());
    }
    std::fs::write(&fastq, &payload).unwrap();

    let db = Database::in_memory();
    seqdb::core::udx::register_udx(&db, None);
    seqdb::core::schema::create_filestream_schema(&db, "").unwrap();
    let mut successes: Vec<i64> = Vec::new();
    for period in 1..=5u64 {
        let clock = FaultClock::new(FaultPlan {
            io_error_every: Some(period),
            ..FaultPlan::none()
        });
        // The seed shifts where this import lands on the fault schedule.
        for _ in 0..(seed % 4) {
            let _ = clock.inject_op();
        }
        db.filestream().set_fault_clock(Some(clock));
        match seqdb::core::import::import_filestream(&db, "", &fastq, period as i64, 1) {
            Ok(()) => successes.push(period as i64),
            Err(e) => assert!(matches!(e, DbError::Io(_)), "unexpected error type: {e}"),
        }
        db.filestream().set_fault_clock(None);

        // Invariants hold after every attempt, success or failure.
        let rows = db.catalog().table("ShortReadFiles").unwrap().row_count();
        assert_eq!(rows, successes.len() as u64, "no partial rows");
        let mut blobs = 0u64;
        let mut temps = 0u64;
        for entry in std::fs::read_dir(db.filestream().root()).unwrap() {
            match entry.unwrap().path().extension().and_then(|e| e.to_str()) {
                Some("blob") => blobs += 1,
                Some("tmp") => temps += 1,
                _ => {}
            }
        }
        assert_eq!(blobs, rows, "no orphan blobs, no rows without blobs");
        assert_eq!(temps, 0, "no temp files left behind");
        assert_eq!(
            db.filestream().total_bytes().unwrap(),
            rows * payload.len() as u64,
            "every stored blob is byte-complete"
        );
    }
    // Period 1 (every op fails) must fail; generous periods must recover
    // via retries — both paths are exercised in one run.
    assert!(
        !successes.is_empty() && successes.len() < 5,
        "expected a mix of clean failures and retried successes, got {successes:?}"
    );
    assert!(
        db.filestream().write_retries() > 0,
        "retries must have fired"
    );
    // A blob that survived faults still parses as FASTQ end to end.
    let r = db
        .query_sql(&format!(
            "SELECT COUNT(*) FROM ListShortReads({}, 1, 'FastQ')",
            successes[0]
        ))
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(200));
    std::fs::remove_dir_all(&dir).unwrap();
}

//! Failure injection and model-based property tests across crates.

use std::ops::Bound;
use std::sync::Arc;

use proptest::prelude::*;

use seqdb::engine::Database;
use seqdb::sql::DatabaseSqlExt;
use seqdb::storage::{BTree, BufferPool, MemPager, Page, PAGE_SIZE};
use seqdb::types::{DbError, Value};

// ----------------------------------------------------------------------
// Failure injection
// ----------------------------------------------------------------------

#[test]
fn corrupt_page_magic_is_an_error_not_a_panic() {
    let raw = vec![0xAAu8; PAGE_SIZE].into_boxed_slice();
    assert!(matches!(Page::from_bytes(raw), Err(DbError::Storage(_))));
    let short = vec![0u8; 100].into_boxed_slice();
    assert!(Page::from_bytes(short).is_err());
}

#[test]
fn deleted_blob_surfaces_as_not_found_in_sql() {
    let db = Database::in_memory();
    seqdb::core::udx::register_udx(&db, None);
    seqdb::core::schema::create_filestream_schema(&db, "").unwrap();
    let fq = b"@r1\nACGT\n+\nIIII\n";
    let guid = db.filestream().insert(fq).unwrap();
    db.catalog()
        .table("ShortReadFiles")
        .unwrap()
        .insert(&seqdb::types::Row::new(vec![
            Value::Guid(guid),
            Value::Int(1),
            Value::Int(1),
            Value::Guid(guid),
        ]))
        .unwrap();
    // Works before deletion...
    let r = db
        .query_sql("SELECT COUNT(*) FROM ListShortReads(1, 1, 'FastQ')")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(1));
    // ...then the blob vanishes behind the database's back.
    db.filestream().delete(guid).unwrap();
    let err = db
        .query_sql("SELECT COUNT(*) FROM ListShortReads(1, 1, 'FastQ')")
        .unwrap_err();
    assert!(matches!(err, DbError::NotFound(_)), "{err}");
}

#[test]
fn malformed_blob_content_fails_cleanly() {
    let db = Database::in_memory();
    seqdb::core::udx::register_udx(&db, None);
    seqdb::core::schema::create_filestream_schema(&db, "").unwrap();
    // Not FASTQ at all.
    let guid = db.filestream().insert(b"this is not fastq").unwrap();
    db.catalog()
        .table("ShortReadFiles")
        .unwrap()
        .insert(&seqdb::types::Row::new(vec![
            Value::Guid(guid),
            Value::Int(2),
            Value::Int(1),
            Value::Guid(guid),
        ]))
        .unwrap();
    let err = db
        .query_sql("SELECT COUNT(*) FROM ListShortReads(2, 1, 'FastQ')")
        .unwrap_err();
    assert!(matches!(err, DbError::InvalidData(_)), "{err}");
}

#[test]
fn udf_errors_propagate_through_queries() {
    let db = Database::in_memory();
    db.execute_sql_script(
        "CREATE TABLE t (x INT);
         INSERT INTO t VALUES (1), (0);",
    )
    .unwrap();
    // Division by zero in the projection of the second row.
    let err = db.query_sql("SELECT 10 / x FROM t").unwrap_err();
    assert!(err.to_string().contains("division by zero"), "{err}");
}

// ----------------------------------------------------------------------
// Model-based property tests
// ----------------------------------------------------------------------

#[derive(Debug, Clone)]
enum TreeOp {
    Insert(u16, u8),
    Delete(u16),
    Get(u16),
}

fn tree_op() -> impl Strategy<Value = TreeOp> {
    prop_oneof![
        (any::<u16>(), any::<u8>()).prop_map(|(k, v)| TreeOp::Insert(k % 512, v)),
        any::<u16>().prop_map(|k| TreeOp::Delete(k % 512)),
        any::<u16>().prop_map(|k| TreeOp::Get(k % 512)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn btree_matches_std_btreemap(ops in proptest::collection::vec(tree_op(), 1..300)) {
        let pool = BufferPool::new(Arc::new(MemPager::new()), 128);
        let tree = BTree::create(pool).unwrap();
        let mut model = std::collections::BTreeMap::new();
        for op in ops {
            match op {
                TreeOp::Insert(k, v) => {
                    let old = tree.insert(&k.to_be_bytes(), &[v]).unwrap();
                    let model_old = model.insert(k, v);
                    prop_assert_eq!(old.map(|o| o[0]), model_old);
                }
                TreeOp::Delete(k) => {
                    let got = tree.delete(&k.to_be_bytes()).unwrap();
                    let model_got = model.remove(&k);
                    prop_assert_eq!(got.map(|o| o[0]), model_got);
                }
                TreeOp::Get(k) => {
                    let got = tree.get(&k.to_be_bytes()).unwrap();
                    prop_assert_eq!(got.map(|o| o[0]), model.get(&k).copied());
                }
            }
        }
        // Final full ordered scan matches the model.
        let scanned: Vec<(u16, u8)> = tree
            .range(Bound::Unbounded, Bound::Unbounded)
            .unwrap()
            .map(|e| {
                let (k, v) = e.unwrap();
                (u16::from_be_bytes(k.try_into().unwrap()), v[0])
            })
            .collect();
        let expect: Vec<(u16, u8)> = model.into_iter().collect();
        prop_assert_eq!(scanned, expect);
    }

    #[test]
    fn sql_roundtrip_across_compression_modes(
        rows in proptest::collection::vec(
            (0i64..100_000, "[ACGTN]{1,64}", any::<bool>()),
            1..60,
        )
    ) {
        // De-duplicate keys (primary key).
        let mut seen = std::collections::HashSet::new();
        let rows: Vec<_> = rows
            .into_iter()
            .filter(|(k, _, _)| seen.insert(*k))
            .collect();
        for comp in ["NONE", "ROW", "PAGE"] {
            let db = Database::in_memory();
            db.execute_sql(&format!(
                "CREATE TABLE t (id INT PRIMARY KEY, seq VARCHAR(64), flag INT)
                 WITH (DATA_COMPRESSION = {comp})"
            ))
            .unwrap();
            for (id, seq, flag) in &rows {
                db.execute_sql(&format!(
                    "INSERT INTO t VALUES ({id}, '{seq}', {})",
                    *flag as i64
                ))
                .unwrap();
            }
            let r = db.query_sql("SELECT id, seq, flag FROM t ORDER BY id").unwrap();
            prop_assert_eq!(r.rows.len(), rows.len());
            let mut sorted = rows.clone();
            sorted.sort_by_key(|(k, _, _)| *k);
            for (row, (id, seq, flag)) in r.rows.iter().zip(&sorted) {
                prop_assert_eq!(&row[0], &Value::Int(*id));
                prop_assert_eq!(&row[1], &Value::text(seq.as_str()));
                prop_assert_eq!(&row[2], &Value::Int(*flag as i64));
            }
        }
    }

    #[test]
    fn group_by_matches_handrolled_aggregation(
        rows in proptest::collection::vec((0i64..8, -100i64..100), 0..120)
    ) {
        let db = Database::in_memory();
        db.execute_sql("CREATE TABLE t (g INT, v INT)").unwrap();
        for (g, v) in &rows {
            db.execute_sql(&format!("INSERT INTO t VALUES ({g}, {v})")).unwrap();
        }
        let r = db
            .query_sql("SELECT g, COUNT(*), SUM(v), MIN(v), MAX(v) FROM t GROUP BY g ORDER BY g")
            .unwrap();
        let mut model: std::collections::BTreeMap<i64, (i64, i64, i64, i64)> =
            std::collections::BTreeMap::new();
        for (g, v) in &rows {
            let e = model.entry(*g).or_insert((0, 0, i64::MAX, i64::MIN));
            e.0 += 1;
            e.1 += v;
            e.2 = e.2.min(*v);
            e.3 = e.3.max(*v);
        }
        prop_assert_eq!(r.rows.len(), model.len());
        for (row, (g, (n, s, mn, mx))) in r.rows.iter().zip(model) {
            prop_assert_eq!(&row[0], &Value::Int(g));
            prop_assert_eq!(&row[1], &Value::Int(n));
            prop_assert_eq!(&row[2], &Value::Int(s));
            prop_assert_eq!(&row[3], &Value::Int(mn));
            prop_assert_eq!(&row[4], &Value::Int(mx));
        }
    }

    #[test]
    fn order_by_is_a_permutation_and_sorted(
        vals in proptest::collection::vec(-1000i64..1000, 0..200)
    ) {
        let db = Database::in_memory();
        db.execute_sql("CREATE TABLE t (v INT)").unwrap();
        for v in &vals {
            db.execute_sql(&format!("INSERT INTO t VALUES ({v})")).unwrap();
        }
        let r = db.query_sql("SELECT v FROM t ORDER BY v DESC").unwrap();
        let got: Vec<i64> = r.rows.iter().map(|x| x[0].as_int().unwrap()).collect();
        let mut expect = vals.clone();
        expect.sort_unstable_by(|a, b| b.cmp(a));
        prop_assert_eq!(got, expect);
    }
}

//! End-to-end tests for the observability surfaces: `EXPLAIN ANALYZE`
//! actuals, the counter/wait-stats/query-stats DMVs, and the
//! `wait_state` column of `DM_EXEC_REQUESTS()` — exercised through the
//! same SQL a DBA would type.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use seqdb::core::dataset::{DgeDataset, Scale};
use seqdb::core::{queries, workflow};
use seqdb::engine::{Database, ExecContext, TableFunction, TvfCursor};
use seqdb::sql::{DatabaseSqlExt, SessionSqlExt};
use seqdb::types::{Column, DataType, DbError, Result, Row, Schema, Value};

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seqdb-obs-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `NUMBERS(n)` emits 0..n — an effectively endless stream when `n` is
/// huge, for observing in-flight statements.
struct Numbers;

struct NumbersCursor {
    next: i64,
    limit: i64,
}

impl TvfCursor for NumbersCursor {
    fn move_next(&mut self) -> Result<bool> {
        self.next += 1;
        Ok(self.next <= self.limit)
    }
    fn fill_row(&mut self) -> Result<Row> {
        Ok(Row::new(vec![Value::Int(self.next - 1)]))
    }
}

impl TableFunction for Numbers {
    fn name(&self) -> &str {
        "NUMBERS"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![Column::new("n", DataType::Int)]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        Ok(Box::new(NumbersCursor {
            next: 0,
            limit: args[0].as_int()?,
        }))
    }
}

/// 12k distinct groups: over the parallel threshold, far more than a
/// tight budget can hold resident.
fn setup_db() -> Arc<Database> {
    let db = Database::in_memory();
    db.catalog().register_table_fn(Arc::new(Numbers));
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, grp INT, v INT)")
        .unwrap();
    let rows: Vec<Row> = (0..12_000i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 10), Value::Int(i)]))
        .collect();
    db.insert_rows("t", &rows).unwrap();
    db
}

/// Read one counter from `DM_OS_PERFORMANCE_COUNTERS()`.
fn counter(db: &Arc<Database>, name: &str) -> i64 {
    let r = db
        .query_sql("SELECT counter_name, value FROM DM_OS_PERFORMANCE_COUNTERS()")
        .unwrap();
    r.rows
        .iter()
        .find(|row| row[0].as_text().unwrap() == name)
        .unwrap_or_else(|| panic!("counter {name} missing"))[1]
        .as_int()
        .unwrap()
}

/// Read `(wait_count, total_wait_ms)` for one class from
/// `DM_OS_WAIT_STATS()`.
fn wait_row(db: &Arc<Database>, class: &str) -> (i64, i64) {
    let r = db
        .query_sql("SELECT wait_class, wait_count, total_wait_ms FROM DM_OS_WAIT_STATS()")
        .unwrap();
    let row = r
        .rows
        .iter()
        .find(|row| row[0].as_text().unwrap() == class)
        .unwrap_or_else(|| panic!("wait class {class} missing"));
    (row[1].as_int().unwrap(), row[2].as_int().unwrap())
}

/// Flatten a plan-text result (one TEXT row per line) back into a string.
fn plan_text(r: &seqdb::engine::QueryResult) -> String {
    r.rows
        .iter()
        .map(|row| format!("{}\n", row[0].as_text().unwrap()))
        .collect()
}

// ----------------------------------------------------------------------
// EXPLAIN ANALYZE on a grouped aggregate over an imported FASTQ table
// ----------------------------------------------------------------------

#[test]
fn explain_analyze_reports_actuals_for_fastq_grouped_aggregate() {
    let dir = tmp("dge");
    let ds = DgeDataset::generate(
        &dir,
        &Scale {
            genome_bp: 60_000,
            n_chromosomes: 3,
            n_reads: 2_500,
            seed: 1234,
        },
    )
    .unwrap();
    let db = Database::in_memory();
    workflow::load_dge_designs(&db, &ds).unwrap();
    let sql = queries::query1_sql(workflow::NORM);

    // Ground truth: the same grouped aggregate run plainly.
    let plain = db.query_sql(&sql).unwrap();
    assert!(!plain.rows.is_empty());

    // A tight budget forces the aggregate/sort to spill, and the actuals
    // must survive to the rendered plan anyway.
    let session = db.create_session();
    session
        .execute_sql("SET QUERY_MEMORY_LIMIT_KB = 16")
        .unwrap();
    let analyzed = session
        .query_sql(&format!("EXPLAIN ANALYZE {sql}"))
        .unwrap();
    let text = plan_text(&analyzed);

    // Per-operator actuals on every header line.
    assert!(text.contains("actual_rows="), "{text}");
    assert!(text.contains("est_rows="), "{text}");
    assert!(text.contains("elapsed_ms="), "{text}");
    assert!(text.contains("peak_mem_kb="), "{text}");
    // The root operator produced exactly the plain run's row count, and
    // the summary footer agrees.
    assert!(
        text.contains(&format!("actual_rows={}", plain.rows.len())),
        "root actuals must match the plain run ({} rows):\n{text}",
        plain.rows.len()
    );
    assert!(
        text.contains(&format!("-- actual: {} rows", plain.rows.len())),
        "{text}"
    );
    // The tight budget must have spilled, and the spill must be
    // attributed in the rendering.
    let spilled = text
        .lines()
        .filter_map(|l| l.split("spill_files=").nth(1))
        .filter_map(|rest| {
            rest.split(|c: char| !c.is_ascii_digit())
                .next()
                .and_then(|n| n.parse::<u64>().ok())
        })
        .max()
        .unwrap_or(0);
    assert!(spilled > 0, "tight budget must surface spills:\n{text}");
    // Spill files are counted, then cleaned up.
    assert_eq!(db.temp().live_files().unwrap(), 0, "leaked spill files");

    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------------------
// DM_OS_WAIT_STATS records admission queueing under contention
// ----------------------------------------------------------------------

#[test]
fn wait_stats_record_admission_contention_across_sessions() {
    let db = setup_db();
    db.set_admission_pool_kb(Some(64));
    db.set_admission_wait_ms(100);

    let (count_before, _) = wait_row(&db, "ADMISSION");
    let waits_before = counter(&db, "admission_waits");

    // One admitted statement holds the whole pool; a second governed
    // session must queue at the gate and time out within the bound.
    let holder = db.create_session();
    holder.set_query_memory_limit_kb(Some(64));
    let guard = holder.begin_statement("SELECT id FROM t").unwrap();

    let blocked = db.create_session();
    blocked
        .execute_sql("SET QUERY_MEMORY_LIMIT_KB = 64")
        .unwrap();
    let err = blocked
        .query_sql("SELECT id, COUNT(*) FROM t GROUP BY id")
        .unwrap_err();
    assert!(matches!(err, DbError::AdmissionTimeout(_)), "{err}");
    drop(guard);

    // The blocked interval landed in the wait-stats DMV and the engine
    // counter registry — both visible through plain SQL.
    let (count_after, total_ms) = wait_row(&db, "ADMISSION");
    assert!(
        count_after > count_before,
        "ADMISSION wait_count must grow: {count_before} -> {count_after}"
    );
    assert!(total_ms >= 90, "waited ~100ms, DMV says {total_ms}ms");
    assert!(counter(&db, "admission_waits") > waits_before);

    // And a successful wait (capacity freed while queued) is recorded
    // too, not just the timeout path.
    db.set_admission_wait_ms(5_000);
    let holder2 = db.create_session();
    holder2.set_query_memory_limit_kb(Some(64));
    let guard2 = holder2.begin_statement("SELECT id FROM t").unwrap();
    let waiter = db.create_session();
    waiter
        .execute_sql("SET QUERY_MEMORY_LIMIT_KB = 64")
        .unwrap();
    let h = std::thread::spawn(move || waiter.query_sql("SELECT COUNT(*) FROM t"));
    std::thread::sleep(Duration::from_millis(50));
    drop(guard2);
    let r = h.join().unwrap().expect("waiter must run once pool frees");
    assert_eq!(r.rows[0][0], Value::Int(12_000));
    let (count_final, _) = wait_row(&db, "ADMISSION");
    assert!(count_final > count_after, "successful wait must count too");
}

// ----------------------------------------------------------------------
// wait_state column: queued at the gate, spilling mid-flight, and a
// mid-stream KILL that still lands in DM_EXEC_QUERY_STATS
// ----------------------------------------------------------------------

#[test]
fn wait_state_shows_queued_statements() {
    let db = setup_db();
    db.set_admission_pool_kb(Some(64));
    db.set_admission_wait_ms(5_000);

    let holder = db.create_session();
    holder.set_query_memory_limit_kb(Some(64));
    let guard = holder.begin_statement("SELECT id FROM t").unwrap();

    let waiter = db.create_session();
    waiter
        .execute_sql("SET QUERY_MEMORY_LIMIT_KB = 64")
        .unwrap();
    let waiter_sid = waiter.id() as i64;
    let h = std::thread::spawn(move || waiter.query_sql("SELECT COUNT(*) FROM t"));

    // The queued statement is visible in the DMV with wait_state =
    // 'queued' while it blocks at the admission gate.
    let observer = db.create_session();
    let deadline = Instant::now() + Duration::from_secs(4);
    loop {
        let r = observer
            .query_sql("SELECT session_id, wait_state FROM DM_EXEC_REQUESTS()")
            .unwrap();
        let state = r.rows.iter().find_map(|row| {
            (row[0] == Value::Int(waiter_sid)).then(|| row[1].as_text().unwrap().to_string())
        });
        match state.as_deref() {
            Some("queued") => break,
            _ if Instant::now() > deadline => {
                panic!("never observed wait_state=queued, last saw {state:?}")
            }
            _ => std::thread::sleep(Duration::from_millis(5)),
        }
    }
    drop(guard);
    let r = h.join().unwrap().expect("queued statement must admit");
    assert_eq!(r.rows[0][0], Value::Int(12_000));
    // The holder's statement ran with wait_state 'running' by
    // construction; nothing should remain registered now.
    assert_eq!(db.statements().running_count(), 0);
}

#[test]
fn kill_mid_spill_shows_spilling_state_and_still_records_query_stats() {
    let db = setup_db();

    // The victim runs an effectively endless spilling aggregation under
    // a tiny budget.
    let victim = db.create_session();
    victim.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();
    let victim_sid = victim.id() as i64;
    let victim_sql = "SELECT n, COUNT(*) FROM t CROSS APPLY NUMBERS(1000000000) GROUP BY n";
    let runner = std::thread::spawn(move || victim.query_sql(victim_sql).unwrap_err());

    // Observe the victim transition to wait_state = 'spilling', then
    // kill it mid-stream.
    let killer = db.create_session();
    let deadline = Instant::now() + Duration::from_secs(30);
    let statement_id = loop {
        let r = killer
            .query_sql("SELECT statement_id, session_id, wait_state FROM DM_EXEC_REQUESTS()")
            .unwrap();
        let found = r.rows.iter().find_map(|row| {
            (row[1] == Value::Int(victim_sid) && row[2].as_text().unwrap() == "spilling")
                .then(|| row[0].as_int().unwrap())
        });
        match found {
            Some(id) => break id,
            None if Instant::now() > deadline => panic!("never observed wait_state=spilling"),
            None => std::thread::sleep(Duration::from_millis(5)),
        }
    };
    let kills_before = counter(&db, "statement_kills");
    killer.execute_sql(&format!("KILL {statement_id}")).unwrap();
    let err = runner.join().unwrap();
    assert!(matches!(err, DbError::Cancelled(_)), "{err}");
    assert_eq!(counter(&db, "statement_kills"), kills_before + 1);

    // Satellite (b): the early-terminated statement must NOT silently
    // lose its stats — the kill still lands in DM_EXEC_QUERY_STATS with
    // its spill volume attributed.
    let r = killer
        .query_sql("SELECT sql_text, executions, total_spill_files FROM DM_EXEC_QUERY_STATS()")
        .unwrap();
    let row = r
        .rows
        .iter()
        .find(|row| row[0].as_text().unwrap() == victim_sql)
        .expect("killed statement missing from query stats");
    assert_eq!(row[1], Value::Int(1), "one execution recorded");
    assert!(
        row[2].as_int().unwrap() > 0,
        "the kill landed mid-spill; spill files must be attributed"
    );

    // No leaks after the kill, provable from SQL alone.
    assert_eq!(counter(&db, "bufferpool_pinned_frames"), 0);
    assert_eq!(counter(&db, "tempspace_live_files"), 0);
}

// ----------------------------------------------------------------------
// Leak check: counters prove a spilling workload cleans up after itself
// ----------------------------------------------------------------------

#[test]
fn counters_prove_no_leaks_after_spilling_workload() {
    let db = setup_db();
    let spill_files_before = counter(&db, "spill_files");

    let session = db.create_session();
    session
        .execute_sql("SET QUERY_MEMORY_LIMIT_KB = 8")
        .unwrap();
    for _ in 0..3 {
        let r = session
            .query_sql("SELECT id, COUNT(*), SUM(v) FROM t GROUP BY id")
            .unwrap();
        assert_eq!(r.rows.len(), 12_000);
    }

    // The workload spilled (global monotonic counter moved)...
    assert!(counter(&db, "spill_files") > spill_files_before);
    // ...and both leak gauges read zero afterwards, from SQL alone.
    assert_eq!(counter(&db, "bufferpool_pinned_frames"), 0);
    assert_eq!(counter(&db, "tempspace_live_files"), 0);

    // The statement history aggregated all three executions of the
    // (identical) statement text.
    let r = db
        .query_sql("SELECT sql_text, executions, total_rows FROM DM_EXEC_QUERY_STATS()")
        .unwrap();
    let row = r
        .rows
        .iter()
        .find(|row| row[0].as_text().unwrap().contains("GROUP BY id"))
        .expect("statement missing from history");
    assert_eq!(row[1], Value::Int(3), "three executions folded together");
    assert_eq!(row[2], Value::Int(36_000), "12k rows per execution");
}

// ----------------------------------------------------------------------
// Counter monotonicity under arbitrary small workloads
// ----------------------------------------------------------------------

/// Gauges may go up and down; everything else in the counter DMV must
/// only ever grow.
const GAUGES: &[&str] = &[
    "bufferpool_pinned_frames",
    "bufferpool_cached_frames",
    "tempspace_live_files",
];

fn counter_snapshot(db: &Arc<Database>) -> Vec<(String, i64)> {
    let r = db
        .query_sql("SELECT counter_name, value FROM DM_OS_PERFORMANCE_COUNTERS()")
        .unwrap();
    r.rows
        .iter()
        .map(|row| {
            (
                row[0].as_text().unwrap().to_string(),
                row[1].as_int().unwrap(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Any interleaving of inserts, plain scans and budgeted (spilling)
    /// aggregates moves every non-gauge counter monotonically, and every
    /// wait-stats row as well.
    #[test]
    fn counters_are_monotonic_under_arbitrary_workloads(
        ops in proptest::collection::vec(0usize..3, 1..6),
    ) {
        let db = Database::in_memory();
        db.execute_sql("CREATE TABLE m (id INT NOT NULL, v INT)").unwrap();
        let rows: Vec<Row> = (0..2_000i64)
            .map(|i| Row::new(vec![Value::Int(i), Value::Int(i * 7)]))
            .collect();
        db.insert_rows("m", &rows).unwrap();
        let tight = db.create_session();
        tight.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();

        let mut before = counter_snapshot(&db);
        before.retain(|(n, _)| !GAUGES.contains(&n.as_str()));
        let waits_before = db
            .query_sql("SELECT wait_class, wait_count, total_wait_ms FROM DM_OS_WAIT_STATS()")
            .unwrap();

        for (i, op) in ops.iter().enumerate() {
            match op {
                0 => {
                    let r = db.query_sql("SELECT COUNT(*) FROM m").unwrap();
                    prop_assert_eq!(&r.rows[0][0], &Value::Int(2_000));
                }
                1 => {
                    let r = tight
                        .query_sql("SELECT id, SUM(v) FROM m GROUP BY id")
                        .unwrap();
                    prop_assert_eq!(r.rows.len(), 2_000);
                }
                _ => {
                    db.insert_rows(
                        "m",
                        &[Row::new(vec![Value::Int(10_000 + i as i64), Value::Int(0)])],
                    )
                    .unwrap();
                    db.execute_sql(&format!("DELETE FROM m WHERE id = {}", 10_000 + i))
                        .unwrap();
                }
            }
        }

        let mut after = counter_snapshot(&db);
        after.retain(|(n, _)| !GAUGES.contains(&n.as_str()));
        prop_assert_eq!(before.len(), after.len(), "counter set must be stable");
        for ((name, b), (name2, a)) in before.iter().zip(after.iter()) {
            prop_assert_eq!(name, name2, "counter order must be stable");
            prop_assert!(a >= b, "counter {} went backwards: {} -> {}", name, b, a);
        }
        let waits_after = db
            .query_sql("SELECT wait_class, wait_count, total_wait_ms FROM DM_OS_WAIT_STATS()")
            .unwrap();
        for (b, a) in waits_before.rows.iter().zip(waits_after.rows.iter()) {
            prop_assert_eq!(&b[0], &a[0]);
            prop_assert!(a[1].as_int().unwrap() >= b[1].as_int().unwrap());
            prop_assert!(a[2].as_int().unwrap() >= b[2].as_int().unwrap());
        }
    }
}

//! Vectorized-execution equivalence and robustness: batch mode must be
//! observably identical to row-at-a-time execution (same result
//! multisets under any batch size, DOP, or memory budget), and the
//! governor contracts — KILL, timeouts, spill cleanup, pin accounting —
//! must hold mid-batch exactly as they do mid-row.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use seqdb::engine::{Database, ExecContext, TableFunction, TvfCursor};
use seqdb::sql::{DatabaseSqlExt, SessionSqlExt};
use seqdb::types::{Column, DataType, DbError, Result, Row, Schema, Value};

/// `NUMBERS(n)` emits 0..n — an effectively endless stream for the
/// cancellation and timeout tests.
struct Numbers;

struct NumbersCursor {
    next: i64,
    limit: i64,
}

impl TvfCursor for NumbersCursor {
    fn move_next(&mut self) -> Result<bool> {
        self.next += 1;
        Ok(self.next <= self.limit)
    }
    fn fill_row(&mut self) -> Result<Row> {
        Ok(Row::new(vec![Value::Int(self.next - 1)]))
    }
}

impl TableFunction for Numbers {
    fn name(&self) -> &str {
        "NUMBERS"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![Column::new("n", DataType::Int)]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        Ok(Box::new(NumbersCursor {
            next: 0,
            limit: args[0].as_int()?,
        }))
    }
}

/// Render a result as a sorted multiset of row strings, so two
/// executions compare regardless of row order.
fn sorted_rows(r: &seqdb::engine::QueryResult) -> Vec<String> {
    let mut out: Vec<String> = r.rows.iter().map(|row| format!("{row:?}")).collect();
    out.sort();
    out
}

fn counter(db: &Arc<Database>, name: &str) -> i64 {
    let r = db
        .query_sql(&format!(
            "SELECT value FROM DM_OS_PERFORMANCE_COUNTERS() WHERE counter_name = '{name}'"
        ))
        .unwrap();
    r.rows.first().map_or(0, |row| row[0].as_int().unwrap())
}

// ----------------------------------------------------------------------
// Property: batch execution ≡ row execution over random plans
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn batch_and_row_modes_agree_on_random_plans(
        rows in proptest::collection::vec((0i64..9, -50i64..50), 0..400),
        k in -60i64..60,
        budget_kb in 2i64..8,
    ) {
        let db = Database::in_memory();
        db.execute_sql("CREATE TABLE t (id INT NOT NULL, grp INT, v INT)")
            .unwrap();
        db.execute_sql("CREATE TABLE s (g INT, name VARCHAR(8))").unwrap();
        // grp 0 maps to NULL so predicates and join keys both see NULLs;
        // v is NULL on every 7th row to exercise the kernel's NULL rule.
        let t_rows: Vec<Row> = rows
            .iter()
            .enumerate()
            .map(|(i, (g, v))| {
                let grp = if *g == 0 { Value::Null } else { Value::Int(*g) };
                let val = if i % 7 == 3 { Value::Null } else { Value::Int(*v) };
                Row::new(vec![Value::Int(i as i64), grp, val])
            })
            .collect();
        db.insert_rows("t", &t_rows).unwrap();
        for g in 0..6i64 {
            db.insert_rows(
                "s",
                &[Row::new(vec![Value::Int(g), Value::text(format!("lane{g}"))])],
            )
            .unwrap();
        }

        // Shapes chosen to cover every native batch path: the scan
        // kernel in both operand orders, filter→project, aggregation
        // with and without GROUP BY, the hash-join probe, and TopN.
        let queries = [
            format!("SELECT id, v FROM t WHERE v < {k}"),
            format!("SELECT id FROM t WHERE {k} >= v"),
            format!("SELECT id + v, grp FROM t WHERE v <> {k}"),
            "SELECT grp, COUNT(*), SUM(v) FROM t GROUP BY grp".to_string(),
            format!("SELECT COUNT(*), SUM(v) FROM t WHERE v > {k}"),
            "SELECT COUNT(*) FROM t JOIN s ON (t.grp = s.g)".to_string(),
            "SELECT TOP 10 id FROM t ORDER BY v, id".to_string(),
        ];

        for sql in &queries {
            // Baseline: forced row-at-a-time, serial, unlimited memory.
            db.execute_sql("SET BATCH_SIZE = 0").unwrap();
            db.execute_sql("SET MAX_DOP = 1").unwrap();
            db.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 0").unwrap();
            let expect = sorted_rows(&db.query_sql(sql).unwrap());

            for batch in [1usize, 7, 1024] {
                for (dop, budget) in [(1usize, 0i64), (4, budget_kb)] {
                    db.execute_sql(&format!("SET BATCH_SIZE = {batch}")).unwrap();
                    db.execute_sql(&format!("SET MAX_DOP = {dop}")).unwrap();
                    db.execute_sql(&format!("SET QUERY_MEMORY_LIMIT_KB = {budget}"))
                        .unwrap();
                    match db.query_sql(sql) {
                        Ok(r) => prop_assert_eq!(
                            sorted_rows(&r),
                            expect.clone(),
                            "batch={} dop={} budget={}kb sql={}",
                            batch, dop, budget, sql
                        ),
                        // A tiny budget may legitimately refuse a join
                        // whose one hash bucket exceeds it — typed, not
                        // silent truncation.
                        Err(DbError::ResourceExhausted(_)) => {}
                        Err(other) => prop_assert!(false, "unexpected error {:?}", other),
                    }
                    prop_assert_eq!(db.temp().live_files().unwrap(), 0, "leaked spill files");
                }
            }
        }
        prop_assert_eq!(db.pool().pinned_frames(), 0, "leaked buffer pins");
    }
}

// ----------------------------------------------------------------------
// Mid-batch KILL and timeout: cancellation is honored between (and
// inside) batches, with no leaked pins or temp files
// ----------------------------------------------------------------------

#[test]
fn kill_lands_mid_batch_without_leaks() {
    let db = Database::in_memory();
    db.catalog().register_table_fn(Arc::new(Numbers));
    let pins_before = db.pool().pinned_frames();

    let victim = db.create_session();
    victim.execute_sql("SET BATCH_SIZE = 1024").unwrap();
    let victim_sid = victim.id() as i64;
    let runner = std::thread::spawn(move || {
        victim
            .query_sql("SELECT COUNT(*) FROM NUMBERS(1000000000)")
            .unwrap_err()
    });

    let killer = db.create_session();
    let deadline = Instant::now() + Duration::from_secs(10);
    let statement_id = loop {
        let r = killer
            .query_sql("SELECT statement_id, session_id FROM DM_EXEC_REQUESTS()")
            .unwrap();
        let found = r
            .rows
            .iter()
            .find_map(|row| (row[1] == Value::Int(victim_sid)).then(|| row[0].as_int().unwrap()));
        match found {
            Some(id) => break id,
            None if Instant::now() > deadline => panic!("victim never registered"),
            None => std::thread::sleep(Duration::from_millis(2)),
        }
    };
    let kills_before = counter(&db, "statement_kills");
    killer.execute_sql(&format!("KILL {statement_id}")).unwrap();
    let err = runner.join().unwrap();
    assert!(matches!(err, DbError::Cancelled(_)), "{err}");
    assert_eq!(counter(&db, "statement_kills"), kills_before + 1);
    assert_eq!(db.pool().pinned_frames(), pins_before, "leaked pins");
    assert_eq!(db.temp().live_files().unwrap(), 0, "leaked temp files");
}

#[test]
fn timeout_fires_under_batch_mode_without_leaks() {
    let db = Database::in_memory();
    db.catalog().register_table_fn(Arc::new(Numbers));
    db.execute_sql("SET BATCH_SIZE = 1024").unwrap();
    db.execute_sql("SET QUERY_TIMEOUT_MS = 50").unwrap();
    let start = Instant::now();
    let err = db
        .query_sql("SELECT COUNT(*) FROM NUMBERS(1000000000)")
        .unwrap_err();
    assert!(matches!(err, DbError::Timeout(_)), "{err}");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "timeout must fire promptly, took {:?}",
        start.elapsed()
    );
    assert_eq!(db.pool().pinned_frames(), 0, "leaked pins");
    assert_eq!(db.temp().live_files().unwrap(), 0, "leaked temp files");

    // The clock disarmed, the same session keeps working.
    db.execute_sql("SET QUERY_TIMEOUT_MS = 0").unwrap();
    let r = db.query_sql("SELECT COUNT(*) FROM NUMBERS(100)").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(100));
}

// ----------------------------------------------------------------------
// Spill under batch mode: exact results, all resources released
// ----------------------------------------------------------------------

#[test]
fn batched_aggregate_spills_exactly_and_releases_everything() {
    let db = Database::in_memory();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, v INT)")
        .unwrap();
    let rows: Vec<Row> = (0..3000i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 100)]))
        .collect();
    db.insert_rows("t", &rows).unwrap();

    let pins_before = db.pool().pinned_frames();
    db.execute_sql("SET BATCH_SIZE = 1024").unwrap();
    db.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();
    db.temp().reset_counters();
    let r = db
        .query_sql("SELECT id, COUNT(*) FROM t GROUP BY id")
        .unwrap();
    assert_eq!(r.rows.len(), 3000, "every group exactly once");
    assert!(r.rows.iter().all(|row| row[1] == Value::Int(1)));
    assert!(db.temp().spill_count() > 0, "8 KiB must force a spill");
    assert_eq!(db.temp().live_files().unwrap(), 0, "leaked spill files");
    assert_eq!(db.pool().pinned_frames(), pins_before, "leaked pins");
    assert_eq!(counter(&db, "tempspace_live_files"), 0);
}

// ----------------------------------------------------------------------
// EXPLAIN ANALYZE surfaces batch shape
// ----------------------------------------------------------------------

#[test]
fn explain_analyze_reports_batches_in_batch_mode() {
    let db = Database::in_memory();
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, v INT)")
        .unwrap();
    let rows: Vec<Row> = (0..5000i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 10)]))
        .collect();
    db.insert_rows("t", &rows).unwrap();

    db.execute_sql("SET BATCH_SIZE = 512").unwrap();
    let r = db
        .query_sql("EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE v < 7")
        .unwrap();
    let text = r
        .rows
        .iter()
        .map(|row| row[0].as_text().unwrap().to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(text.contains("batches="), "batch stats missing:\n{text}");
    assert!(text.contains("avg_batch="), "batch stats missing:\n{text}");

    // Row mode reports no batch shape — the stat is mode-specific.
    db.execute_sql("SET BATCH_SIZE = 0").unwrap();
    let r = db
        .query_sql("EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE v < 7")
        .unwrap();
    let text = r
        .rows
        .iter()
        .map(|row| row[0].as_text().unwrap().to_string())
        .collect::<Vec<_>>()
        .join("\n");
    assert!(
        !text.contains("batches="),
        "row mode must not batch:\n{text}"
    );
}

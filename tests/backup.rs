//! End-to-end tests for online backup and verified restore: a fuzzy
//! backup taken under live wire traffic restored into a queryable
//! database after the source directory is destroyed, incremental
//! backups restoring later state, crash-at-every-sync sweeps that must
//! never corrupt the source, and seeded rot in the backup set failing
//! restore with the typed `BackupCorrupt`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use seqdb::engine::{restore_database, verify_backup, Database};
use seqdb::server::{Client, Server, ServerConfig};
use seqdb::sql::DatabaseSqlExt;
use seqdb::storage::{rot_file, sha256::sha256, FaultClock, FaultPlan, PAGE_SIZE};
use seqdb::types::{DbError, Row, Value};

/// The CI fault seed, so the `backup-robustness` matrix plants rot and
/// schedules crashes at different positions per job.
fn fault_seed() -> u64 {
    std::env::var("SEQDB_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("seqdb-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn count(db: &Arc<Database>, table: &str) -> i64 {
    db.query_sql(&format!("SELECT COUNT(*) FROM {table}"))
        .unwrap()
        .rows[0][0]
        .as_int()
        .unwrap()
}

/// Seed the standard fixture: two tables and a FileStream blob.
fn seed_fixture(db: &Arc<Database>) -> u128 {
    db.execute_sql("CREATE TABLE runs (id INT, tag VARCHAR(40))")
        .unwrap();
    db.execute_sql("CREATE TABLE live (id INT, v INT)").unwrap();
    let rows: Vec<Row> = (0..3000i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::text(format!("RUN-{i:06}"))]))
        .collect();
    db.insert_rows("runs", &rows).unwrap();
    db.filestream().insert(&b"GATTACA".repeat(2048)).unwrap()
}

// ----------------------------------------------------------------------
// The acceptance scenario: online backup under live wire traffic, source
// directory destroyed, restore verified and queryable.
// ----------------------------------------------------------------------

#[test]
fn online_backup_restores_after_source_is_destroyed() {
    let dir = fresh_dir("backup-e2e");
    let source = dir.join("db");
    let db = Database::open(&source).unwrap();
    let guid = seed_fixture(&db);
    let blob_bytes = b"GATTACA".repeat(2048);

    let server = Server::start(db.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.addr();

    // Live traffic for the whole backup window: reads over `runs`,
    // writes into `live`. Every statement must succeed — an online
    // backup that fails queries is not online.
    let stop = Arc::new(AtomicBool::new(false));
    let traffic = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            let mut i = 0i64;
            let mut errors = 0usize;
            while !stop.load(Ordering::SeqCst) {
                if c.query(&format!("INSERT INTO live VALUES ({i}, {})", i * 7))
                    .is_err()
                {
                    errors += 1;
                }
                if c.query("SELECT COUNT(*) FROM runs").is_err() {
                    errors += 1;
                }
                i += 1;
            }
            errors
        })
    };
    // Let the workload get going before the backup starts.
    std::thread::sleep(Duration::from_millis(50));

    let backup_dir = dir.join("b1");
    let mut admin = Client::connect(addr).unwrap();
    let report = admin
        .query(&format!("BACKUP DATABASE TO '{}'", backup_dir.display()))
        .unwrap();
    assert_eq!(report.rows[0][1], Value::text("full"));
    assert!(report.rows[0][2].as_int().unwrap() > 0, "pages copied");

    std::thread::sleep(Duration::from_millis(30));
    stop.store(true, Ordering::SeqCst);
    let traffic_errors = traffic.join().unwrap();
    assert_eq!(traffic_errors, 0, "live traffic failed during backup");
    server.drain().unwrap();

    // The backup is a point-in-time snapshot: `runs` and the blob are
    // fully in it; `live` holds whatever had committed by then.
    let live_at_source = count(&db, "live");
    drop(db);

    // Destroy the source. Everything from here on comes from the set.
    std::fs::remove_dir_all(&source).unwrap();

    let verify = verify_backup(&backup_dir).unwrap();
    assert!(verify.pages_verified > 0);
    assert_eq!(verify.blobs_verified, 1);

    let target = dir.join("restored");
    let report = restore_database(&backup_dir, &target).unwrap();
    assert!(report.pages_verified > 0);
    assert_eq!(report.chain_depth, 1);

    let db = Database::open(&target).unwrap();
    assert_eq!(count(&db, "runs"), 3000);
    let live_restored = count(&db, "live");
    assert!(
        live_restored <= live_at_source,
        "restored live count {live_restored} beyond source {live_at_source}"
    );
    // The restored database passes its own integrity scrub.
    let check = db.execute_sql("CHECK DATABASE").unwrap();
    let last = check.rows.last().unwrap();
    assert_eq!(last[2], Value::text("ok"), "restored db fails scrub");
    // The blob round-tripped bit for bit.
    let mut r = db.filestream().open_reader(guid, true).unwrap();
    assert_eq!(
        sha256(&r.read_all().unwrap()),
        sha256(&blob_bytes),
        "blob hash changed across backup/restore"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ----------------------------------------------------------------------
// Incremental: a second backup copies only what changed and restores
// the later state.
// ----------------------------------------------------------------------

#[test]
fn incremental_backup_restores_later_state() {
    let dir = fresh_dir("backup-incr");
    let source = dir.join("db");
    let db = Database::open(&source).unwrap();
    seed_fixture(&db);

    let b1 = dir.join("b1");
    let full = db.backup_database(&b1, None).unwrap();
    assert!(!full.incremental);

    // More rows and a second blob after the full backup.
    let more: Vec<Row> = (3000..4000i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::text(format!("RUN-{i:06}"))]))
        .collect();
    db.insert_rows("runs", &more).unwrap();
    db.filestream().insert(b"new-after-full").unwrap();

    let b2 = dir.join("b2");
    let incr = db
        .execute_sql(&format!(
            "BACKUP DATABASE TO '{}' INCREMENTAL FROM '{}'",
            b2.display(),
            b1.display()
        ))
        .unwrap();
    assert_eq!(incr.rows[0][1], Value::text("incremental"));
    let pages_copied = incr.rows[0][2].as_int().unwrap();
    let pages_skipped = incr.rows[0][3].as_int().unwrap();
    assert!(
        pages_skipped > 0,
        "incremental copied everything ({pages_copied} copied, 0 skipped)"
    );
    assert!(pages_copied < full.pages_copied as i64);
    // One blob changed hands, one was already in the base.
    assert_eq!(incr.rows[0][4], Value::Int(1));
    assert_eq!(incr.rows[0][5], Value::Int(1));
    drop(db);

    // Restoring the incremental resolves through the base chain and
    // yields the *later* state.
    let target = dir.join("restored");
    let report = restore_database(&b2, &target).unwrap();
    assert_eq!(report.chain_depth, 2);
    let db = Database::open(&target).unwrap();
    assert_eq!(count(&db, "runs"), 4000);
    assert_eq!(db.filestream().blob_names().unwrap().len(), 2);

    // The base alone still restores the earlier state.
    let t1 = dir.join("restored-base");
    restore_database(&b1, &t1).unwrap();
    let db1 = Database::open(&t1).unwrap();
    assert_eq!(count(&db1, "runs"), 3000);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ----------------------------------------------------------------------
// Crash at every sync point: the source must come through every schedule
// untouched, and the partial set must be detectably incomplete.
// ----------------------------------------------------------------------

#[test]
fn crash_at_every_sync_never_corrupts_source() {
    let seed = fault_seed();
    let dir = fresh_dir("backup-crash");
    let source = dir.join("db");
    let db = Database::open(&source).unwrap();
    seed_fixture(&db);

    let mut completed = false;
    for k in 0..8u64 {
        let dest = dir.join(format!("crash-{k}"));
        let clock = FaultClock::new(FaultPlan {
            seed,
            crash_after_syncs: Some(k),
            ..FaultPlan::none()
        });
        db.backup_state().set_fault_clock(Some(clock));
        match db.backup_database(&dest, None) {
            Err(_) => {
                // The partial set has no manifest (it is written last),
                // so verification refuses it outright.
                let err = verify_backup(&dest).unwrap_err();
                assert!(
                    matches!(&err, DbError::BackupCorrupt { object } if object.contains("backup.manifest")),
                    "partial set not refused: {err:?}"
                );
            }
            Ok(_) => {
                // The schedule ran out of sync points to crash at.
                verify_backup(&dest).unwrap();
                completed = true;
                break;
            }
        }
        // The *source* database is untouched after every crash: fully
        // queryable and scrub-clean.
        assert_eq!(count(&db, "runs"), 3000);
        let check = db.execute_sql("CHECK DATABASE").unwrap();
        assert_eq!(check.rows.last().unwrap()[2], Value::text("ok"));
    }
    db.backup_state().set_fault_clock(None);
    assert!(completed, "backup never survived the crash sweep");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ----------------------------------------------------------------------
// Seeded rot in the backup set: restore must refuse with the typed
// error naming the damaged object, never resurrect bad data.
// ----------------------------------------------------------------------

#[test]
fn rotted_backup_set_fails_restore_typed() {
    let seed = fault_seed();
    let dir = fresh_dir("backup-rot");
    let source = dir.join("db");
    let db = Database::open(&source).unwrap();
    seed_fixture(&db);
    db.checkpoint().unwrap();

    // Rot a data page.
    let b1 = dir.join("b1");
    db.backup_database(&b1, None).unwrap();
    let victim = db.catalog().table("runs").unwrap().heap.pages_snapshot()[1];
    rot_file(
        &b1.join("seqdb.data"),
        seed,
        victim * PAGE_SIZE as u64,
        PAGE_SIZE as u64,
    )
    .unwrap();
    let err = verify_backup(&b1).unwrap_err();
    assert!(
        matches!(&err, DbError::BackupCorrupt { object } if object.contains("page")),
        "{err:?}"
    );
    let err = restore_database(&b1, &dir.join("t1")).unwrap_err();
    assert!(matches!(&err, DbError::BackupCorrupt { .. }), "{err:?}");

    // Rot the blob copy.
    let b2 = dir.join("b2");
    db.backup_database(&b2, None).unwrap();
    let name = &db.filestream().blob_names().unwrap()[0];
    rot_file(
        &b2.join("filestream").join(format!("{name}.blob")),
        seed,
        0,
        64,
    )
    .unwrap();
    let err = verify_backup(&b2).unwrap_err();
    assert!(
        matches!(&err, DbError::BackupCorrupt { object } if object.contains("filestream:")),
        "{err:?}"
    );

    // Rot the catalog snapshot.
    let b3 = dir.join("b3");
    db.backup_database(&b3, None).unwrap();
    rot_file(&b3.join("catalog.seqdb"), seed, 0, 16).unwrap();
    let err = verify_backup(&b3).unwrap_err();
    assert!(
        matches!(&err, DbError::BackupCorrupt { object } if object.contains("catalog.seqdb")),
        "{err:?}"
    );

    // A missing manifest refuses outright.
    let b4 = dir.join("b4");
    db.backup_database(&b4, None).unwrap();
    std::fs::remove_file(b4.join("backup.manifest")).unwrap();
    let err = verify_backup(&b4).unwrap_err();
    assert!(
        matches!(&err, DbError::BackupCorrupt { object } if object.contains("backup.manifest")),
        "{err:?}"
    );

    // The wire carries the typed error end to end.
    let server = Server::start(db.clone(), "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    let err = c
        .query(&format!(
            "RESTORE DATABASE FROM '{}' VERIFY ONLY",
            b4.display()
        ))
        .unwrap_err();
    assert!(matches!(&err, DbError::BackupCorrupt { .. }), "{err:?}");
    server.drain().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

// ----------------------------------------------------------------------
// Disk full mid-backup: typed error, partial set cleaned up.
// ----------------------------------------------------------------------

#[test]
fn disk_full_mid_backup_cleans_up_partial_set() {
    let seed = fault_seed();
    let dir = fresh_dir("backup-enospc");
    let db = Database::open(&dir.join("db")).unwrap();
    seed_fixture(&db);

    let dest = dir.join("b1");
    let clock = FaultClock::new(FaultPlan {
        seed,
        disk_full_after_ops: Some(3),
        ..FaultPlan::none()
    });
    db.backup_state().set_fault_clock(Some(clock));
    let err = db.backup_database(&dest, None).unwrap_err();
    assert!(matches!(err, DbError::DiskFull(_)), "{err:?}");
    assert!(!dest.exists(), "partial set left behind after disk full");
    db.backup_state().set_fault_clock(None);

    // The next attempt (space recovered) succeeds into the same slot.
    db.backup_database(&dest, None).unwrap();
    verify_backup(&dest).unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

// ----------------------------------------------------------------------
// Guard rails: live restore refused, occupied destinations refused.
// ----------------------------------------------------------------------

#[test]
fn restore_guard_rails() {
    let dir = fresh_dir("backup-guard");
    let db = Database::open(&dir.join("db")).unwrap();
    seed_fixture(&db);
    let b1 = dir.join("b1");
    db.backup_database(&b1, None).unwrap();

    // Restoring over the live database is refused with guidance.
    let err = db
        .execute_sql(&format!("RESTORE DATABASE FROM '{}'", b1.display()))
        .unwrap_err();
    assert!(
        matches!(&err, DbError::Unsupported(m) if m.contains("TO")),
        "{err:?}"
    );

    // Backup into an occupied set is refused.
    let err = db.backup_database(&b1, None).unwrap_err();
    assert!(
        matches!(&err, DbError::Execution(m) if m.contains("already")),
        "{err:?}"
    );

    // Restore into an occupied directory is refused.
    let target = dir.join("restored");
    restore_database(&b1, &target).unwrap();
    let err = restore_database(&b1, &target).unwrap_err();
    assert!(
        matches!(&err, DbError::Execution(m) if m.contains("already")),
        "{err:?}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

// ----------------------------------------------------------------------
// Observability: DM_DB_BACKUP_STATUS reports progress and outcomes.
// ----------------------------------------------------------------------

#[test]
fn backup_status_dmv_reports_outcomes() {
    let dir = fresh_dir("backup-dmv");
    let db = Database::open(&dir.join("db")).unwrap();
    seed_fixture(&db);

    let idle = db
        .query_sql("SELECT state, pages_copied FROM DM_DB_BACKUP_STATUS()")
        .unwrap();
    assert_eq!(idle.rows[0][0], Value::text("idle"));

    db.backup_database(&dir.join("b1"), None).unwrap();
    let after = db
        .query_sql("SELECT state, pages_copied, last_outcome FROM DM_DB_BACKUP_STATUS()")
        .unwrap();
    assert_eq!(after.rows[0][0], Value::text("idle"));
    assert!(after.rows[0][1].as_int().unwrap() > 0);
    let outcome = after.rows[0][2].as_text().unwrap();
    assert!(outcome.starts_with("ok: full backup"), "{outcome}");
    std::fs::remove_dir_all(&dir).unwrap();
}

// ----------------------------------------------------------------------
// The periodic server backup thread: numbered sets, incremental after
// the first, stops at drain.
// ----------------------------------------------------------------------

#[test]
fn periodic_server_backups_write_restorable_sets() {
    let dir = fresh_dir("backup-periodic");
    let db = Database::open(&dir.join("db")).unwrap();
    seed_fixture(&db);

    let backups = dir.join("backups");
    let cfg = ServerConfig {
        backup_interval: Some(Duration::from_millis(60)),
        backup_dir: Some(backups.clone()),
        ..ServerConfig::default()
    };
    let server = Server::start(db.clone(), "127.0.0.1:0", cfg).unwrap();
    let mut c = Client::connect(server.addr()).unwrap();
    for i in 0..40i64 {
        c.query(&format!("INSERT INTO live VALUES ({i}, {i})"))
            .unwrap();
        std::thread::sleep(Duration::from_millis(5));
    }
    server.drain().unwrap();

    // At least the first set landed; every set present verifies, and
    // the newest restores to a queryable database.
    let mut last = None;
    for seq in 1.. {
        let set = backups.join(seq.to_string());
        if !set.join("backup.manifest").exists() {
            break;
        }
        verify_backup(&set).unwrap();
        last = Some(set);
    }
    let last = last.expect("no periodic backup set was written");
    drop(db);
    let target = dir.join("restored");
    restore_database(&last, &target).unwrap();
    let db = Database::open(&target).unwrap();
    assert_eq!(count(&db, "runs"), 3000);
    std::fs::remove_dir_all(&dir).unwrap();
}

// ----------------------------------------------------------------------
// Catalog durability: tables survive checkpoint + reopen (the property
// restore relies on to bring a set back as a queryable database).
// ----------------------------------------------------------------------

#[test]
fn tables_survive_reopen_via_catalog_snapshot() {
    let dir = fresh_dir("backup-reopen");
    let dbdir = dir.join("db");
    {
        let db = Database::open(&dbdir).unwrap();
        db.execute_sql("CREATE TABLE t (id INT, tag VARCHAR(16))")
            .unwrap();
        db.execute_sql("CREATE INDEX idx_tag ON t (tag)").unwrap();
        let rows: Vec<Row> = (0..100i64)
            .map(|i| Row::new(vec![Value::Int(i), Value::text(format!("x{i}"))]))
            .collect();
        db.insert_rows("t", &rows).unwrap();
        db.checkpoint().unwrap();
    }
    let db = Database::open(&dbdir).unwrap();
    assert_eq!(count(&db, "t"), 100);
    let one = db.query_sql("SELECT id FROM t WHERE tag = 'x42'").unwrap();
    assert_eq!(one.rows[0][0], Value::Int(42));
    std::fs::remove_dir_all(&dir).unwrap();
}

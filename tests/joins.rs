//! End-to-end tests for the hybrid Grace hash join: cost-based join
//! selection and `SET JOIN_STRATEGY` forcing, exact results under
//! budgets that force multi-level partition recursion, `EXPLAIN
//! ANALYZE` spill attribution on the join node, parallel partition
//! joins, mid-flight `KILL` cleanliness, and seeded spill-write faults
//! that must fail typed without ever corrupting results.

use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use seqdb::engine::{Database, ExecContext, QueryResult, TableFunction, TvfCursor};
use seqdb::sql::{DatabaseSqlExt, SessionSqlExt};
use seqdb::storage::{FaultClock, FaultPlan};
use seqdb::types::{Column, DataType, DbError, Result, Row, Schema, Value};

/// `NUMBERS(n)` emits 0..n — with a huge `n`, an effectively endless
/// build side for the cross-session KILL test.
struct Numbers;

struct NumbersCursor {
    next: i64,
    limit: i64,
}

impl TvfCursor for NumbersCursor {
    fn move_next(&mut self) -> Result<bool> {
        self.next += 1;
        Ok(self.next <= self.limit)
    }
    fn fill_row(&mut self) -> Result<Row> {
        Ok(Row::new(vec![Value::Int(self.next - 1)]))
    }
}

impl TableFunction for Numbers {
    fn name(&self) -> &str {
        "NUMBERS"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![Column::new("n", DataType::Int)]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        Ok(Box::new(NumbersCursor {
            next: 0,
            limit: args[0].as_int()?,
        }))
    }
}

/// Two heap tables with no useful ordering: `big` and `small`, each
/// `(k INT, pay INT)` where `k = i % keys` cycles (globally unsorted).
fn join_db(big: i64, big_keys: i64, small: i64, small_keys: i64) -> Arc<Database> {
    let db = Database::in_memory();
    db.execute_sql("CREATE TABLE big (k INT, pay INT)").unwrap();
    db.execute_sql("CREATE TABLE small (k INT, pay INT)")
        .unwrap();
    let rows: Vec<Row> = (0..big)
        .map(|i| Row::new(vec![Value::Int(i % big_keys), Value::Int(i)]))
        .collect();
    db.insert_rows("big", &rows).unwrap();
    let rows: Vec<Row> = (0..small)
        .map(|i| Row::new(vec![Value::Int(i % small_keys), Value::Int(i)]))
        .collect();
    db.insert_rows("small", &rows).unwrap();
    db
}

/// Flatten a plan-text result (one TEXT row per line) back into a string.
fn plan_text(r: &QueryResult) -> String {
    r.rows
        .iter()
        .map(|row| format!("{}\n", row[0].as_text().unwrap()))
        .collect()
}

/// Project every row to `Option<i64>` columns and sort, so join outputs
/// can be compared independent of emission order.
fn key_rows(r: &QueryResult) -> Vec<Vec<Option<i64>>> {
    let mut v: Vec<Vec<Option<i64>>> = r
        .rows
        .iter()
        .map(|row| row.values().iter().map(|c| c.as_int().ok()).collect())
        .collect();
    v.sort();
    v
}

const Q: &str = "SELECT a.k, a.pay, b.pay FROM big a JOIN small b ON (a.k = b.k)";

// ----------------------------------------------------------------------
// Cost-based selection and SET JOIN_STRATEGY forcing
// ----------------------------------------------------------------------

#[test]
fn cost_based_selection_and_strategy_forcing() {
    let db = join_db(4000, 1000, 2000, 1000);

    // Heap inputs with no exploitable order: the optimizer picks a hash
    // join and builds from the smaller (right) side.
    let p = plan_text(&db.query_sql(&format!("EXPLAIN {Q}")).unwrap());
    assert!(p.contains("Hash Match (Inner Join)"), "{p}");
    assert!(p.contains("(build=right)"), "{p}");

    // Forcing merge wraps both unsorted sides in explicit sorts.
    db.execute_sql("SET JOIN_STRATEGY = 2").unwrap();
    let p = plan_text(&db.query_sql(&format!("EXPLAIN {Q}")).unwrap());
    assert!(p.contains("Merge Join (Inner Join)"), "{p}");
    assert!(p.contains("Sort"), "{p}");
    let merge_rows = key_rows(&db.query_sql(Q).unwrap());

    // Forcing hash and auto agree with the forced merge result.
    db.execute_sql("SET JOIN_STRATEGY = 1").unwrap();
    let p = plan_text(&db.query_sql(&format!("EXPLAIN {Q}")).unwrap());
    assert!(p.contains("Hash Match (Inner Join)"), "{p}");
    assert_eq!(key_rows(&db.query_sql(Q).unwrap()), merge_rows);
    db.execute_sql("SET JOIN_STRATEGY = 0").unwrap();
    assert_eq!(key_rows(&db.query_sql(Q).unwrap()), merge_rows);

    // Out-of-range values are a typed error, not a silent default.
    let err = db.execute_sql("SET JOIN_STRATEGY = 9").unwrap_err();
    assert!(matches!(err, DbError::Unsupported(_)), "{err}");

    // A session-scoped override stays in its session.
    let s = db.create_session();
    s.execute_sql("SET JOIN_STRATEGY = 2").unwrap();
    let p = plan_text(&s.query_sql(&format!("EXPLAIN {Q}")).unwrap());
    assert!(p.contains("Merge Join (Inner Join)"), "{p}");
    let p = plan_text(&db.query_sql(&format!("EXPLAIN {Q}")).unwrap());
    assert!(
        p.contains("Hash Match (Inner Join)"),
        "server saw session SET: {p}"
    );
}

// ----------------------------------------------------------------------
// Acceptance: build ≥ 4x budget completes exactly via spilling, and
// EXPLAIN ANALYZE / DM_OS_WAIT_STATS attribute the spill to the join
// ----------------------------------------------------------------------

#[test]
fn spilled_join_is_exact_and_attributes_spill_to_the_join_node() {
    let db = join_db(6000, 1500, 3000, 1500);

    // Ground truth: forced sort+merge with no memory limit.
    db.execute_sql("SET JOIN_STRATEGY = 2").unwrap();
    let expect = key_rows(&db.query_sql(Q).unwrap());
    assert_eq!(expect.len(), 12_000, "1500 keys x 4 big x 2 small");
    db.execute_sql("SET JOIN_STRATEGY = 0").unwrap();

    // The 3000-row build side is well over 4x a 16 KiB budget, so the
    // hash join must partition to disk — and still be exact.
    db.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 16").unwrap();
    db.temp().reset_counters();
    assert_eq!(key_rows(&db.query_sql(Q).unwrap()), expect);
    assert!(db.temp().spill_count() > 0, "join never spilled");
    assert_eq!(db.temp().live_files().unwrap(), 0, "leaked partition files");

    // EXPLAIN ANALYZE pins the spill on the join operator itself.
    let p = plan_text(&db.query_sql(&format!("EXPLAIN ANALYZE {Q}")).unwrap());
    let join_line = p
        .lines()
        .find(|l| l.contains("Hash Match (Inner Join)"))
        .unwrap_or_else(|| panic!("no hash join in plan:\n{p}"));
    let files: u64 = join_line
        .split("spill_files=")
        .nth(1)
        .unwrap_or_else(|| panic!("join node has no spill actuals:\n{p}"))
        .split(|c: char| !c.is_ascii_digit())
        .next()
        .unwrap()
        .parse()
        .unwrap();
    assert!(files > 0, "{p}");

    // The waits surface under the dedicated JOIN_SPILL class.
    let r = db
        .query_sql("SELECT wait_class, wait_count, total_wait_ms FROM DM_OS_WAIT_STATS()")
        .unwrap();
    let waits = r
        .rows
        .iter()
        .find(|row| row[0].as_text().unwrap() == "JOIN_SPILL")
        .expect("JOIN_SPILL wait class missing");
    assert!(
        waits[1].as_int().unwrap() > 0,
        "no JOIN_SPILL waits recorded"
    );
}

// ----------------------------------------------------------------------
// Parallel partition joins agree with serial and merge
// ----------------------------------------------------------------------

#[test]
fn parallel_spilled_join_matches_serial_and_merge() {
    let db = join_db(8000, 2000, 4000, 2000);
    db.set_max_dop(4);

    // 12k combined input rows cross the parallel threshold, so the plan
    // advertises the partition-phase DOP.
    let p = plan_text(&db.query_sql(&format!("EXPLAIN {Q}")).unwrap());
    assert!(p.contains("[DOP=4]"), "{p}");

    db.execute_sql("SET JOIN_STRATEGY = 2").unwrap();
    let expect = key_rows(&db.query_sql(Q).unwrap());
    db.execute_sql("SET JOIN_STRATEGY = 0").unwrap();

    db.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 32").unwrap();
    db.temp().reset_counters();
    assert_eq!(key_rows(&db.query_sql(Q).unwrap()), expect);
    assert!(db.temp().spill_count() > 0, "parallel join never spilled");
    assert_eq!(db.temp().live_files().unwrap(), 0, "leaked partition files");

    // Dropping to DOP 1 takes the serial partition path, same answer.
    db.set_max_dop(1);
    assert_eq!(key_rows(&db.query_sql(Q).unwrap()), expect);
    assert_eq!(db.temp().live_files().unwrap(), 0);
}

// ----------------------------------------------------------------------
// Tight budgets force recursive repartitioning and stay exact
// ----------------------------------------------------------------------

#[test]
fn tight_budget_forces_multi_level_recursion_and_stays_exact() {
    // 600 distinct keys on both sides: ~66 KiB of build entries against
    // a 4 KiB budget needs several halvings before a partition fits.
    let db = join_db(600, 600, 600, 600);
    db.execute_sql("SET JOIN_STRATEGY = 2").unwrap();
    let expect = key_rows(&db.query_sql(Q).unwrap());
    assert_eq!(expect.len(), 600);

    // On input this small the cost model would (rightly) prefer sorting,
    // so force hash: the test is about recursion depth, not selection.
    db.execute_sql("SET JOIN_STRATEGY = 1").unwrap();
    db.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 4").unwrap();
    db.temp().reset_counters();
    assert_eq!(key_rows(&db.query_sql(Q).unwrap()), expect);
    // Level-0 partitioning alone creates at most 8 files (4 build + 4
    // probe); more means partition pairs re-partitioned recursively.
    assert!(
        db.temp().spill_count() >= 16,
        "expected recursive repartitioning, saw {} spill files",
        db.temp().spill_count()
    );
    assert_eq!(db.temp().live_files().unwrap(), 0, "leaked partition files");
}

// ----------------------------------------------------------------------
// KILL mid-spill releases files, pins, and budget
// ----------------------------------------------------------------------

#[test]
fn kill_mid_spill_join_releases_files_pins_and_budget() {
    let db = Database::in_memory();
    db.catalog().register_table_fn(Arc::new(Numbers));
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, grp INT, v INT)")
        .unwrap();
    let rows: Vec<Row> = (0..12_000i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 10), Value::Int(i)]))
        .collect();
    db.insert_rows("t", &rows).unwrap();
    let pins_before = db.pool().pinned_frames();

    // The endless TVF estimates cheaper than `t`, so it becomes the
    // build side: the kill lands while the join is actively
    // partitioning it to disk under the tiny budget.
    let victim = db.create_session();
    victim.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();
    let victim_sid = victim.id() as i64;
    let runner = std::thread::spawn(move || {
        let start = Instant::now();
        let err = victim
            .query_sql("SELECT COUNT(*) FROM t a JOIN NUMBERS(1000000000) n ON (a.id = n.n)")
            .unwrap_err();
        (err, start.elapsed())
    });

    let killer = db.create_session();
    let statement_id = loop {
        let r = killer
            .query_sql("SELECT statement_id, session_id FROM DM_EXEC_REQUESTS()")
            .unwrap();
        let found = r
            .rows
            .iter()
            .find_map(|row| (row[1] == Value::Int(victim_sid)).then(|| row[0].as_int().unwrap()));
        match found {
            Some(id) => break id,
            None => std::thread::sleep(Duration::from_millis(5)),
        }
    };
    // Let the build phase get properly underway (spilling) first.
    std::thread::sleep(Duration::from_millis(100));
    killer.execute_sql(&format!("KILL {statement_id}")).unwrap();

    let (err, elapsed) = runner.join().unwrap();
    assert!(matches!(err, DbError::Cancelled(_)), "{err}");
    assert!(elapsed < Duration::from_secs(10), "kill took {elapsed:?}");
    assert_eq!(db.pool().pinned_frames(), pins_before, "leaked buffer pins");
    assert_eq!(db.temp().live_files().unwrap(), 0, "leaked partition files");
    assert_eq!(db.statements().running_count(), 0, "statement still live");

    // The database keeps serving joins afterwards.
    let r = db
        .query_sql("SELECT COUNT(*) FROM t a JOIN t b ON (a.id = b.id)")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(12_000));
}

// ----------------------------------------------------------------------
// Seeded spill-write faults: typed errors, never wrong results
// ----------------------------------------------------------------------

fn fault_seed() -> u64 {
    std::env::var("SEQDB_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

#[test]
fn spill_write_faults_fail_typed_and_never_corrupt_results() {
    let seed = fault_seed();
    let db = join_db(2000, 500, 1000, 500);
    // Ground truth from the resident path, before any faults are armed.
    let expect = key_rows(&db.query_sql(Q).unwrap());

    // Force hash so the faults land on join partition files (auto would
    // route this small spilling case to sort+merge instead).
    db.execute_sql("SET JOIN_STRATEGY = 1").unwrap();
    db.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();
    for period in [3u64, 7, 23, 101] {
        // The seed shifts the fault schedule so each CI leg explores a
        // different alignment of injected failures and partition I/O.
        let every = period + seed % period;
        db.temp().set_fault_clock(Some(FaultClock::new(FaultPlan {
            io_error_every: Some(every),
            ..FaultPlan::none()
        })));
        match db.query_sql(Q) {
            Ok(r) => assert_eq!(key_rows(&r), expect, "faulted join returned wrong rows"),
            Err(DbError::Io(msg)) => assert!(msg.contains("injected"), "{msg}"),
            Err(other) => panic!("expected injected Io error, got {other:?}"),
        }
        assert_eq!(
            db.temp().live_files().unwrap(),
            0,
            "leaked files after faulted join (every {every} ops)"
        );
    }
    db.temp().set_fault_clock(None);

    // With the clock disarmed the same spilled join succeeds exactly.
    assert_eq!(key_rows(&db.query_sql(Q).unwrap()), expect);
    assert_eq!(db.temp().live_files().unwrap(), 0);
}

// ----------------------------------------------------------------------
// Property: hash join ≡ merge join on random inputs (dup + NULL keys)
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]
    #[test]
    fn random_joins_agree_with_merge_under_any_budget(
        left in proptest::collection::vec((0i64..16, -1000i64..1000), 0..150),
        right in proptest::collection::vec((0i64..16, -1000i64..1000), 0..150),
        budget_kb in 2i64..8,
        dop in 1usize..5,
    ) {
        let db = Database::in_memory();
        db.execute_sql("CREATE TABLE big (k INT, pay INT)").unwrap();
        db.execute_sql("CREATE TABLE small (k INT, pay INT)").unwrap();
        // Key 0 maps to NULL: NULL never joins, on either side.
        let to_row = |(k, p): &(i64, i64)| {
            let key = if *k == 0 { Value::Null } else { Value::Int(*k) };
            Row::new(vec![key, Value::Int(*p)])
        };
        db.insert_rows("big", &left.iter().map(to_row).collect::<Vec<_>>()).unwrap();
        db.insert_rows("small", &right.iter().map(to_row).collect::<Vec<_>>()).unwrap();

        db.execute_sql("SET JOIN_STRATEGY = 2").unwrap();
        let expect = key_rows(&db.query_sql(Q).unwrap());

        // Force hash with a budget small enough to spill most cases,
        // and drop the parallel threshold so the partition phase also
        // exercises the chosen DOP.
        let mut cfg = db.config();
        cfg.join_strategy = seqdb::engine::JoinStrategy::Hash;
        cfg.query_mem_limit_kb = Some(budget_kb as u64);
        cfg.parallel_threshold = 0;
        cfg.max_dop = dop;
        db.set_config(cfg);
        match db.query_sql(Q) {
            Ok(r) => prop_assert_eq!(key_rows(&r), expect),
            // One key's duplicates can exceed the entire budget; the
            // join must then fail typed, never silently drop rows.
            Err(DbError::ResourceExhausted(_)) => {}
            Err(other) => prop_assert!(false, "unexpected error {:?}", other),
        }
        prop_assert_eq!(db.temp().live_files().unwrap(), 0, "leaked partition files");
    }
}

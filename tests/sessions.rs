//! End-to-end tests for the session layer: concurrent governed sessions
//! spilling within their budgets, admission control bounding how much
//! governed work runs at once, cross-session `KILL`, and the isolation
//! of session-scoped `SET` options.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use seqdb::engine::{Database, ExecContext, TableFunction, TvfCursor};
use seqdb::sql::{DatabaseSqlExt, SessionSqlExt};
use seqdb::types::{Column, DataType, DbError, Result, Row, Schema, Value};

/// `NUMBERS(n)` emits 0..n — with a huge `n`, an effectively endless
/// stream for the cross-session KILL test.
struct Numbers;

struct NumbersCursor {
    next: i64,
    limit: i64,
}

impl TvfCursor for NumbersCursor {
    fn move_next(&mut self) -> Result<bool> {
        self.next += 1;
        Ok(self.next <= self.limit)
    }
    fn fill_row(&mut self) -> Result<Row> {
        Ok(Row::new(vec![Value::Int(self.next - 1)]))
    }
}

impl TableFunction for Numbers {
    fn name(&self) -> &str {
        "NUMBERS"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![Column::new("n", DataType::Int)]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        Ok(Box::new(NumbersCursor {
            next: 0,
            limit: args[0].as_int()?,
        }))
    }
}

/// 12k rows with distinct ids: over the parallel threshold, and 12k
/// groups is far more than a tight budget can hold resident.
fn setup_db() -> Arc<Database> {
    let db = Database::in_memory();
    db.catalog().register_table_fn(Arc::new(Numbers));
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, grp INT, v INT)")
        .unwrap();
    let rows: Vec<Row> = (0..12_000i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 10), Value::Int(i)]))
        .collect();
    db.insert_rows("t", &rows).unwrap();
    db
}

// ----------------------------------------------------------------------
// Concurrent governed sessions: spill, don't die; queue, don't overload
// ----------------------------------------------------------------------

#[test]
fn concurrent_sessions_spill_within_budget_and_admission_bounds_excess() {
    let db = setup_db();
    // Global pool fits exactly three 64 KiB statements.
    db.set_admission_pool_kb(Some(192));
    db.set_admission_wait_ms(150);
    db.temp().reset_counters();

    // Three sessions run the same memory-hungry parallel aggregate at
    // once. Each budget is far below what 12k groups need resident, so
    // every worker must degrade to spilling — and still produce exact
    // results, with zero ResourceExhausted.
    let barrier = Arc::new(Barrier::new(3));
    let mut handles = Vec::new();
    for _ in 0..3 {
        let session = db.create_session();
        session
            .execute_sql("SET QUERY_MEMORY_LIMIT_KB = 64")
            .unwrap();
        session.execute_sql("SET MAX_DOP = 4").unwrap();
        let barrier = barrier.clone();
        handles.push(std::thread::spawn(move || {
            barrier.wait();
            session.query_sql("SELECT id, COUNT(*), SUM(v) FROM t GROUP BY id")
        }));
    }
    for h in handles {
        let r = h
            .join()
            .unwrap()
            .expect("governed session must spill, not fail");
        assert_eq!(r.rows.len(), 12_000, "every group exactly once");
        assert!(
            r.rows.iter().all(|row| row[1] == Value::Int(1)),
            "each id appears once"
        );
    }
    assert!(db.temp().spill_count() > 0, "the workers must have spilled");
    assert_eq!(db.temp().live_files().unwrap(), 0, "no temp files leaked");
    assert_eq!(db.admission().reserved(), 0, "pool fully released");

    // Now saturate the pool with three admitted (still-running)
    // statements; a fourth governed session must queue at the gate and
    // fail typed within the bounded wait — not run and oversubscribe.
    let holders: Vec<_> = (0..3)
        .map(|_| {
            let s = db.create_session();
            s.set_query_memory_limit_kb(Some(64));
            s
        })
        .collect();
    let guards: Vec<_> = holders
        .iter()
        .map(|s| s.begin_statement("SELECT id FROM t").unwrap())
        .collect();
    assert_eq!(db.admission().reserved(), 192 * 1024);

    let extra = db.create_session();
    extra.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 64").unwrap();
    let start = Instant::now();
    let err = extra
        .query_sql("SELECT id, COUNT(*) FROM t GROUP BY id")
        .unwrap_err();
    assert!(matches!(err, DbError::AdmissionTimeout(_)), "{err}");
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "admission wait must be bounded, took {:?}",
        start.elapsed()
    );

    // Capacity freed: the same query on the same session now runs.
    drop(guards);
    assert_eq!(db.admission().reserved(), 0);
    let r = extra
        .query_sql("SELECT id, COUNT(*) FROM t GROUP BY id")
        .unwrap();
    assert_eq!(r.rows.len(), 12_000);
}

// ----------------------------------------------------------------------
// Cross-session KILL of an in-flight spilling statement
// ----------------------------------------------------------------------

#[test]
fn kill_from_another_session_stops_a_spilling_query_without_leaks() {
    let db = setup_db();
    db.set_admission_pool_kb(Some(64));
    let pins_before = db.pool().pinned_frames();

    // The victim runs an effectively endless aggregation (12k outer rows
    // x 1e9 inner rows) under a tiny budget, so the kill lands while
    // spill files are live on disk and admission bytes are reserved.
    let victim = db.create_session();
    victim.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();
    let victim_sid = victim.id() as i64;
    let runner = std::thread::spawn(move || {
        let start = Instant::now();
        let err = victim
            .query_sql("SELECT n, COUNT(*) FROM t CROSS APPLY NUMBERS(1000000000) GROUP BY n")
            .unwrap_err();
        (err, start.elapsed())
    });

    // The killer session finds the victim through the DMV — the same
    // `sys.dm_exec_requests` → `KILL` loop a DBA would run.
    let killer = db.create_session();
    let statement_id = loop {
        let r = killer
            .query_sql("SELECT statement_id, session_id FROM DM_EXEC_REQUESTS()")
            .unwrap();
        let found = r
            .rows
            .iter()
            .find_map(|row| (row[1] == Value::Int(victim_sid)).then(|| row[0].as_int().unwrap()));
        match found {
            Some(id) => break id,
            None => std::thread::sleep(Duration::from_millis(5)),
        }
    };
    // Let the victim get properly underway (spilling) before the kill.
    std::thread::sleep(Duration::from_millis(100));
    killer.execute_sql(&format!("KILL {statement_id}")).unwrap();

    let (err, elapsed) = runner.join().unwrap();
    assert!(matches!(err, DbError::Cancelled(_)), "{err}");
    assert!(elapsed < Duration::from_secs(10), "kill took {elapsed:?}");
    assert_eq!(db.pool().pinned_frames(), pins_before, "leaked buffer pins");
    assert_eq!(db.temp().live_files().unwrap(), 0, "leaked spill files");
    assert_eq!(db.admission().reserved(), 0, "leaked admission bytes");
    assert_eq!(
        db.statements().running_count(),
        0,
        "statement still registered"
    );
    // Every governor charge was released before the statement vanished.
    assert!(
        db.statements().snapshot().is_empty(),
        "no statements should survive the kill"
    );

    // Killing the finished statement now misses, typed.
    let err = killer
        .execute_sql(&format!("KILL {statement_id}"))
        .unwrap_err();
    assert!(
        matches!(err, DbError::NoSuchStatement(id) if id == statement_id),
        "{err}"
    );

    // The database keeps serving both sessions' successors.
    let r = killer.query_sql("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(12_000));
}

// ----------------------------------------------------------------------
// SET isolation across concurrently open sessions
// ----------------------------------------------------------------------

#[test]
fn set_in_one_session_leaves_concurrent_sessions_untouched() {
    let db = setup_db();
    let a = db.create_session();
    let b = db.create_session();

    // `a` tightens its own knobs while `b` is open.
    a.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();
    a.execute_sql("SET MAX_DOP = 1").unwrap();
    a.execute_sql("SET QUERY_TIMEOUT_MS = 60000").unwrap();

    assert_eq!(a.effective_config().query_mem_limit_kb, Some(8));
    assert_eq!(a.effective_config().max_dop, 1);
    assert_eq!(a.effective_config().query_timeout_ms, Some(60_000));
    // `b` still sees the server defaults...
    assert_eq!(
        b.effective_config().query_mem_limit_kb,
        db.config().query_mem_limit_kb
    );
    assert_eq!(b.effective_config().max_dop, db.config().max_dop);
    // ...and the server defaults themselves are untouched.
    assert_eq!(db.config().query_mem_limit_kb, None);
    assert_eq!(db.config().query_timeout_ms, None);

    // Behavioural proof, not just config introspection: the same query
    // spills in `a` (8 KiB budget) and not in `b` (unlimited).
    db.temp().reset_counters();
    let rb = b
        .query_sql("SELECT id, COUNT(*) FROM t GROUP BY id")
        .unwrap();
    assert_eq!(rb.rows.len(), 12_000);
    assert_eq!(
        db.temp().spill_count(),
        0,
        "unlimited session must not spill"
    );
    let ra = a
        .query_sql("SELECT id, COUNT(*) FROM t GROUP BY id")
        .unwrap();
    assert_eq!(ra.rows.len(), 12_000);
    assert!(db.temp().spill_count() > 0, "governed session must spill");

    // `SET ... = 0` turns a session override into an explicit "off",
    // still without touching the neighbour.
    a.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 0").unwrap();
    assert_eq!(a.effective_config().query_mem_limit_kb, None);
    assert_eq!(
        b.effective_config().query_mem_limit_kb,
        db.config().query_mem_limit_kb
    );
}

//! Cross-crate integration: both of the paper's scenarios end to end
//! through the public `seqdb` facade.

use seqdb::core::dataset::{DgeDataset, ResequencingDataset, Scale};
use seqdb::core::{queries, workflow};
use seqdb::engine::Database;
use seqdb::sql::DatabaseSqlExt;
use seqdb::types::Value;

fn tmp(name: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("seqdb-it-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&d);
    d
}

fn small_scale() -> Scale {
    Scale {
        genome_bp: 60_000,
        n_chromosomes: 3,
        n_reads: 2_500,
        seed: 1234,
    }
}

#[test]
fn dge_scenario_end_to_end() {
    let dir = tmp("dge");
    let ds = DgeDataset::generate(&dir, &small_scale()).unwrap();
    let db = Database::in_memory();
    workflow::load_dge_designs(&db, &ds).unwrap();

    // Query 1 matches the dataset ground truth exactly.
    let q1 = queries::run_query1(&db, workflow::NORM).unwrap();
    queries::check_query1_against(&q1, &ds.unique_tags).unwrap();

    // Query 2 reproduces the dataset's gene expression result.
    let n = queries::run_query2(&db, workflow::NORM).unwrap();
    assert_eq!(n, ds.gene_expression.len() as u64);
    let top = db
        .query_sql(
            "SELECT x_g_id, total_frequency, tag_count
             FROM GeneExpression ORDER BY total_frequency DESC, x_g_id",
        )
        .unwrap();
    let expect = &ds.gene_expression[0];
    assert_eq!(top.rows[0][0], Value::Int(expect.0 as i64));
    assert_eq!(top.rows[0][1], Value::Int(expect.1 as i64));
    assert_eq!(top.rows[0][2], Value::Int(expect.2 as i64));

    // The storage report covers every design for every artifact.
    let report = workflow::dge_storage_report(&db, &ds).unwrap();
    for artifact in [
        "short reads",
        "unique tags",
        "alignments",
        "gene expression",
    ] {
        for design in workflow::DESIGNS {
            // The bit-packed design only applies to sequence payloads.
            if design == "norm+bitpack" && artifact != "short reads" {
                continue;
            }
            assert!(
                report.get(artifact, design).is_some(),
                "{artifact}/{design} missing"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn resequencing_scenario_end_to_end() {
    let dir = tmp("reseq");
    let ds = ResequencingDataset::generate(&dir, &small_scale()).unwrap();
    let db = Database::in_memory();
    workflow::load_reseq_designs(&db, &ds).unwrap();

    // Merge join counts every alignment exactly once.
    let n = queries::run_merge_join(&db, workflow::NORM).unwrap();
    assert_eq!(n, ds.alignments.len() as i64);

    // All three consensus plans agree.
    let (consensus, spill) = workflow::run_consensus_both_ways(&db).unwrap();
    assert!(!consensus.is_empty());
    // The sort-based pivot wrote a pivoted intermediate through tempdb
    // with the default (large) budget it may fit in memory; assert only
    // that accounting is consistent (non-negative is implicit in u64).
    let _ = spill;

    // The hybrid FileStream path sees the same read count as the
    // relational import.
    let r = db
        .query_sql("SELECT COUNT(*) FROM ListShortReads(855, 1, 'FastQ')")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(ds.reads.len() as i64));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn consensus_spills_under_tight_memory_grant() {
    let dir = tmp("spill");
    let ds = ResequencingDataset::generate(
        &dir,
        &Scale {
            genome_bp: 30_000,
            n_chromosomes: 2,
            n_reads: 3_000,
            seed: 8,
        },
    )
    .unwrap();
    let db = Database::in_memory();
    workflow::load_reseq_designs(&db, &ds).unwrap();
    let mut cfg = db.config();
    cfg.sort_budget = 256 * 1024; // force the external sort to spill
    db.set_config(cfg);
    db.temp().reset_counters();
    let sorted = queries::run_query3_pivot_sorted(&db, workflow::NORM).unwrap();
    assert!(!sorted.is_empty());
    assert!(
        db.temp().bytes_written() > 1_000_000,
        "pivoted intermediate should spill: {} bytes",
        db.temp().bytes_written()
    );
    let sliding = queries::run_query3_sliding(&db, workflow::NORM).unwrap();
    assert_eq!(sorted, sliding);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn parallel_and_serial_query1_agree() {
    let dir = tmp("dop");
    let ds = DgeDataset::generate(&dir, &small_scale()).unwrap();
    let db = Database::in_memory();
    workflow::load_dge_designs(&db, &ds).unwrap();

    db.set_max_dop(1);
    let serial = queries::run_query1(&db, workflow::NORM).unwrap();
    db.set_max_dop(4);
    let parallel = queries::run_query1(&db, workflow::NORM).unwrap();
    // Same histogram; tag order may differ within equal frequencies.
    assert_eq!(serial.rows.len(), parallel.rows.len());
    let hist = |r: &seqdb::engine::QueryResult| {
        let mut v: Vec<i64> = r.rows.iter().map(|x| x[1].as_int().unwrap()).collect();
        v.sort();
        v
    };
    assert_eq!(hist(&serial), hist(&parallel));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn disk_backed_database_survives_reopen_of_filestream() {
    // FileStream blobs and the data file live under one directory; a
    // fresh Database over the same dir can still stream the blob.
    let dir = tmp("disk");
    let fastq = dir.join("lane.fastq");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(&fastq, b"@r1\nACGT\n+\nIIII\n@r2\nGGGG\n+\nIIII\n").unwrap();

    let dbdir = dir.join("db");
    let guid;
    {
        let db = Database::open(&dbdir).unwrap();
        guid = db.filestream().insert_from_file(&fastq).unwrap();
        db.checkpoint().unwrap();
    }
    {
        let db = Database::open(&dbdir).unwrap();
        let mut r = db.filestream().open_reader(guid, true).unwrap();
        let data = r.read_all().unwrap();
        assert!(data.starts_with(b"@r1"));
        assert_eq!(db.filestream().len(guid).unwrap(), 32);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

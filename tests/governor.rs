//! End-to-end tests for the per-query resource governor: UDX panic
//! isolation, memory budgets with spill degradation, timeouts, and
//! cancellation cleanliness (no leaked buffer pins or temp files).

use std::sync::Arc;
use std::time::{Duration, Instant};

use seqdb::engine::{
    AggState, Aggregate, Database, ExecContext, ScalarUdf, TableFunction, TvfCursor,
};
use seqdb::sql::DatabaseSqlExt;
use seqdb::types::{Column, DataType, DbError, Result, Row, Schema, Value};

// ----------------------------------------------------------------------
// Test UDX: a panicking scalar, an endless-ish TVF, and a summing UDA
// ----------------------------------------------------------------------

/// Scalar UDF that panics when its argument is 13.
struct Boom;

impl ScalarUdf for Boom {
    fn name(&self) -> &str {
        "BOOM"
    }
    fn invoke(&self, args: &[Value]) -> Result<Value> {
        let v = args[0].as_int()?;
        if v == 13 {
            panic!("boom on unlucky {v}");
        }
        Ok(Value::Int(v * 2))
    }
}

/// `NUMBERS(n)` emits 0..n — with a huge `n`, an effectively endless
/// stream for timeout/cancellation tests.
struct Numbers;

struct NumbersCursor {
    next: i64,
    limit: i64,
}

impl TvfCursor for NumbersCursor {
    fn move_next(&mut self) -> Result<bool> {
        self.next += 1;
        Ok(self.next <= self.limit)
    }
    fn fill_row(&mut self) -> Result<Row> {
        Ok(Row::new(vec![Value::Int(self.next - 1)]))
    }
}

impl TableFunction for Numbers {
    fn name(&self) -> &str {
        "NUMBERS"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![Column::new("n", DataType::Int)]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        Ok(Box::new(NumbersCursor {
            next: 0,
            limit: args[0].as_int()?,
        }))
    }
}

/// A user-defined summing aggregate (so the cancellation test exercises
/// the UDA path, not just built-ins).
struct AccAgg;

struct AccState {
    total: i64,
}

impl Aggregate for AccAgg {
    fn name(&self) -> &str {
        "ACC"
    }
    fn create(&self) -> Box<dyn AggState> {
        Box::new(AccState { total: 0 })
    }
}

impl AggState for AccState {
    fn update(&mut self, args: &[Value]) -> Result<()> {
        self.total += args[0].as_int()?;
        Ok(())
    }
    fn merge(&mut self, other: Box<dyn AggState>) -> Result<()> {
        let other = other
            .into_any()
            .downcast::<AccState>()
            .map_err(|_| DbError::Execution("ACC merge type mismatch".into()))?;
        self.total += other.total;
        Ok(())
    }
    fn finish(&mut self) -> Result<Value> {
        Ok(Value::Int(self.total))
    }
    fn into_any(self: Box<Self>) -> Box<dyn std::any::Any> {
        self
    }
}

fn setup_db() -> Arc<Database> {
    let db = Database::in_memory();
    db.catalog().register_scalar(Arc::new(Boom));
    db.catalog().register_table_fn(Arc::new(Numbers));
    db.catalog().register_aggregate(Arc::new(AccAgg));
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, grp INT, v INT)")
        .unwrap();
    for i in 0..3000i64 {
        db.insert_rows(
            "t",
            &[Row::new(vec![
                Value::Int(i),
                Value::Int(i % 10),
                Value::Int(i),
            ])],
        )
        .unwrap();
    }
    db
}

// ----------------------------------------------------------------------
// (a) UDX panic isolation
// ----------------------------------------------------------------------

#[test]
fn panicking_udf_fails_its_query_and_the_database_survives() {
    let db = setup_db();
    let err = db.query_sql("SELECT BOOM(id) FROM t").unwrap_err();
    match &err {
        DbError::UdxPanic { name, payload } => {
            assert_eq!(name, "BOOM");
            assert!(payload.contains("unlucky 13"), "payload: {payload}");
        }
        other => panic!("expected UdxPanic, got {other:?}"),
    }
    // The very next query on the same Database succeeds.
    let r = db.query_sql("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3000));
    // And rows that never hit the panic still evaluate through BOOM.
    let r = db
        .query_sql("SELECT BOOM(id) FROM t WHERE id = 21")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(42));
}

// ----------------------------------------------------------------------
// (b) Memory budgets: spill degradation and typed exhaustion
// ----------------------------------------------------------------------

#[test]
fn memory_limited_group_by_degrades_to_spill_with_exact_results() {
    let db = setup_db();
    db.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();
    db.temp().reset_counters();
    // 3000 distinct groups cannot fit an 8 KiB budget.
    let r = db
        .query_sql("SELECT id, COUNT(*) FROM t GROUP BY id")
        .unwrap();
    assert_eq!(r.rows.len(), 3000, "every group exactly once");
    assert!(
        db.temp().spill_count() > 0,
        "the aggregate must have spilled"
    );
    assert!(
        r.rows.iter().all(|row| row[1] == Value::Int(1)),
        "each id appears once"
    );
    // Budget fully released after the query.
    assert_eq!(db.temp().live_files().unwrap(), 0, "no temp files leaked");

    // SET ... = 0 switches the limit back off.
    db.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 0").unwrap();
    db.temp().reset_counters();
    db.query_sql("SELECT id, COUNT(*) FROM t GROUP BY id")
        .unwrap();
    assert_eq!(db.temp().spill_count(), 0, "unlimited budget never spills");
}

#[test]
fn memory_limited_sort_degrades_to_spill_with_exact_results() {
    let db = setup_db();
    db.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();
    db.temp().reset_counters();
    let r = db.query_sql("SELECT id FROM t ORDER BY v").unwrap();
    assert_eq!(r.rows.len(), 3000);
    assert!(
        r.rows.windows(2).all(|w| {
            let (a, b) = (&w[0][0], &w[1][0]);
            a.as_int().unwrap() <= b.as_int().unwrap()
        }),
        "order preserved despite spilling"
    );
    assert!(db.temp().spill_count() > 0, "the sort must have spilled");
    assert_eq!(db.temp().live_files().unwrap(), 0, "no temp files leaked");
}

#[test]
fn memory_limited_hash_join_spills_and_completes() {
    let db = setup_db();
    // Non-indexed equi-join plans as a hash join. Since the hybrid Grace
    // rework the build side partitions to tempspace when the budget runs
    // out, so a tiny limit no longer fails the query — it completes with
    // the exact result and cleans up its partition files.
    db.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 4").unwrap();
    let r = db
        .query_sql("SELECT COUNT(*) FROM t a JOIN t b ON (a.id = b.id)")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3000));
    assert_eq!(db.temp().live_files().unwrap(), 0, "no leaked temp files");
    // The same query with no limit takes the purely resident path.
    db.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 0").unwrap();
    let r = db
        .query_sql("SELECT COUNT(*) FROM t a JOIN t b ON (a.id = b.id)")
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3000));
}

// ----------------------------------------------------------------------
// (c) Timeouts: bounded return, no leaks
// ----------------------------------------------------------------------

#[test]
fn timed_out_query_returns_promptly_and_leaks_nothing() {
    let db = setup_db();
    let pins_before = db.pool().pinned_frames();
    db.execute_sql("SET QUERY_TIMEOUT_MS = 100").unwrap();
    // Without the deadline this CROSS APPLY would emit three billion rows.
    let start = Instant::now();
    let err = db
        .query_sql("SELECT ACC(n) FROM t CROSS APPLY NUMBERS(1000000)")
        .unwrap_err();
    let elapsed = start.elapsed();
    assert!(matches!(err, DbError::Timeout(_)), "{err}");
    assert!(
        elapsed < Duration::from_millis(1000),
        "timed-out query took {elapsed:?}, deadline was 100ms"
    );
    assert_eq!(db.pool().pinned_frames(), pins_before, "no leaked pins");
    assert_eq!(db.temp().live_files().unwrap(), 0, "no leaked temp files");
    // An expired governor affects only its own query.
    db.execute_sql("SET QUERY_TIMEOUT_MS = 0").unwrap();
    let r = db.query_sql("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3000));
}

// ----------------------------------------------------------------------
// Cancellation mid-stream: pins and spill files all released
// ----------------------------------------------------------------------

#[test]
fn cancelled_cross_apply_uda_query_releases_pins_and_temp_files() {
    let db = setup_db();
    // A tiny budget forces the aggregate to spill *while* the query runs,
    // so cancellation catches it with live spill files on disk.
    db.set_query_memory_limit_kb(Some(8));
    let pins_before = db.pool().pinned_frames();
    let temps_before = db.temp().live_files().unwrap();

    // Effectively endless: ~3000 outer rows x 1e9 inner rows, grouped per
    // distinct n so the spill partitions keep growing.
    let plan = seqdb::sql::binder::plan_query(
        &db,
        "SELECT n, ACC(n) FROM t CROSS APPLY NUMBERS(1000000000) GROUP BY n",
    )
    .unwrap();
    let ctx = db.exec_context();
    let gov = ctx.gov.clone();

    let canceller = std::thread::spawn(move || {
        // Let the query get properly underway before pulling the plug.
        std::thread::sleep(Duration::from_millis(50));
        gov.cancel();
    });
    let start = Instant::now();
    let err = plan.run(&ctx).unwrap_err();
    let elapsed = start.elapsed();
    canceller.join().unwrap();

    assert!(matches!(err, DbError::Cancelled(_)), "{err}");
    assert!(
        elapsed < Duration::from_secs(10),
        "cancellation took {elapsed:?}"
    );
    assert_eq!(
        db.pool().pinned_frames(),
        pins_before,
        "aborted query left buffer pins behind"
    );
    assert_eq!(
        db.temp().live_files().unwrap(),
        temps_before,
        "aborted query leaked spill files"
    );
    assert_eq!(ctx.gov.mem_used(), 0, "aborted query leaked budget bytes");

    // The database keeps serving queries afterwards.
    let r = db.query_sql("SELECT COUNT(*) FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(3000));
}

//! End-to-end tests for the integrity scrubber: seeded bit rot planted
//! at rest under live wire-server traffic, `CHECK DATABASE REPAIR`
//! repairing what has a committed image and quarantining the rest,
//! typed `Quarantined` errors over the wire, disk-full degradation in
//! the spill path, and the startup orphan sweep.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use seqdb::engine::Database;
use seqdb::server::{Client, Server, ServerConfig};
use seqdb::sql::DatabaseSqlExt;
use seqdb::storage::{rot_file, storage_counters, FaultClock, FaultPlan, PAGE_SIZE};
use seqdb::types::{DbError, Row, Value};

/// The CI fault seed, so the `scrub-robustness` matrix plants rot at
/// different byte positions per job.
fn fault_seed() -> u64 {
    std::env::var("SEQDB_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("seqdb-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn count_status(report: &seqdb::engine::QueryResult, status: &str) -> usize {
    report
        .rows
        .iter()
        .filter(|r| r[2].as_text().map(|s| s == status).unwrap_or(false))
        .count()
}

// ----------------------------------------------------------------------
// The acceptance scenario: bit rot on >= 3 pages and a blob, repaired /
// quarantined by CHECK DATABASE REPAIR while live traffic keeps running.
// ----------------------------------------------------------------------

#[test]
fn check_repair_heals_rot_under_live_traffic() {
    let seed = fault_seed();
    let dir = fresh_dir("scrub-e2e");
    let db = Database::open(&dir).unwrap();

    // Three tables: `repairable` keeps committed images cached, `doomed`
    // loses every copy of its pages, `healthy` carries the live traffic.
    db.execute_sql("CREATE TABLE repairable (id INT, seq VARCHAR(32))")
        .unwrap();
    db.execute_sql("CREATE TABLE doomed (id INT, seq VARCHAR(32))")
        .unwrap();
    db.execute_sql("CREATE TABLE healthy (id INT, v INT)")
        .unwrap();
    let wide: Vec<Row> = (0..2000i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::text(format!("ACGTACGT-{i:06}"))]))
        .collect();
    db.insert_rows("repairable", &wide).unwrap();
    let narrow: Vec<Row> = (0..500i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::text(format!("TTAA-{i:04}"))]))
        .collect();
    db.insert_rows("doomed", &narrow).unwrap();
    let plain: Vec<Row> = (0..500i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int(i * 3)]))
        .collect();
    db.insert_rows("healthy", &plain).unwrap();
    let blob = b"GATTACA".repeat(1024);
    let guid = db.filestream().insert(&blob).unwrap();
    let blob_path = db.filestream().path_name(guid).unwrap();

    // Everything durable, then drop the cache so `doomed` has no
    // committed image anywhere (checkpoint also truncated the WAL).
    db.checkpoint().unwrap();
    db.pool().clear_cache().unwrap();

    let data_file = dir.join("seqdb.data");
    let doomed_pages = db.catalog().table("doomed").unwrap().heap.pages_snapshot();
    rot_file(
        &data_file,
        seed,
        doomed_pages[0] * PAGE_SIZE as u64,
        PAGE_SIZE as u64,
    )
    .unwrap();

    // Re-warm `repairable` so its clean frames are cached, then rot
    // three of its pages at rest: the media decayed under a live cache.
    let r = db.query_sql("SELECT COUNT(*) FROM repairable").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2000));
    let repairable_pages = db
        .catalog()
        .table("repairable")
        .unwrap()
        .heap
        .pages_snapshot();
    assert!(repairable_pages.len() >= 3, "need >= 3 pages to rot");
    for (i, page) in repairable_pages.iter().take(3).enumerate() {
        rot_file(
            &data_file,
            seed.wrapping_add(i as u64),
            page * PAGE_SIZE as u64,
            PAGE_SIZE as u64,
        )
        .unwrap();
    }
    rot_file(&blob_path, seed, 0, blob.len() as u64).unwrap();

    // Live traffic on the unaffected table for the whole repair window.
    let server = Server::start(
        db.clone(),
        "127.0.0.1:0",
        ServerConfig {
            poll_interval: Duration::from_millis(10),
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let stop = Arc::new(AtomicBool::new(false));
    let errors = Arc::new(AtomicU64::new(0));
    let queries = Arc::new(AtomicU64::new(0));
    let traffic = {
        let (stop, errors, queries) = (stop.clone(), errors.clone(), queries.clone());
        let addr = server.addr();
        std::thread::spawn(move || {
            let mut c = Client::connect(addr).unwrap();
            while !stop.load(Ordering::Relaxed) {
                match c.query("SELECT COUNT(*), SUM(v) FROM healthy") {
                    Ok(r) => {
                        assert_eq!(r.rows[0][0], Value::Int(500));
                        queries.fetch_add(1, Ordering::Relaxed);
                    }
                    Err(_) => {
                        errors.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        })
    };

    // The repair itself runs over the wire, like an operator would.
    let mut admin = Client::connect(server.addr()).unwrap();
    let report = admin.query("CHECK DATABASE REPAIR").unwrap();
    assert_eq!(count_status(&report, "repaired"), 3, "{report:?}");
    assert_eq!(count_status(&report, "quarantined"), 2, "{report:?}");

    // Repaired pages serve every row again; quarantined objects fail
    // typed; unaffected statements never noticed.
    let r = admin.query("SELECT COUNT(*) FROM repairable").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2000));
    let err = admin.query("SELECT COUNT(*) FROM doomed").unwrap_err();
    assert!(
        matches!(&err, DbError::Quarantined { object, .. } if object == "doomed"),
        "{err:?}"
    );
    let err = db.filestream().len(guid).unwrap_err();
    assert!(matches!(err, DbError::Quarantined { .. }), "{err:?}");

    // The DMV shows the summary row plus one row per quarantined object.
    let dmv = admin
        .query("SELECT state, object FROM DM_DB_SCRUB_STATUS()")
        .unwrap();
    let objects: Vec<String> = dmv
        .rows
        .iter()
        .filter(|r| r[0].as_text().unwrap() == "quarantined")
        .map(|r| r[1].as_text().unwrap().to_string())
        .collect();
    assert!(objects.contains(&"doomed".to_string()), "{objects:?}");
    assert!(
        objects.iter().any(|o| o.starts_with("filestream:")),
        "{objects:?}"
    );

    stop.store(true, Ordering::Relaxed);
    traffic.join().unwrap();
    assert_eq!(errors.load(Ordering::Relaxed), 0, "healthy traffic failed");
    assert!(queries.load(Ordering::Relaxed) > 0, "traffic never ran");
    server.drain().unwrap();

    // A second repair pass finds nothing new to fix and keeps the fence.
    let report = db.check_database(true).unwrap().into_result();
    assert_eq!(count_status(&report, "repaired"), 0);
    let status = db.scrub_state().status();
    assert!(status.pages_repaired >= 3);
    assert!(status.corruptions_found >= 5);
    assert_eq!(status.quarantined.len(), 2);

    // Leak probes: nothing pinned, no temp files, no admission bytes.
    assert_eq!(db.pool().pinned_frames(), 0, "leaked page pins");
    assert_eq!(db.temp().live_files().unwrap(), 0, "leaked temp files");
    assert_eq!(db.admission().reserved(), 0, "leaked admission bytes");

    // The quarantine survives restart; repair-by-rewrite clears it.
    drop(db);
    let db = Database::open(&dir).unwrap();
    let err = db.query_sql("SELECT COUNT(*) FROM doomed").unwrap_err();
    assert!(matches!(err, DbError::Quarantined { .. }), "{err:?}");
    std::fs::remove_dir_all(&dir).ok();
}

// ----------------------------------------------------------------------
// Disk-full degradation: spills starve typed, nothing leaks, and the
// same query completes once space returns.
// ----------------------------------------------------------------------

#[test]
fn disk_full_mid_spill_fails_typed_and_leaks_nothing() {
    let db = Database::in_memory();
    db.execute_sql("CREATE TABLE big (v INT)").unwrap();
    let rows: Vec<Row> = (0..20_000i64)
        .map(|i| Row::new(vec![Value::Int((i * 7919) % 20_000)]))
        .collect();
    db.insert_rows("big", &rows).unwrap();
    db.execute_sql("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();

    // Sanity: under the tight budget the sort spills and still finishes.
    db.temp().reset_counters();
    let r = db.query_sql("SELECT v FROM big ORDER BY v").unwrap();
    assert_eq!(r.rows.len(), 20_000);
    assert!(db.temp().spill_count() > 0, "the sort must have spilled");

    // Now the device fills up mid-spill.
    db.temp().set_fault_clock(Some(FaultClock::new(FaultPlan {
        disk_full_after_ops: Some(3),
        ..FaultPlan::none()
    })));
    let err = db.query_sql("SELECT v FROM big ORDER BY v").unwrap_err();
    assert!(matches!(err, DbError::DiskFull(_)), "{err:?}");
    db.temp().set_fault_clock(None);

    // Degrade, don't die: no leaked spill files, reads still work, and
    // the very same statement succeeds once space is back.
    assert_eq!(db.temp().live_files().unwrap(), 0, "leaked spill files");
    assert_eq!(db.pool().pinned_frames(), 0, "leaked page pins");
    let r = db.query_sql("SELECT v FROM big ORDER BY v").unwrap();
    assert_eq!(r.rows.len(), 20_000);
}

// ----------------------------------------------------------------------
// Startup hygiene: orphaned temp files and half-written blobs from a
// previous life are swept when the database opens.
// ----------------------------------------------------------------------

#[test]
fn open_sweeps_orphaned_temp_and_blob_files() {
    let dir = fresh_dir("scrub-orphans");
    drop(Database::open(&dir).unwrap());

    // A crashed process left a spill file and a half-written blob.
    let stray_spill = dir.join("tempdb").join("spill-99.tmp");
    let stray_blob = dir.join("filestream").join("deadbeef00112233.tmp");
    std::fs::write(&stray_spill, b"orphaned sort run").unwrap();
    std::fs::write(&stray_blob, b"half a blob").unwrap();

    let before = storage_counters()
        .startup_orphans_removed
        .load(Ordering::Relaxed);
    let db = Database::open(&dir).unwrap();
    let after = storage_counters()
        .startup_orphans_removed
        .load(Ordering::Relaxed);
    assert!(!stray_spill.exists(), "tempdb orphan survived open");
    assert!(!stray_blob.exists(), "filestream orphan survived open");
    assert!(
        after - before >= 2,
        "sweep not counted: {before} -> {after}"
    );
    assert_eq!(db.temp().live_files().unwrap(), 0);
    std::fs::remove_dir_all(&dir).ok();
}

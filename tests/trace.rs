//! End-to-end tests for structured event tracing and the persistent
//! query store: a spilling + admission-queued + killed workload over
//! the wire, with the ring buffer and query store read back through
//! their DMVs; the JSONL trace/slow-log files; query-store survival
//! across a restart; and property tests for the latency histogram and
//! statement fingerprinting.

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use proptest::prelude::*;
use seqdb::engine::{
    fingerprint, Database, ExecContext, LatencyHistogram, TableFunction, TvfCursor,
};
use seqdb::server::{Client, Server, ServerConfig};
use seqdb::sql::DatabaseSqlExt;
use seqdb::types::{Column, DataType, Result, Row, Schema, Value};

/// The trace mask is process-global; tests that flip it serialize here
/// so a concurrent test never observes a half-configured mask.
static MASK_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("seqdb-trace-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// `NUMBERS(n)` emits 0..n — effectively endless with a huge `n`, for
/// statements that must still be running when `KILL` or drain arrives.
struct Numbers;

struct NumbersCursor {
    next: i64,
    limit: i64,
}

impl TvfCursor for NumbersCursor {
    fn move_next(&mut self) -> Result<bool> {
        self.next += 1;
        Ok(self.next <= self.limit)
    }
    fn fill_row(&mut self) -> Result<Row> {
        Ok(Row::new(vec![Value::Int(self.next - 1)]))
    }
}

impl TableFunction for Numbers {
    fn name(&self) -> &str {
        "NUMBERS"
    }
    fn schema(&self) -> Arc<Schema> {
        Arc::new(Schema::new(vec![Column::new("n", DataType::Int)]))
    }
    fn open(&self, args: &[Value], _ctx: &ExecContext) -> Result<Box<dyn TvfCursor>> {
        Ok(Box::new(NumbersCursor {
            next: 0,
            limit: args[0].as_int()?,
        }))
    }
}

/// 12k distinct ids: far more groups than a tight budget holds
/// resident, so an 8 KiB limit must spill.
fn setup_db() -> Arc<Database> {
    let db = Database::in_memory();
    db.catalog().register_table_fn(Arc::new(Numbers));
    db.execute_sql("CREATE TABLE t (id INT NOT NULL, grp INT, v INT)")
        .unwrap();
    let rows: Vec<Row> = (0..12_000i64)
        .map(|i| Row::new(vec![Value::Int(i), Value::Int(i % 10), Value::Int(i)]))
        .collect();
    db.insert_rows("t", &rows).unwrap();
    db
}

fn quick_cfg() -> ServerConfig {
    ServerConfig {
        poll_interval: Duration::from_millis(10),
        ..ServerConfig::default()
    }
}

fn start(db: &Arc<Database>, cfg: ServerConfig) -> Server {
    Server::start(db.clone(), "127.0.0.1:0", cfg).unwrap()
}

/// Fetch `(class, event, detail)` triples from the ring buffer DMV.
fn ring_events(c: &mut Client) -> Vec<(String, String, String)> {
    c.query("SELECT class, event, detail FROM DM_OS_RING_BUFFER()")
        .unwrap()
        .rows
        .iter()
        .map(|row| {
            (
                row[0].as_text().unwrap().to_string(),
                row[1].as_text().unwrap().to_string(),
                row[2].as_text().unwrap().to_string(),
            )
        })
        .collect()
}

// ----------------------------------------------------------------------
// The tentpole workload: spill + queued admission + KILL over the wire,
// read back through DM_OS_RING_BUFFER() and DM_DB_QUERY_STORE()
// ----------------------------------------------------------------------

#[test]
fn ring_buffer_and_query_store_capture_spill_admission_and_kill() {
    let _mask = MASK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let db = setup_db();
    let server = start(&db, quick_cfg());
    let addr = server.addr();
    let mut probe = Client::connect(addr).unwrap();
    probe.query("SET TRACE_EVENTS = 'ALL'").unwrap();

    // 1. A spilling aggregate that completes.
    let spill_sql = "SELECT id, COUNT(*) FROM t GROUP BY id";
    let mut worker = Client::connect(addr).unwrap();
    worker.query("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();
    let r = worker.query(spill_sql).unwrap();
    assert_eq!(r.rows.len(), 12_000);

    // 2. A statement that queues at the admission gate: an engine-side
    // holder owns the whole pool until the wire statement is waiting.
    db.set_admission_pool_kb(Some(64));
    db.set_admission_wait_ms(20_000);
    db.set_admission_queue_slots(4);
    let holder = db.create_session();
    holder.set_query_memory_limit_kb(Some(64));
    let hold = holder.begin_statement("hold the pool").unwrap();
    let queued = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        c.query("SET QUERY_MEMORY_LIMIT_KB = 64").unwrap();
        c.query("SELECT grp, COUNT(*) FROM t GROUP BY grp")
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while db.admission().queue_depth() == 0 {
        assert!(Instant::now() < deadline, "statement never queued");
        std::thread::sleep(Duration::from_millis(5));
    }
    drop(hold);
    queued.join().unwrap().expect("queued statement must run");
    db.set_admission_pool_kb(None);

    // 3. A statement killed mid-flight via KILL from the probe.
    let endless_sql = "SELECT n, COUNT(*) FROM t CROSS APPLY NUMBERS(1000000000) GROUP BY n";
    let victim = std::thread::spawn(move || {
        let mut c = Client::connect(addr).unwrap();
        c.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        c.query("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();
        c.query(endless_sql)
    });
    let deadline = Instant::now() + Duration::from_secs(30);
    let victim_stid = loop {
        assert!(Instant::now() < deadline, "victim never showed up");
        let r = probe
            .query("SELECT statement_id, sql_text FROM DM_EXEC_REQUESTS()")
            .unwrap();
        let hit = r
            .rows
            .iter()
            .find(|row| row[1].as_text().unwrap().contains("1000000000"));
        match hit {
            Some(row) => break row[0].as_int().unwrap(),
            None => std::thread::sleep(Duration::from_millis(5)),
        }
    };
    probe.query(&format!("KILL {victim_stid}")).unwrap();
    assert!(victim.join().unwrap().is_err(), "killed statement errored");

    // The store records at statement unwind; poll until the killed
    // disposition lands.
    let killed_text = fingerprint(endless_sql).1;
    let deadline = Instant::now() + Duration::from_secs(10);
    let store_rows = loop {
        assert!(Instant::now() < deadline, "killed row never reached store");
        let r = probe
            .query(
                "SELECT query_text, executions, killed, spill_files, p50_us \
                 FROM DM_DB_QUERY_STORE()",
            )
            .unwrap();
        let landed = r
            .rows
            .iter()
            .any(|row| row[0].as_text().unwrap() == killed_text && row[2].as_int().unwrap() >= 1);
        if landed {
            break r.rows;
        }
        std::thread::sleep(Duration::from_millis(10));
    };

    // Query-store aggregates: the spilling query spilled and completed.
    let spill_text = fingerprint(spill_sql).1;
    let spill_row = store_rows
        .iter()
        .find(|row| row[0].as_text().unwrap() == spill_text)
        .expect("spilling query missing from store");
    assert!(spill_row[1].as_int().unwrap() >= 1, "executions");
    assert_eq!(spill_row[2].as_int().unwrap(), 0, "not killed");
    assert!(spill_row[3].as_int().unwrap() > 0, "spill_files");
    assert!(spill_row[4].as_int().unwrap() > 0, "p50 over a real run");

    // Ring buffer: every leg of the workload left its typed events.
    let events = ring_events(&mut probe);
    let has = |class: &str, event: &str| events.iter().any(|(c, e, _)| c == class && e == event);
    assert!(has("STATEMENT", "statement_start"), "{events:?}");
    assert!(has("STATEMENT", "statement_finish"));
    assert!(has("SPILL", "spill_file"));
    assert!(has("WAIT", "wait"));
    assert!(has("ADMISSION", "admission_queued"));
    assert!(has("ADMISSION", "admission_admit"));
    assert!(has("KILL", "kill"));
    assert!(
        events.iter().any(|(c, e, d)| c == "STATEMENT"
            && e == "statement_finish"
            && d.contains("disposition=killed")),
        "killed statement must finish with the killed disposition: {events:?}"
    );
    assert!(has("CONNECTION", "connection_open"));

    probe.query("SET TRACE_EVENTS = 'OFF'").unwrap();
    server.drain().unwrap();
}

// ----------------------------------------------------------------------
// Server-side JSONL trace file and the slow-statement log
// ----------------------------------------------------------------------

#[test]
fn trace_file_and_slow_log_receive_jsonl_events() {
    let _mask = MASK_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = tmp("jsonl");
    std::fs::create_dir_all(&dir).unwrap();
    let trace_path = dir.join("trace.jsonl");
    let slow_path = dir.join("slow.jsonl");

    let db = setup_db();
    let server = start(
        &db,
        ServerConfig {
            trace_file: Some(trace_path.clone()),
            slow_log_file: Some(slow_path.clone()),
            ..quick_cfg()
        },
    );
    let mut c = Client::connect(server.addr()).unwrap();
    c.query("SET TRACE_EVENTS = 'ALL'").unwrap();
    c.query("SET SLOW_QUERY_MS = 1").unwrap();
    c.query("SET QUERY_MEMORY_LIMIT_KB = 8").unwrap();
    // A spilling aggregate over 12k groups comfortably exceeds 1 ms.
    let r = c.query("SELECT id, COUNT(*) FROM t GROUP BY id").unwrap();
    assert_eq!(r.rows.len(), 12_000);
    c.query("SET TRACE_EVENTS = 'OFF'").unwrap();
    server.drain().unwrap();

    let trace = std::fs::read_to_string(&trace_path).unwrap();
    assert!(
        trace
            .lines()
            .any(|l| l.contains("\"event\":\"statement_start\"")),
        "trace file missing statement events: {trace}"
    );
    assert!(trace
        .lines()
        .any(|l| l.contains("\"event\":\"spill_file\"")));
    // Every line is one JSON object with the fixed field set.
    for line in trace.lines() {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(
            line.contains("\"seq\":") && line.contains("\"class\":"),
            "{line}"
        );
    }
    let slow = std::fs::read_to_string(&slow_path).unwrap();
    assert!(
        slow.lines()
            .any(|l| l.contains("\"event\":\"slow_statement\"")),
        "slow log missing slow_statement: {slow}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------------------
// Restart survival: querystore.seqdb persists at CHECKPOINT, reloads
// on open, and both DMVs surface the pre-restart fingerprints
// ----------------------------------------------------------------------

#[test]
fn query_store_survives_restart_through_both_dmvs() {
    let dir = tmp("restart");
    let repeated_sql = "SELECT COUNT(*) FROM q WHERE id < 50";
    {
        let db = Database::open(&dir).unwrap();
        db.execute_sql("CREATE TABLE q (id INT NOT NULL, v INT)")
            .unwrap();
        let rows: Vec<Row> = (0..200i64)
            .map(|i| Row::new(vec![Value::Int(i), Value::Int(i * 3)]))
            .collect();
        db.insert_rows("q", &rows).unwrap();

        let server = start(&db, quick_cfg());
        let mut c = Client::connect(server.addr()).unwrap();
        for _ in 0..3 {
            let r = c.query(repeated_sql).unwrap();
            assert_eq!(r.rows[0][0], Value::Int(50));
        }
        // Explicit CHECKPOINT persists the store (drain re-checkpoints).
        c.query("CHECKPOINT").unwrap();
        server.drain().unwrap();
    }

    let expected_text = fingerprint(repeated_sql).1;
    let db = Database::open(&dir).unwrap();
    let server = start(&db, quick_cfg());
    let mut c = Client::connect(server.addr()).unwrap();

    // DM_DB_QUERY_STORE: the reloaded entry carries its pre-restart
    // counts, live and persisted alike.
    let r = c
        .query("SELECT query_text, executions, persisted_executions, total_rows FROM DM_DB_QUERY_STORE()")
        .unwrap();
    let row = r
        .rows
        .iter()
        .find(|row| row[0].as_text().unwrap() == expected_text)
        .expect("pre-restart fingerprint missing after reopen");
    assert_eq!(row[1].as_int().unwrap(), 3, "executions survive restart");
    assert_eq!(row[2].as_int().unwrap(), 3, "persisted_executions");
    assert_eq!(row[3].as_int().unwrap(), 3, "one row per execution");

    // DM_EXEC_QUERY_STATS: the persisted rows are distinguished from
    // the (empty, post-restart) in-memory history by `as_of`.
    let r = c
        .query("SELECT sql_text, executions, as_of FROM DM_EXEC_QUERY_STATS()")
        .unwrap();
    let row = r
        .rows
        .iter()
        .find(|row| {
            row[0].as_text().unwrap() == expected_text && row[2].as_text().unwrap() == "persisted"
        })
        .expect("persisted row missing from DM_EXEC_QUERY_STATS");
    assert_eq!(row[1].as_int().unwrap(), 3);

    server.drain().unwrap();
    drop(db);
    let _ = std::fs::remove_dir_all(&dir);
}

// ----------------------------------------------------------------------
// Statements killed by drain still land in the query store (the
// statement-guard Drop path), visible over the wire afterwards
// ----------------------------------------------------------------------

#[test]
fn drain_killed_statement_lands_in_query_store_with_killed_disposition() {
    let db = setup_db();
    let server = start(
        &db,
        ServerConfig {
            drain_deadline: Duration::from_secs(1),
            ..quick_cfg()
        },
    );
    let addr = server.addr();
    let endless_sql = "SELECT n, COUNT(*) FROM t CROSS APPLY NUMBERS(1000000000) GROUP BY n";
    let straggler = std::thread::spawn(move || {
        let Ok(mut c) = Client::connect(addr) else {
            return;
        };
        let _ = c.set_read_timeout(Some(Duration::from_secs(30)));
        let _ = c.query("SET QUERY_MEMORY_LIMIT_KB = 8");
        let _ = c.query(endless_sql);
    });
    let deadline = Instant::now() + Duration::from_secs(10);
    while db.statements().running_count() == 0 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(5));
    }
    std::thread::sleep(Duration::from_millis(150));

    let report = server.drain().unwrap();
    straggler.join().unwrap();
    assert!(report.killed >= 1, "the endless statement had to be killed");

    // Drain joined the statement worker, so the guard's Drop has
    // already recorded the kill. Verify over the wire via a fresh
    // server on the same database.
    let expected_text = fingerprint(endless_sql).1;
    let server = start(&db, quick_cfg());
    let mut c = Client::connect(server.addr()).unwrap();
    let r = c
        .query("SELECT query_text, executions, killed FROM DM_DB_QUERY_STORE()")
        .unwrap();
    let row = r
        .rows
        .iter()
        .find(|row| row[0].as_text().unwrap() == expected_text)
        .expect("drain-killed statement missing from the query store");
    assert!(row[1].as_int().unwrap() >= 1);
    assert!(
        row[2].as_int().unwrap() >= 1,
        "drain kill must be recorded with the killed disposition"
    );
    server.drain().unwrap();
}

// ----------------------------------------------------------------------
// Properties: histogram percentiles stay within bucket bounds, and
// fingerprints are stable under literal changes
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The reported percentile is the upper bound of the bucket holding
    /// the true nearest-rank observation: never below it, and within a
    /// factor of two (the bucket width) above it.
    #[test]
    fn histogram_percentile_stays_within_bucket_bounds(
        samples in proptest::collection::vec(0u64..50_000_000, 1..300),
        p in 1u8..=100,
    ) {
        let mut h = LatencyHistogram::default();
        for &s in &samples {
            h.record_micros(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);

        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let rank = ((sorted.len() as u128 * u128::from(p)).div_ceil(100)).max(1) as usize;
        let truth = sorted[rank - 1];

        let got = h.percentile_micros(p);
        prop_assert!(got >= truth, "percentile below the true observation: {got} < {truth}");
        prop_assert!(
            got <= 2 * truth.max(1),
            "percentile past its bucket's upper bound: {got} > 2*{truth}"
        );
    }

    /// Changing literals (numbers, strings), identifier case, or
    /// whitespace never changes the fingerprint; the normalized text is
    /// the fingerprint's preimage.
    #[test]
    fn fingerprint_is_stable_under_literal_changes(
        a in 0i64..1_000_000,
        b in 0i64..1_000_000,
        s in "[a-z]{0,12}",
    ) {
        let q1 = format!("SELECT v FROM runs WHERE id = {a} AND name = '{s}'");
        let q2 = format!("select  V  from RUNS where ID={b} and NAME = 'other'");
        let (h1, t1) = fingerprint(&q1);
        let (h2, t2) = fingerprint(&q2);
        prop_assert_eq!(h1, h2, "{} vs {}", t1, t2);
        prop_assert_eq!(t1, t2);

        // A structurally different statement does not collide here.
        let (h3, _) = fingerprint("SELECT v, id FROM runs WHERE id = 1");
        prop_assert_ne!(h1, h3);
    }
}
